//! Static type checking of condition expressions.
//!
//! Quality-view validation wants to reject ill-typed conditions *before*
//! the process is compiled and deployed (the paper's QVs are validated
//! against evidence/tag declarations at composition time). The checker is
//! deliberately permissive where the declaration gives no information
//! ([`ExprType::Unknown`] unifies with everything).

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::value::Value;
use crate::{ExprError, Result};
use std::collections::BTreeMap;

/// Static types of the condition language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExprType {
    Number,
    Text,
    Boolean,
    /// Ontology-term values (classification labels).
    Symbol,
    /// No static information; unifies with anything.
    Unknown,
}

impl ExprType {
    fn unifies(self, other: ExprType) -> bool {
        use ExprType::*;
        match (self, other) {
            (Unknown, _) | (_, Unknown) => true,
            // symbols and text are interchangeable in equality contexts
            (Symbol, Text) | (Text, Symbol) => true,
            (a, b) => a == b,
        }
    }
}

/// Declared variable types for the checker.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    types: BTreeMap<String, ExprType>,
    /// When true, referencing an undeclared variable is an error; QV
    /// validation enables this so typos in evidence names are caught.
    strict: bool,
}

impl TypeEnv {
    /// An empty, lenient type environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Makes undeclared variables an error.
    pub fn strict(mut self) -> Self {
        self.strict = true;
        self
    }

    /// Declares a variable's type.
    pub fn declare(&mut self, name: impl Into<String>, ty: ExprType) -> &mut Self {
        self.types.insert(name.into(), ty);
        self
    }

    fn lookup(&self, name: &str) -> Result<ExprType> {
        match self.types.get(name) {
            Some(t) => Ok(*t),
            None if self.strict => Err(ExprError::Type(format!(
                "variable {name:?} is not declared by any annotator or quality assertion"
            ))),
            None => Ok(ExprType::Unknown),
        }
    }
}

/// Checks an expression; returns its type or the first type error.
pub fn check(expr: &Expr, env: &TypeEnv) -> Result<ExprType> {
    use ExprType::*;
    match expr {
        Expr::Const(v) => Ok(match v {
            Value::Num(_) => Number,
            Value::Str(_) => Text,
            Value::Bool(_) => Boolean,
            Value::Symbol(_) => Symbol,
            Value::Null => Unknown,
        }),
        Expr::Var(name) => env.lookup(name),
        Expr::Unary(UnaryOp::Not, inner) => {
            let t = check(inner, env)?;
            if t.unifies(Boolean) {
                Ok(Boolean)
            } else {
                Err(ExprError::Type(format!("'not' applied to {t:?}")))
            }
        }
        Expr::Unary(UnaryOp::Neg, inner) => {
            let t = check(inner, env)?;
            if t.unifies(Number) {
                Ok(Number)
            } else {
                Err(ExprError::Type(format!("'-' applied to {t:?}")))
            }
        }
        Expr::Binary(op, a, b) => {
            let ta = check(a, env)?;
            let tb = check(b, env)?;
            match op {
                BinaryOp::And | BinaryOp::Or => {
                    if ta.unifies(Boolean) && tb.unifies(Boolean) {
                        Ok(Boolean)
                    } else {
                        Err(ExprError::Type(format!(
                            "'{}' needs booleans, got {ta:?} and {tb:?}",
                            op.spelling()
                        )))
                    }
                }
                BinaryOp::Eq | BinaryOp::Ne => {
                    if ta.unifies(tb) {
                        Ok(Boolean)
                    } else {
                        Err(ExprError::Type(format!("cannot compare {ta:?} with {tb:?}")))
                    }
                }
                BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge => {
                    let orderable = (ta.unifies(Number) && tb.unifies(Number))
                        || (ta.unifies(Text) && tb.unifies(Text));
                    if orderable {
                        Ok(Boolean)
                    } else {
                        Err(ExprError::Type(format!("cannot order {ta:?} and {tb:?}")))
                    }
                }
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div => {
                    if ta.unifies(Number) && tb.unifies(Number) {
                        Ok(Number)
                    } else {
                        Err(ExprError::Type(format!(
                            "arithmetic needs numbers, got {ta:?} and {tb:?}"
                        )))
                    }
                }
            }
        }
        Expr::In(lhs, items) => {
            let tl = check(lhs, env)?;
            for item in items {
                let ti = check(item, env)?;
                if !tl.unifies(ti) {
                    return Err(ExprError::Type(format!(
                        "membership set mixes {tl:?} with {ti:?}"
                    )));
                }
            }
            Ok(Boolean)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn tenv(pairs: &[(&str, ExprType)]) -> TypeEnv {
        let mut env = TypeEnv::new().strict();
        for (k, t) in pairs {
            env.declare(*k, *t);
        }
        env
    }

    #[test]
    fn paper_condition_typechecks() {
        let e = parse("ScoreClass in q:high, q:mid and HR_MC > 20").unwrap();
        let env = tenv(&[("ScoreClass", ExprType::Symbol), ("HR_MC", ExprType::Number)]);
        assert_eq!(check(&e, &env).unwrap(), ExprType::Boolean);
    }

    #[test]
    fn strict_mode_catches_typos() {
        let e = parse("ScoerClass in q:high").unwrap();
        let env = tenv(&[("ScoreClass", ExprType::Symbol)]);
        let err = check(&e, &env).unwrap_err();
        assert!(err.to_string().contains("ScoerClass"));
    }

    #[test]
    fn lenient_mode_allows_unknowns() {
        let e = parse("mystery > 3").unwrap();
        assert_eq!(check(&e, &TypeEnv::new()).unwrap(), ExprType::Boolean);
    }

    #[test]
    fn type_conflicts() {
        let env = tenv(&[("cls", ExprType::Symbol), ("score", ExprType::Number)]);
        assert!(check(&parse("cls > 3").unwrap(), &env).is_err());
        assert!(check(&parse("score and true").unwrap(), &env).is_err());
        assert!(check(&parse("score in q:a, q:b").unwrap(), &env).is_err());
        assert!(check(&parse("cls = score").unwrap(), &env).is_err());
        assert!(check(&parse("not score").unwrap(), &env).is_err());
        assert!(check(&parse("-cls < 1").unwrap(), &env).is_err());
    }

    #[test]
    fn symbol_text_interchange() {
        let env = tenv(&[("cls", ExprType::Symbol)]);
        assert!(check(&parse("cls in 'high', 'mid'").unwrap(), &env).is_ok());
        assert!(check(&parse("cls = 'high'").unwrap(), &env).is_ok());
    }

    #[test]
    fn expression_type_is_propagated() {
        let env = tenv(&[("a", ExprType::Number), ("b", ExprType::Number)]);
        assert_eq!(check(&parse("a + b * 2").unwrap(), &env).unwrap(), ExprType::Number);
        assert_eq!(check(&parse("a + b < 3").unwrap(), &env).unwrap(), ExprType::Boolean);
    }
}
