//! Typed AST of the condition language.

use crate::value::Value;
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    And,
    Or,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    Add,
    Sub,
    Mul,
    Div,
}

impl BinaryOp {
    /// The surface spelling used by [`Expr::to_source`].
    pub fn spelling(self) -> &'static str {
        match self {
            BinaryOp::And => "and",
            BinaryOp::Or => "or",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Eq => "=",
            BinaryOp::Ne => "!=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Not,
    Neg,
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal constant.
    Const(Value),
    /// A variable reference (evidence value or QA tag).
    Var(String),
    /// Unary application.
    Unary(UnaryOp, Box<Expr>),
    /// Binary application.
    Binary(BinaryOp, Box<Expr>, Box<Expr>),
    /// Set membership: `lhs in {items…}`.
    In(Box<Expr>, Vec<Expr>),
}

impl Expr {
    /// All variable names referenced by the expression, deduplicated, in
    /// first-occurrence order. QV validation uses this to check that every
    /// referenced variable is declared by some annotator or QA.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                if !out.iter().any(|x| x == v) {
                    out.push(v.clone());
                }
            }
            Expr::Unary(_, inner) => inner.collect_vars(out),
            Expr::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::In(lhs, items) => {
                lhs.collect_vars(out);
                for item in items {
                    item.collect_vars(out);
                }
            }
        }
    }

    /// Renders the expression back to (normalized) surface syntax.
    pub fn to_source(&self) -> String {
        format!("{self}")
    }

    /// Structural size (number of AST nodes) — used by the E6 ablation to
    /// bucket expressions by complexity.
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Unary(_, inner) => 1 + inner.size(),
            Expr::Binary(_, a, b) => 1 + a.size() + b.size(),
            Expr::In(lhs, items) => 1 + lhs.size() + items.iter().map(Expr::size).sum::<usize>(),
        }
    }
}

/// Escapes a string constant using only the escapes the condition-language
/// lexer understands (`\n`, `\t`, `\\`, `\"`); other characters —
/// including raw control bytes the lexer accepts verbatim — pass through.
fn escape_condition_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => match v {
                Value::Str(s) => write!(f, "{}", escape_condition_string(s)),
                other => write!(f, "{other}"),
            },
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Unary(UnaryOp::Not, inner) => write!(f, "(not {inner})"),
            Expr::Unary(UnaryOp::Neg, inner) => write!(f, "(-({inner}))"),
            Expr::Binary(op, a, b) => write!(f, "({a} {} {b})", op.spelling()),
            Expr::In(lhs, items) => {
                write!(f, "({lhs} in {{")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "}})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variable_collection_dedups_in_order() {
        let e = Expr::Binary(
            BinaryOp::And,
            Box::new(Expr::Binary(
                BinaryOp::Gt,
                Box::new(Expr::Var("hr".into())),
                Box::new(Expr::Var("mc".into())),
            )),
            Box::new(Expr::In(
                Box::new(Expr::Var("hr".into())),
                vec![Expr::Const(Value::symbol("q:high"))],
            )),
        );
        assert_eq!(e.variables(), vec!["hr", "mc"]);
        assert_eq!(e.size(), 7);
    }

    #[test]
    fn display_is_parseable() {
        let e = Expr::In(
            Box::new(Expr::Var("ScoreClass".into())),
            vec![Expr::Const(Value::symbol("q:high")), Expr::Const(Value::symbol("q:mid"))],
        );
        let src = e.to_source();
        let back = crate::parse(&src).unwrap();
        assert_eq!(back, e);
    }
}
