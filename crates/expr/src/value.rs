//! Runtime values of the condition language.

use std::cmp::Ordering;
use std::fmt;

/// A runtime value.
///
/// `Symbol` carries ontology-term references (e.g. `q:high`, the enumerated
/// individuals of a classification model); `Null` represents missing
/// evidence in an annotation map.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Num(f64),
    Str(String),
    Bool(bool),
    Symbol(String),
    Null,
}

impl Value {
    /// A symbol value (ontology term reference such as `q:high`).
    pub fn symbol(s: impl Into<String>) -> Self {
        Value::Symbol(s.into())
    }

    /// A string value.
    pub fn string(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// The numeric value, if numeric.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean value, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True when the value is `Null` (missing evidence).
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Action semantics: a condition outcome *accepts* a data item only when
    /// it is `Bool(true)`; `Null` and everything else reject (paper §4.1:
    /// an item joins a split group iff its condition evaluates to true).
    pub fn as_accepted(&self) -> bool {
        matches!(self, Value::Bool(true))
    }

    /// Value equality used by `=`/`!=`/`in`: `Null` is equal to nothing
    /// (returns `None`), numbers compare numerically, symbols and strings
    /// compare with each other by text (so `ScoreClass in q:high` works
    /// whether the tag carries a symbol or its textual form).
    pub fn value_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Num(a), Value::Num(b)) => Some(a == b),
            (Value::Bool(a), Value::Bool(b)) => Some(a == b),
            (Value::Str(a), Value::Str(b))
            | (Value::Symbol(a), Value::Symbol(b))
            | (Value::Str(a), Value::Symbol(b))
            | (Value::Symbol(a), Value::Str(b)) => Some(symbol_text_eq(a, b)),
            _ => Some(false),
        }
    }

    /// Ordering used by the relational operators. `None` when incomparable
    /// (including any `Null` operand).
    pub fn value_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Num(a), Value::Num(b)) => a.partial_cmp(b),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

/// Symbols compare with optional-namespace leniency: `q:high` equals
/// `q:high`, and a plain `high` matches the local part of `q:high`. The
/// paper's classifications are IQ-ontology individuals, but users type bare
/// labels in hand-edited conditions.
fn symbol_text_eq(a: &str, b: &str) -> bool {
    if a == b {
        return true;
    }
    fn local(s: &str) -> &str {
        s.rsplit(':').next().unwrap_or(s)
    }
    (a.contains(':') != b.contains(':')) && local(a) == local(b)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Num(n) => write!(f, "{n}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Symbol(s) => write!(f, "{s}"),
            Value::Null => write!(f, "null"),
        }
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Num(n as f64)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_never_equals() {
        assert_eq!(Value::Null.value_eq(&Value::Null), None);
        assert_eq!(Value::Null.value_eq(&Value::Num(1.0)), None);
    }

    #[test]
    fn symbol_string_leniency() {
        let sym = Value::symbol("q:high");
        assert_eq!(sym.value_eq(&Value::symbol("q:high")), Some(true));
        assert_eq!(sym.value_eq(&Value::string("high")), Some(true));
        assert_eq!(sym.value_eq(&Value::symbol("high")), Some(true));
        assert_eq!(sym.value_eq(&Value::symbol("p:high")), Some(false));
        assert_eq!(sym.value_eq(&Value::symbol("q:low")), Some(false));
    }

    #[test]
    fn numeric_comparison() {
        assert_eq!(Value::Num(1.0).value_cmp(&Value::Num(2.0)), Some(Ordering::Less));
        assert_eq!(Value::Num(1.0).value_cmp(&Value::string("x")), None);
        assert_eq!(Value::Null.value_cmp(&Value::Num(1.0)), None);
    }

    #[test]
    fn acceptance_is_strict_true() {
        assert!(Value::Bool(true).as_accepted());
        assert!(!Value::Bool(false).as_accepted());
        assert!(!Value::Null.as_accepted());
        assert!(!Value::Num(1.0).as_accepted());
    }
}
