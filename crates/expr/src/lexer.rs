//! Tokenizer for the condition language.

use crate::{ExprError, Result};

/// Tokens of the condition language.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Token {
    Num(f64),
    Str(String),
    /// Bare identifier: a variable name (`HR_MC`, `score`).
    Ident(String),
    /// Prefixed name: an ontology term (`q:high`).
    Symbol(String),
    True,
    False,
    And,
    Or,
    Not,
    In,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Eof,
}

/// A token plus the byte offset where it starts (for error messages).
pub(crate) type Spanned = (Token, usize);

/// Tokenizes the whole input.
pub(crate) fn tokenize(src: &str) -> Result<Vec<Spanned>> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let mut out = Vec::new();
    let err = |pos: usize, m: String| ExprError::Syntax { pos, message: m };

    while pos < bytes.len() {
        let c = bytes[pos];
        if c.is_ascii_whitespace() {
            pos += 1;
            continue;
        }
        let start = pos;
        let token = match c {
            b'(' => {
                pos += 1;
                Token::LParen
            }
            b')' => {
                pos += 1;
                Token::RParen
            }
            b'{' => {
                pos += 1;
                Token::LBrace
            }
            b'}' => {
                pos += 1;
                Token::RBrace
            }
            b',' => {
                pos += 1;
                Token::Comma
            }
            b'+' => {
                pos += 1;
                Token::Plus
            }
            b'-' => {
                pos += 1;
                Token::Minus
            }
            b'*' => {
                pos += 1;
                Token::Star
            }
            b'/' => {
                pos += 1;
                Token::Slash
            }
            b'<' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    pos += 2;
                    Token::Le
                } else if bytes.get(pos + 1) == Some(&b'>') {
                    pos += 2;
                    Token::Ne
                } else {
                    pos += 1;
                    Token::Lt
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    pos += 2;
                    Token::Ge
                } else {
                    pos += 1;
                    Token::Gt
                }
            }
            b'=' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    pos += 2;
                } else {
                    pos += 1;
                }
                Token::Eq
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    pos += 2;
                    Token::Ne
                } else {
                    pos += 1;
                    Token::Not
                }
            }
            b'&' => {
                if bytes.get(pos + 1) == Some(&b'&') {
                    pos += 2;
                    Token::And
                } else {
                    return Err(err(pos, "single '&' (use 'and' or '&&')".into()));
                }
            }
            b'|' => {
                if bytes.get(pos + 1) == Some(&b'|') {
                    pos += 2;
                    Token::Or
                } else {
                    return Err(err(pos, "single '|' (use 'or' or '||')".into()));
                }
            }
            b'"' | b'\'' => {
                let quote = c;
                pos += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(pos) {
                        Some(&b) if b == quote => {
                            pos += 1;
                            break;
                        }
                        Some(b'\\') => {
                            match bytes.get(pos + 1) {
                                Some(b'n') => s.push('\n'),
                                Some(b't') => s.push('\t'),
                                Some(b'\\') => s.push('\\'),
                                Some(&q) if q == quote => s.push(q as char),
                                _ => return Err(err(pos, "bad string escape".into())),
                            }
                            pos += 2;
                        }
                        Some(&b) if b < 0x80 => {
                            s.push(b as char);
                            pos += 1;
                        }
                        Some(_) => {
                            let cs = pos;
                            pos += 1;
                            while pos < bytes.len() && (bytes[pos] & 0xC0) == 0x80 {
                                pos += 1;
                            }
                            s.push_str(&src[cs..pos]);
                        }
                        None => return Err(err(start, "unterminated string".into())),
                    }
                }
                Token::Str(s)
            }
            b'0'..=b'9' => {
                let mut saw_dot = false;
                let mut saw_exp = false;
                while pos < bytes.len() {
                    match bytes[pos] {
                        b'0'..=b'9' => pos += 1,
                        b'.' if !saw_dot && !saw_exp => {
                            saw_dot = true;
                            pos += 1;
                        }
                        b'e' | b'E' if !saw_exp => {
                            saw_exp = true;
                            pos += 1;
                            if matches!(bytes.get(pos), Some(b'+') | Some(b'-')) {
                                pos += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = &src[start..pos];
                let n: f64 =
                    text.parse().map_err(|_| err(start, format!("bad number {text:?}")))?;
                Token::Num(n)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                while pos < bytes.len() {
                    let d = bytes[pos];
                    if d.is_ascii_alphanumeric() || matches!(d, b'_' | b':' | b'-' | b'.') {
                        // Names must not end in punctuation runs; stop ':' only
                        // when followed by a name char (allows `q:high`).
                        if matches!(d, b':' | b'-' | b'.')
                            && !bytes
                                .get(pos + 1)
                                .is_some_and(|n| n.is_ascii_alphanumeric() || *n == b'_')
                        {
                            break;
                        }
                        pos += 1;
                    } else {
                        break;
                    }
                }
                let word = &src[start..pos];
                match word.to_ascii_lowercase().as_str() {
                    "and" => Token::And,
                    "or" => Token::Or,
                    "not" => Token::Not,
                    "in" => Token::In,
                    "true" => Token::True,
                    "false" => Token::False,
                    _ if word.contains(':') => Token::Symbol(word.to_string()),
                    _ => Token::Ident(word.to_string()),
                }
            }
            other => {
                return Err(err(pos, format!("unexpected character {:?}", other as char)));
            }
        };
        out.push((token, start));
    }
    out.push((Token::Eof, src.len()));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|(t, _)| t).collect()
    }

    #[test]
    fn paper_filter_condition() {
        let t = toks("ScoreClass in q:high, q:mid and HR_MC > 20");
        assert_eq!(
            t,
            vec![
                Token::Ident("ScoreClass".into()),
                Token::In,
                Token::Symbol("q:high".into()),
                Token::Comma,
                Token::Symbol("q:mid".into()),
                Token::And,
                Token::Ident("HR_MC".into()),
                Token::Gt,
                Token::Num(20.0),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn operators_and_keywords_case_insensitive() {
        let t = toks("NOT a AND b OR c IN d");
        assert!(matches!(t[0], Token::Not));
        assert!(matches!(t[2], Token::And));
        assert!(matches!(t[4], Token::Or));
        assert!(matches!(t[6], Token::In));
    }

    #[test]
    fn all_comparison_spellings() {
        assert_eq!(toks("a = b")[1], Token::Eq);
        assert_eq!(toks("a == b")[1], Token::Eq);
        assert_eq!(toks("a != b")[1], Token::Ne);
        assert_eq!(toks("a <> b")[1], Token::Ne);
        assert_eq!(toks("a <= b")[1], Token::Le);
        assert_eq!(toks("a >= b")[1], Token::Ge);
    }

    #[test]
    fn strings_both_quotes() {
        assert_eq!(toks("'high'")[0], Token::Str("high".into()));
        assert_eq!(toks("\"mi\\\"d\"")[0], Token::Str("mi\"d".into()));
    }

    #[test]
    fn numbers() {
        assert_eq!(toks("3.2")[0], Token::Num(3.2));
        assert_eq!(toks("1e-3")[0], Token::Num(0.001));
        assert!(tokenize("3.2.1").is_err() || !toks("3.2").is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("a # b").is_err());
        assert!(tokenize("'open").is_err());
        assert!(tokenize("a & b").is_err());
    }

    #[test]
    fn symbol_vs_ident() {
        assert_eq!(toks("q:high")[0], Token::Symbol("q:high".into()));
        assert_eq!(toks("score")[0], Token::Ident("score".into()));
        // a trailing colon does not glue onto the name (and is then invalid)
        assert!(tokenize("score:").is_err());
    }
}
