//! Recursive-descent parser for the condition language.
//!
//! Precedence (loosest to tightest):
//! `or` < `and` < `not` < comparison/`in` < `+ -` < `* /` < unary `-` < primary.

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::lexer::{tokenize, Spanned, Token};
use crate::value::Value;
use crate::{ExprError, Result};

/// Parses one condition expression.
pub fn parse(src: &str) -> Result<Expr> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, index: 0 };
    let expr = p.parse_or()?;
    p.expect_eof()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Spanned>,
    index: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.index].0
    }

    fn pos(&self) -> usize {
        self.tokens[self.index].1
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.index].0.clone();
        if self.index + 1 < self.tokens.len() {
            self.index += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ExprError {
        ExprError::Syntax { pos: self.pos(), message: message.into() }
    }

    fn expect_eof(&self) -> Result<()> {
        if *self.peek() == Token::Eof {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input {:?}", self.peek())))
        }
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_and()?;
        while *self.peek() == Token::Or {
            self.bump();
            let rhs = self.parse_and()?;
            lhs = Expr::Binary(BinaryOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_not()?;
        while *self.peek() == Token::And {
            self.bump();
            let rhs = self.parse_not()?;
            lhs = Expr::Binary(BinaryOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if *self.peek() == Token::Not {
            self.bump();
            let inner = self.parse_not()?;
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(inner)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr> {
        let lhs = self.parse_additive()?;
        let op = match self.peek() {
            Token::Lt => BinaryOp::Lt,
            Token::Le => BinaryOp::Le,
            Token::Gt => BinaryOp::Gt,
            Token::Ge => BinaryOp::Ge,
            Token::Eq => BinaryOp::Eq,
            Token::Ne => BinaryOp::Ne,
            Token::In => {
                self.bump();
                let items = self.parse_set_items()?;
                return Ok(Expr::In(Box::new(lhs), items));
            }
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_additive()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    /// Set items: `{ a, b, c }` or a bare comma-list `a, b, c` that extends
    /// until a token that cannot start another item (paper §5.1 writes
    /// `ScoreClass in q:high, q:mid and …` without braces).
    fn parse_set_items(&mut self) -> Result<Vec<Expr>> {
        let braced = *self.peek() == Token::LBrace;
        if braced {
            self.bump();
        }
        let mut items = vec![self.parse_additive()?];
        while *self.peek() == Token::Comma {
            self.bump();
            items.push(self.parse_additive()?);
        }
        if braced {
            if *self.peek() != Token::RBrace {
                return Err(self.err("expected '}' to close membership set"));
            }
            self.bump();
        }
        Ok(items)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinaryOp::Add,
                Token::Minus => BinaryOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinaryOp::Mul,
                Token::Slash => BinaryOp::Div,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if *self.peek() == Token::Minus {
            self.bump();
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(inner)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.bump() {
            Token::Num(n) => Ok(Expr::Const(Value::Num(n))),
            Token::Str(s) => Ok(Expr::Const(Value::Str(s))),
            Token::True => Ok(Expr::Const(Value::Bool(true))),
            Token::False => Ok(Expr::Const(Value::Bool(false))),
            Token::Ident(name) => Ok(Expr::Var(name)),
            Token::Symbol(name) => Ok(Expr::Const(Value::Symbol(name))),
            Token::LParen => {
                let inner = self.parse_or()?;
                if self.bump() != Token::RParen {
                    return Err(self.err("expected ')'"));
                }
                Ok(inner)
            }
            other => Err(self.err(format!("expected a value, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples_parse() {
        // §4.1
        assert!(parse("score < 3.2").is_ok());
        assert!(parse("PIScoreClassification IN { 'high', 'mid' }").is_ok());
        // §5.1 (underscored tag name)
        let e = parse("ScoreClass in q:high, q:mid and HR_MC > 20").unwrap();
        // `in` binds tighter than `and`: (in …) and (HR_MC > 20)
        match e {
            Expr::Binary(BinaryOp::And, lhs, rhs) => {
                assert!(matches!(*lhs, Expr::In(..)));
                assert!(matches!(*rhs, Expr::Binary(BinaryOp::Gt, ..)));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn precedence_arithmetic() {
        let e = parse("a + b * c < 10").unwrap();
        // ((a + (b*c)) < 10)
        match e {
            Expr::Binary(BinaryOp::Lt, lhs, _) => match *lhs {
                Expr::Binary(BinaryOp::Add, _, rhs) => {
                    assert!(matches!(*rhs, Expr::Binary(BinaryOp::Mul, ..)))
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn precedence_boolean() {
        let e = parse("a = 1 or b = 2 and c = 3").unwrap();
        // or(eq, and(eq, eq))
        assert!(matches!(e, Expr::Binary(BinaryOp::Or, ..)));
    }

    #[test]
    fn not_and_negation() {
        assert!(matches!(parse("not x = 1").unwrap(), Expr::Unary(UnaryOp::Not, _)));
        assert!(matches!(parse("-x < 0").unwrap(), Expr::Binary(BinaryOp::Lt, ..)));
    }

    #[test]
    fn parenthesized_grouping() {
        let e = parse("(a or b) and c").unwrap();
        assert!(matches!(e, Expr::Binary(BinaryOp::And, ..)));
    }

    #[test]
    fn braced_and_unbraced_sets_agree() {
        let a = parse("x in { q:a, q:b }").unwrap();
        let b = parse("x in q:a, q:b").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("a <").is_err());
        assert!(parse("a in {").is_err());
        assert!(parse("a in { b").is_err());
        assert!(parse("(a").is_err());
        assert!(parse("a b").is_err());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
        let leaf = prop_oneof![
            // Non-negative only: `-5` deliberately parses as Neg(Const(5)).
            (0f64..1e6).prop_map(|n| Expr::Const(Value::Num(n))),
            "[a-zA-Z][a-zA-Z0-9_]{0,6}"
                .prop_filter("reserved word", |s| {
                    !matches!(
                        s.to_ascii_lowercase().as_str(),
                        "and" | "or" | "not" | "in" | "true" | "false"
                    )
                })
                .prop_map(Expr::Var),
            "[a-z]{1,3}:[a-zA-Z][a-zA-Z0-9]{0,6}".prop_map(|s| Expr::Const(Value::Symbol(s))),
            any::<bool>().prop_map(|b| Expr::Const(Value::Bool(b))),
            "[a-zA-Z0-9 ]{0,10}".prop_map(|s| Expr::Const(Value::Str(s))),
        ];
        if depth == 0 {
            return leaf.boxed();
        }
        let sub = arb_expr(depth - 1);
        prop_oneof![
            leaf,
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Binary(
                BinaryOp::And,
                Box::new(a),
                Box::new(b)
            )),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Binary(
                BinaryOp::Lt,
                Box::new(a),
                Box::new(b)
            )),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Binary(
                BinaryOp::Add,
                Box::new(a),
                Box::new(b)
            )),
            sub.clone().prop_map(|a| Expr::Unary(UnaryOp::Not, Box::new(a))),
            (sub.clone(), proptest::collection::vec(sub, 1..4))
                .prop_map(|(l, items)| Expr::In(Box::new(l), items)),
        ]
        .boxed()
    }

    proptest! {
        /// to_source ∘ parse is the identity on ASTs.
        #[test]
        fn source_roundtrip(e in arb_expr(3)) {
            let src = e.to_source();
            let back = parse(&src).unwrap();
            prop_assert_eq!(back, e, "source was {}", src);
        }
    }
}
