//! Evaluation of condition expressions over an environment of evidence and
//! quality-assertion tag values.

use crate::ast::{BinaryOp, Expr, UnaryOp};
use crate::value::Value;
use crate::{ExprError, Result};
use std::collections::BTreeMap;

/// An evaluation environment: variable name → value.
///
/// In the quality framework one `Env` is built per data item from its
/// annotation-map row (evidence values + QA tags); unbound variables
/// evaluate to [`Value::Null`], mirroring null evidence values in the
/// paper's annotation maps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Env {
    bindings: BTreeMap<String, Value>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds (or rebinds) a variable.
    pub fn bind(&mut self, name: impl Into<String>, value: Value) -> &mut Self {
        self.bindings.insert(name.into(), value);
        self
    }

    /// Looks a variable up; `Null` when unbound.
    pub fn lookup(&self, name: &str) -> Value {
        self.bindings.get(name).cloned().unwrap_or(Value::Null)
    }

    /// True when the variable has an explicit binding (even to `Null`).
    pub fn is_bound(&self, name: &str) -> bool {
        self.bindings.contains_key(name)
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.bindings.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl FromIterator<(String, Value)> for Env {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Env { bindings: iter.into_iter().collect() }
    }
}

impl Expr {
    /// Evaluates the expression under `env`.
    ///
    /// Null propagation: any arithmetic or comparison with a `Null` operand
    /// yields `Null`; `and`/`or` use Kleene three-valued logic so that
    /// `false and null = false` and `true or null = true`.
    pub fn eval(&self, env: &Env) -> Result<Value> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Var(name) => Ok(env.lookup(name)),
            Expr::Unary(UnaryOp::Not, inner) => match inner.eval(env)? {
                Value::Bool(b) => Ok(Value::Bool(!b)),
                Value::Null => Ok(Value::Null),
                other => Err(ExprError::Eval(format!("'not' applied to {other}"))),
            },
            Expr::Unary(UnaryOp::Neg, inner) => match inner.eval(env)? {
                Value::Num(n) => Ok(Value::Num(-n)),
                Value::Null => Ok(Value::Null),
                other => Err(ExprError::Eval(format!("'-' applied to {other}"))),
            },
            Expr::Binary(op, a, b) => self.eval_binary(*op, a, b, env),
            Expr::In(lhs, items) => {
                let needle = lhs.eval(env)?;
                if needle.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in items {
                    match needle.value_eq(&item.eval(env)?) {
                        Some(true) => return Ok(Value::Bool(true)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                Ok(if saw_null { Value::Null } else { Value::Bool(false) })
            }
        }
    }

    fn eval_binary(&self, op: BinaryOp, a: &Expr, b: &Expr, env: &Env) -> Result<Value> {
        use BinaryOp::*;
        match op {
            And => {
                let va = truth(a.eval(env)?)?;
                if va == Some(false) {
                    return Ok(Value::Bool(false));
                }
                let vb = truth(b.eval(env)?)?;
                Ok(match (va, vb) {
                    (_, Some(false)) => Value::Bool(false),
                    (Some(true), Some(true)) => Value::Bool(true),
                    _ => Value::Null,
                })
            }
            Or => {
                let va = truth(a.eval(env)?)?;
                if va == Some(true) {
                    return Ok(Value::Bool(true));
                }
                let vb = truth(b.eval(env)?)?;
                Ok(match (va, vb) {
                    (_, Some(true)) => Value::Bool(true),
                    (Some(false), Some(false)) => Value::Bool(false),
                    _ => Value::Null,
                })
            }
            Eq | Ne => {
                let va = a.eval(env)?;
                let vb = b.eval(env)?;
                match va.value_eq(&vb) {
                    None => Ok(Value::Null),
                    Some(eq) => Ok(Value::Bool(if op == Eq { eq } else { !eq })),
                }
            }
            Lt | Le | Gt | Ge => {
                let va = a.eval(env)?;
                let vb = b.eval(env)?;
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                let ord = va
                    .value_cmp(&vb)
                    .ok_or_else(|| ExprError::Eval(format!("cannot order {va} and {vb}")))?;
                use std::cmp::Ordering::*;
                Ok(Value::Bool(match op {
                    Lt => ord == Less,
                    Le => ord != Greater,
                    Gt => ord == Greater,
                    Ge => ord != Less,
                    _ => unreachable!(),
                }))
            }
            Add | Sub | Mul | Div => {
                let va = a.eval(env)?;
                let vb = b.eval(env)?;
                if va.is_null() || vb.is_null() {
                    return Ok(Value::Null);
                }
                let (x, y) = match (va.as_num(), vb.as_num()) {
                    (Some(x), Some(y)) => (x, y),
                    _ => {
                        return Err(ExprError::Eval(format!(
                            "arithmetic needs numbers, got {va} and {vb}"
                        )))
                    }
                };
                let r = match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => {
                        if y == 0.0 {
                            return Err(ExprError::Eval("division by zero".into()));
                        }
                        x / y
                    }
                    _ => unreachable!(),
                };
                Ok(Value::Num(r))
            }
        }
    }

    /// Convenience: evaluates as an acceptance decision (`Bool(true)` only).
    pub fn accepts(&self, env: &Env) -> Result<bool> {
        Ok(self.eval(env)?.as_accepted())
    }
}

/// Converts a value to Kleene truth: `Some(bool)` or `None` for Null.
fn truth(v: Value) -> Result<Option<bool>> {
    match v {
        Value::Bool(b) => Ok(Some(b)),
        Value::Null => Ok(None),
        other => Err(ExprError::Eval(format!("expected a boolean, got {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    fn env(pairs: &[(&str, Value)]) -> Env {
        let mut e = Env::new();
        for (k, v) in pairs {
            e.bind(*k, v.clone());
        }
        e
    }

    #[test]
    fn paper_filter_condition() {
        let e = parse("ScoreClass in q:high, q:mid and HR_MC > 20").unwrap();
        // accepted: class high, HR_MC 31
        assert!(e
            .accepts(&env(
                &[("ScoreClass", Value::symbol("q:high")), ("HR_MC", Value::from(31.0)),]
            ))
            .unwrap());
        // rejected: class low
        assert!(!e
            .accepts(&env(&[("ScoreClass", Value::symbol("q:low")), ("HR_MC", Value::from(31.0)),]))
            .unwrap());
        // rejected: HR_MC below threshold
        assert!(!e
            .accepts(&env(&[("ScoreClass", Value::symbol("q:mid")), ("HR_MC", Value::from(12.0)),]))
            .unwrap());
    }

    #[test]
    fn null_propagation_rejects() {
        let e = parse("score < 3.2").unwrap();
        // missing evidence: condition is Null -> rejected, not an error
        assert_eq!(e.eval(&Env::new()).unwrap(), Value::Null);
        assert!(!e.accepts(&Env::new()).unwrap());
    }

    #[test]
    fn kleene_logic() {
        // false and null = false
        let e = parse("false and missing > 0").unwrap();
        assert_eq!(e.eval(&Env::new()).unwrap(), Value::Bool(false));
        // true or null = true
        let e = parse("true or missing > 0").unwrap();
        assert_eq!(e.eval(&Env::new()).unwrap(), Value::Bool(true));
        // true and null = null
        let e = parse("true and missing > 0").unwrap();
        assert_eq!(e.eval(&Env::new()).unwrap(), Value::Null);
        // not null = null
        let e = parse("not (missing > 0)").unwrap();
        assert_eq!(e.eval(&Env::new()).unwrap(), Value::Null);
    }

    #[test]
    fn arithmetic() {
        let e = parse("(hr * 100 + mc) / 2 >= 50").unwrap();
        assert!(e.accepts(&env(&[("hr", Value::from(0.9)), ("mc", Value::from(40.0))])).unwrap());
        assert!(!e.accepts(&env(&[("hr", Value::from(0.1)), ("mc", Value::from(10.0))])).unwrap());
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let e = parse("1 / z").unwrap();
        assert!(e.eval(&env(&[("z", Value::from(0.0))])).is_err());
    }

    #[test]
    fn type_errors_at_runtime() {
        assert!(parse("'a' + 1").unwrap().eval(&Env::new()).is_err());
        assert!(parse("not 3").unwrap().eval(&Env::new()).is_err());
        assert!(parse("1 and true").unwrap().eval(&Env::new()).is_err());
        // ordering strings is fine; ordering symbol vs number is not
        assert!(parse("'a' < 'b'").unwrap().eval(&Env::new()).unwrap().as_accepted());
        assert!(parse("q:a < 1").unwrap().eval(&Env::new()).is_err());
    }

    #[test]
    fn in_with_nulls() {
        let e = parse("x in missing, 2").unwrap();
        // x=2 matches despite the null item
        assert!(e.accepts(&env(&[("x", Value::from(2.0))])).unwrap());
        // x=3: no match, but null item makes the outcome Null
        assert_eq!(e.eval(&env(&[("x", Value::from(3.0))])).unwrap(), Value::Null);
    }

    #[test]
    fn membership_over_strings_and_symbols() {
        let e = parse("cls in 'high', 'mid'").unwrap();
        assert!(e.accepts(&env(&[("cls", Value::symbol("q:high"))])).unwrap());
        assert!(!e.accepts(&env(&[("cls", Value::symbol("q:low"))])).unwrap());
    }

    #[test]
    fn unbound_vs_bound_null() {
        let mut e = Env::new();
        assert!(!e.is_bound("x"));
        e.bind("x", Value::Null);
        assert!(e.is_bound("x"));
        assert_eq!(e.lookup("x"), Value::Null);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::ast::{BinaryOp, Expr, UnaryOp};
    use crate::typecheck::{check, ExprType, TypeEnv};
    use proptest::prelude::*;

    /// Generates well-typed boolean expressions over a fixed variable
    /// vocabulary: numeric `n0..n2`, symbolic `c0..c1`. Division is
    /// excluded (division by zero is a legitimate runtime error).
    fn arb_bool_expr(depth: u32) -> BoxedStrategy<Expr> {
        let num_leaf = prop_oneof![
            (0u8..3).prop_map(|i| Expr::Var(format!("n{i}"))),
            (-50f64..50.0).prop_map(|v| Expr::Const(Value::Num(v))),
        ];
        fn num_expr(depth: u32, leaf: BoxedStrategy<Expr>) -> BoxedStrategy<Expr> {
            if depth == 0 {
                return leaf;
            }
            let sub = num_expr(depth - 1, leaf.clone());
            prop_oneof![
                leaf,
                (
                    sub.clone(),
                    sub.clone(),
                    prop_oneof![Just(BinaryOp::Add), Just(BinaryOp::Sub), Just(BinaryOp::Mul)]
                )
                    .prop_map(|(a, b, op)| Expr::Binary(
                        op,
                        Box::new(a),
                        Box::new(b)
                    )),
                sub.prop_map(|a| Expr::Unary(UnaryOp::Neg, Box::new(a))),
            ]
            .boxed()
        }
        let nums = num_expr(depth, num_leaf.boxed());
        let sym_leaf = prop_oneof![
            (0u8..2).prop_map(|i| Expr::Var(format!("c{i}"))),
            (0u8..3).prop_map(|i| Expr::Const(Value::Symbol(format!("q:label{i}")))),
        ];
        let cmp = (
            nums.clone(),
            nums.clone(),
            prop_oneof![
                Just(BinaryOp::Lt),
                Just(BinaryOp::Le),
                Just(BinaryOp::Gt),
                Just(BinaryOp::Ge),
                Just(BinaryOp::Eq),
                Just(BinaryOp::Ne),
            ],
        )
            .prop_map(|(a, b, op)| Expr::Binary(op, Box::new(a), Box::new(b)));
        let membership = (sym_leaf.clone(), proptest::collection::vec(sym_leaf, 1..4))
            .prop_map(|(l, items)| Expr::In(Box::new(l), items));
        let atom =
            prop_oneof![cmp, membership, any::<bool>().prop_map(|b| Expr::Const(Value::Bool(b)))];
        if depth == 0 {
            return atom.boxed();
        }
        let sub = arb_bool_expr(depth - 1);
        prop_oneof![
            atom,
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Binary(
                BinaryOp::And,
                Box::new(a),
                Box::new(b)
            )),
            (sub.clone(), sub.clone()).prop_map(|(a, b)| Expr::Binary(
                BinaryOp::Or,
                Box::new(a),
                Box::new(b)
            )),
            sub.prop_map(|a| Expr::Unary(UnaryOp::Not, Box::new(a))),
        ]
        .boxed()
    }

    fn type_env() -> TypeEnv {
        let mut env = TypeEnv::new().strict();
        for i in 0..3 {
            env.declare(format!("n{i}"), ExprType::Number);
        }
        for i in 0..2 {
            env.declare(format!("c{i}"), ExprType::Symbol);
        }
        env
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        /// Well-typed boolean expressions typecheck as Boolean, evaluate
        /// without runtime errors under fully-bound envs, and the source
        /// round-trip evaluates identically.
        #[test]
        fn well_typed_exprs_are_total(
            e in arb_bool_expr(3),
            nums in proptest::array::uniform3(-50f64..50.0),
            syms in proptest::array::uniform2(0u8..3),
        ) {
            prop_assert_eq!(check(&e, &type_env()).unwrap(), ExprType::Boolean);
            let mut env = Env::new();
            for (i, v) in nums.iter().enumerate() {
                env.bind(format!("n{i}"), Value::Num(*v));
            }
            for (i, v) in syms.iter().enumerate() {
                env.bind(format!("c{i}"), Value::symbol(format!("q:label{v}")));
            }
            let value = e.eval(&env).unwrap();
            prop_assert!(matches!(value, Value::Bool(_)), "got {:?}", value);
            // parse(to_source) evaluates to the same value
            let reparsed = crate::parse(&e.to_source()).unwrap();
            prop_assert_eq!(reparsed.eval(&env).unwrap(), value);
        }

        /// Under envs with unbound variables, evaluation still never
        /// errors: outcomes are Bool or Null (three-valued logic is total).
        #[test]
        fn partial_envs_never_error(e in arb_bool_expr(3)) {
            let value = e.eval(&Env::new()).unwrap();
            prop_assert!(
                matches!(value, Value::Bool(_) | Value::Null),
                "got {:?}",
                value
            );
        }
    }
}
