//! The repository catalog: named annotation repositories a quality process
//! reads from and writes to.
//!
//! QV specifications reference repositories by name
//! (`repositoryRef="cache"`); the catalog resolves those names at
//! compile/execution time and clears all cache (non-persistent)
//! repositories between process executions (paper §4: "the scope of
//! annotations is a single process execution" for on-the-fly evidence).

use crate::repository::AnnotationRepository;
use crate::{AnnotationError, Result};
use parking_lot::RwLock;
use qurator_ontology::iq::IqModel;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// A named collection of annotation repositories.
pub struct RepositoryCatalog {
    iq: Arc<IqModel>,
    repositories: RwLock<BTreeMap<String, Arc<AnnotationRepository>>>,
    /// When set, persistent repositories live on disk under
    /// `<root>/<name>/`; cache repositories stay in memory regardless.
    store_root: RwLock<Option<PathBuf>>,
}

impl RepositoryCatalog {
    /// An empty catalog over the given IQ model.
    pub fn new(iq: Arc<IqModel>) -> Self {
        RepositoryCatalog {
            iq,
            repositories: RwLock::new(BTreeMap::new()),
            store_root: RwLock::new(None),
        }
    }

    /// The IQ model shared by all repositories.
    pub fn iq(&self) -> &Arc<IqModel> {
        &self.iq
    }

    /// Roots persistent repositories at `dir` and eagerly reopens every
    /// store already present there (one subdirectory per repository), so a
    /// restarted process sees its annotations again. Fails fast — without
    /// registering the root — when any existing store is locked or corrupt.
    /// Returns the names of the reopened repositories.
    pub fn set_store_root(&self, dir: impl Into<PathBuf>) -> Result<Vec<String>> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            AnnotationError::Rdf(format!("creating store root {}: {e}", dir.display()))
        })?;
        let mut names = Vec::new();
        let entries = std::fs::read_dir(&dir).map_err(|e| {
            AnnotationError::Rdf(format!("reading store root {}: {e}", dir.display()))
        })?;
        for entry in entries {
            let entry = entry.map_err(|e| {
                AnnotationError::Rdf(format!("reading store root {}: {e}", dir.display()))
            })?;
            if !entry.path().is_dir() {
                continue;
            }
            let Ok(name) = entry.file_name().into_string() else {
                return Err(AnnotationError::Rdf(format!(
                    "store root entry {:?} is not valid UTF-8",
                    entry.file_name()
                )));
            };
            // `<root>/stats/` holds the engine's per-view stats profiles,
            // not a repository store
            if name == "stats" {
                continue;
            }
            names.push(name);
        }
        names.sort();
        let mut repos = self.repositories.write();
        for name in &names {
            if repos.contains_key(name) {
                return Err(AnnotationError::DuplicateRepository(name.clone()));
            }
        }
        // Open every store before publishing any of them: a locked or
        // corrupt store must not leave the catalog half-populated.
        let mut opened = Vec::with_capacity(names.len());
        for name in &names {
            opened.push(Arc::new(AnnotationRepository::open_disk(
                name,
                true,
                self.iq.clone(),
                dir.join(name),
            )?));
        }
        for (name, repo) in names.iter().zip(opened) {
            repos.insert(name.clone(), repo);
        }
        *self.store_root.write() = Some(dir);
        Ok(names)
    }

    /// The directory persistent repositories are stored under, if any.
    pub fn store_root(&self) -> Option<PathBuf> {
        self.store_root.read().clone()
    }

    /// Creates a repository; errors if the name is taken. With a store root
    /// configured, persistent repositories open disk-backed under it.
    pub fn create(&self, name: &str, persistent: bool) -> Result<Arc<AnnotationRepository>> {
        let mut repos = self.repositories.write();
        if repos.contains_key(name) {
            return Err(AnnotationError::DuplicateRepository(name.to_string()));
        }
        let root = if persistent { self.store_root.read().clone() } else { None };
        let repo = Arc::new(match root {
            Some(root) => {
                AnnotationRepository::open_disk(name, true, self.iq.clone(), root.join(name))?
            }
            None => AnnotationRepository::new(name, persistent, self.iq.clone()),
        });
        repos.insert(name.to_string(), repo.clone());
        Ok(repo)
    }

    /// Group-commits every repository (disk backends fsync; memory is a
    /// no-op). `qv serve` calls this before acknowledging a run.
    pub fn flush_all(&self) -> Result<()> {
        let repos = self.repositories.read();
        for repo in repos.values() {
            repo.flush()?;
        }
        Ok(())
    }

    /// Gets a repository, creating a cache repository on first reference
    /// (QV specs may name fresh caches without prior setup).
    pub fn get_or_create_cache(&self, name: &str) -> Arc<AnnotationRepository> {
        if let Some(repo) = self.get(name) {
            return repo;
        }
        self.create(name, false).expect("checked absence under race-free write lock")
    }

    /// Looks a repository up by name.
    pub fn get(&self, name: &str) -> Option<Arc<AnnotationRepository>> {
        self.repositories.read().get(name).cloned()
    }

    /// Looks a repository up, erroring with the QV-validation message.
    pub fn require(&self, name: &str) -> Result<Arc<AnnotationRepository>> {
        self.get(name).ok_or_else(|| AnnotationError::UnknownRepository(name.to_string()))
    }

    /// Clears every non-persistent repository; returns how many were
    /// cleared. Called between quality-process executions.
    pub fn clear_caches(&self) -> usize {
        let repos = self.repositories.read();
        let mut cleared = 0;
        for repo in repos.values() {
            if !repo.is_persistent() {
                repo.clear();
                cleared += 1;
            }
        }
        cleared
    }

    /// Names of all repositories, in order.
    pub fn names(&self) -> Vec<String> {
        self.repositories.read().keys().cloned().collect()
    }
}

impl std::fmt::Debug for RepositoryCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RepositoryCatalog").field("repositories", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_rdf::namespace::q;
    use qurator_rdf::term::Term;

    fn catalog() -> RepositoryCatalog {
        RepositoryCatalog::new(Arc::new(IqModel::with_proteomics_extension().unwrap()))
    }

    #[test]
    fn create_get_require() {
        let c = catalog();
        c.create("cache", false).unwrap();
        c.create("uniprot", true).unwrap();
        assert!(c.get("cache").is_some());
        assert!(c.require("uniprot").is_ok());
        assert!(matches!(c.require("nope"), Err(AnnotationError::UnknownRepository(_))));
        assert!(matches!(c.create("cache", true), Err(AnnotationError::DuplicateRepository(_))));
        assert_eq!(c.names(), vec!["cache", "uniprot"]);
    }

    #[test]
    fn get_or_create_cache_is_idempotent() {
        let c = catalog();
        let a = c.get_or_create_cache("scratch");
        let b = c.get_or_create_cache("scratch");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!a.is_persistent());
    }

    #[test]
    fn store_root_reopens_persistent_repositories() {
        let tmp = qurator_rdf::storage::test_support::TempDir::new("catalog");
        let item = Term::iri("urn:lsid:t:h:1");
        {
            let c = catalog();
            assert_eq!(c.set_store_root(tmp.path()).unwrap(), Vec::<String>::new());
            let archive = c.create("archive", true).unwrap();
            let cache = c.create("cache", false).unwrap();
            assert_eq!(archive.backend_name(), "disk");
            assert_eq!(cache.backend_name(), "memory", "caches stay in memory");
            archive.annotate(&item, &q::iri("HitRatio"), 0.9.into()).unwrap();
            c.flush_all().unwrap();
        }
        // The engine writes per-view stats profiles under `<root>/stats/`;
        // the reopen scan must not mistake that directory for a store.
        std::fs::create_dir_all(tmp.path().join("stats")).unwrap();
        std::fs::write(tmp.path().join("stats").join("v.json"), "{}").unwrap();
        // A fresh catalog pointed at the same root sees the archive again.
        let c = catalog();
        let reopened = c.set_store_root(tmp.path()).unwrap();
        assert_eq!(reopened, vec!["archive".to_string()]);
        assert!(c.require("stats").is_err(), "stats/ reopened as a repository");
        let archive = c.require("archive").unwrap();
        assert!(archive.is_persistent());
        assert_eq!(
            archive.lookup(&item, &q::iri("HitRatio")).unwrap(),
            crate::EvidenceValue::Number(0.9)
        );
    }

    #[test]
    fn store_root_fails_fast_on_locked_store() {
        let tmp = qurator_rdf::storage::test_support::TempDir::new("catalog-lock");
        let first = catalog();
        first.set_store_root(tmp.path()).unwrap();
        let _held = first.create("archive", true).unwrap();
        // Second catalog (same process, live pid in the lock file) must
        // refuse the root and register nothing.
        let c = catalog();
        let err = c.set_store_root(tmp.path()).unwrap_err();
        assert!(err.to_string().contains("locked"), "err: {err}");
        assert!(c.store_root().is_none());
        assert!(c.names().is_empty());
    }

    #[test]
    fn clear_caches_spares_persistent() {
        let c = catalog();
        let cache = c.create("cache", false).unwrap();
        let durable = c.create("uniprot", true).unwrap();
        let item = Term::iri("urn:lsid:t:h:1");
        cache.annotate(&item, &q::iri("HitRatio"), 1.0.into()).unwrap();
        durable.annotate(&item, &q::iri("HitRatio"), 1.0.into()).unwrap();
        assert_eq!(c.clear_caches(), 1);
        assert_eq!(cache.triple_count(), 0);
        assert_eq!(durable.triple_count(), 3);
    }
}
