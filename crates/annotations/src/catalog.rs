//! The repository catalog: named annotation repositories a quality process
//! reads from and writes to.
//!
//! QV specifications reference repositories by name
//! (`repositoryRef="cache"`); the catalog resolves those names at
//! compile/execution time and clears all cache (non-persistent)
//! repositories between process executions (paper §4: "the scope of
//! annotations is a single process execution" for on-the-fly evidence).

use crate::repository::AnnotationRepository;
use crate::{AnnotationError, Result};
use parking_lot::RwLock;
use qurator_ontology::iq::IqModel;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A named collection of annotation repositories.
pub struct RepositoryCatalog {
    iq: Arc<IqModel>,
    repositories: RwLock<BTreeMap<String, Arc<AnnotationRepository>>>,
}

impl RepositoryCatalog {
    /// An empty catalog over the given IQ model.
    pub fn new(iq: Arc<IqModel>) -> Self {
        RepositoryCatalog { iq, repositories: RwLock::new(BTreeMap::new()) }
    }

    /// The IQ model shared by all repositories.
    pub fn iq(&self) -> &Arc<IqModel> {
        &self.iq
    }

    /// Creates a repository; errors if the name is taken.
    pub fn create(&self, name: &str, persistent: bool) -> Result<Arc<AnnotationRepository>> {
        let mut repos = self.repositories.write();
        if repos.contains_key(name) {
            return Err(AnnotationError::DuplicateRepository(name.to_string()));
        }
        let repo = Arc::new(AnnotationRepository::new(name, persistent, self.iq.clone()));
        repos.insert(name.to_string(), repo.clone());
        Ok(repo)
    }

    /// Gets a repository, creating a cache repository on first reference
    /// (QV specs may name fresh caches without prior setup).
    pub fn get_or_create_cache(&self, name: &str) -> Arc<AnnotationRepository> {
        if let Some(repo) = self.get(name) {
            return repo;
        }
        self.create(name, false).expect("checked absence under race-free write lock")
    }

    /// Looks a repository up by name.
    pub fn get(&self, name: &str) -> Option<Arc<AnnotationRepository>> {
        self.repositories.read().get(name).cloned()
    }

    /// Looks a repository up, erroring with the QV-validation message.
    pub fn require(&self, name: &str) -> Result<Arc<AnnotationRepository>> {
        self.get(name).ok_or_else(|| AnnotationError::UnknownRepository(name.to_string()))
    }

    /// Clears every non-persistent repository; returns how many were
    /// cleared. Called between quality-process executions.
    pub fn clear_caches(&self) -> usize {
        let repos = self.repositories.read();
        let mut cleared = 0;
        for repo in repos.values() {
            if !repo.is_persistent() {
                repo.clear();
                cleared += 1;
            }
        }
        cleared
    }

    /// Names of all repositories, in order.
    pub fn names(&self) -> Vec<String> {
        self.repositories.read().keys().cloned().collect()
    }
}

impl std::fmt::Debug for RepositoryCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RepositoryCatalog").field("repositories", &self.names()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_rdf::namespace::q;
    use qurator_rdf::term::Term;

    fn catalog() -> RepositoryCatalog {
        RepositoryCatalog::new(Arc::new(IqModel::with_proteomics_extension().unwrap()))
    }

    #[test]
    fn create_get_require() {
        let c = catalog();
        c.create("cache", false).unwrap();
        c.create("uniprot", true).unwrap();
        assert!(c.get("cache").is_some());
        assert!(c.require("uniprot").is_ok());
        assert!(matches!(c.require("nope"), Err(AnnotationError::UnknownRepository(_))));
        assert!(matches!(c.create("cache", true), Err(AnnotationError::DuplicateRepository(_))));
        assert_eq!(c.names(), vec!["cache", "uniprot"]);
    }

    #[test]
    fn get_or_create_cache_is_idempotent() {
        let c = catalog();
        let a = c.get_or_create_cache("scratch");
        let b = c.get_or_create_cache("scratch");
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!a.is_persistent());
    }

    #[test]
    fn clear_caches_spares_persistent() {
        let c = catalog();
        let cache = c.create("cache", false).unwrap();
        let durable = c.create("uniprot", true).unwrap();
        let item = Term::iri("urn:lsid:t:h:1");
        cache.annotate(&item, &q::iri("HitRatio"), 1.0.into()).unwrap();
        durable.annotate(&item, &q::iri("HitRatio"), 1.0.into()).unwrap();
        assert_eq!(c.clear_caches(), 1);
        assert_eq!(cache.triple_count(), 0);
        assert_eq!(durable.triple_count(), 3);
    }
}
