//! # qurator-annotations
//!
//! The metadata-management infrastructure of the Qurator framework
//! (reproduction of *Quality Views*, VLDB 2006, §2, §3 and §5): quality
//! annotations, annotation maps, and annotation repositories.
//!
//! * [`value`] — [`value::EvidenceValue`], the value space of quality
//!   evidence (numbers, text, booleans, classification labels, null), with
//!   RDF literal conversions;
//! * [`map`] — [`map::AnnotationMap`], the paper's `Amap : d ↦ {(e, v)}`
//!   structure that flows between quality operators, including the
//!   classification mappings `d ↦ (t, cl)` added by quality assertions;
//! * [`repository`] — [`repository::AnnotationRepository`], an RDF-graph
//!   store of annotations keyed by `(data item, evidence type)`, queried
//!   through SPARQL exactly as §5 describes, with ontology-validated writes
//!   and a persistent/cache distinction (§4);
//! * [`catalog`] — [`catalog::RepositoryCatalog`], the named collection of
//!   repositories a quality process reads from and writes to
//!   (`repositoryRef="cache"` in QV specifications).

pub mod catalog;
pub mod map;
pub mod repository;
pub mod value;

pub use catalog::RepositoryCatalog;
pub use map::AnnotationMap;
pub use repository::AnnotationRepository;
pub use value::EvidenceValue;

/// Errors from the annotation layer.
#[derive(Debug, Clone, PartialEq)]
pub enum AnnotationError {
    /// Writing an annotation whose evidence class is not registered under
    /// `q:QualityEvidence` in the IQ model.
    NotEvidence(String),
    /// The referenced repository does not exist in the catalog.
    UnknownRepository(String),
    /// A repository with that name already exists.
    DuplicateRepository(String),
    /// An RDF-level failure (store/query).
    Rdf(String),
}

impl std::fmt::Display for AnnotationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnnotationError::NotEvidence(m) => {
                write!(f, "not a QualityEvidence class: {m}")
            }
            AnnotationError::UnknownRepository(m) => write!(f, "unknown repository {m:?}"),
            AnnotationError::DuplicateRepository(m) => {
                write!(f, "repository {m:?} already exists")
            }
            AnnotationError::Rdf(m) => write!(f, "annotation store error: {m}"),
        }
    }
}

impl std::error::Error for AnnotationError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AnnotationError>;
