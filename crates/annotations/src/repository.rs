//! Annotation repositories: RDF-graph stores of quality annotations with
//! ontology-validated writes and SPARQL-based retrieval.
//!
//! The encoding follows the paper's Figure 2 exactly: a data item (an
//! LSID-wrapped IRI) carries `q:contains-evidence` links to evidence nodes;
//! each evidence node is typed with its `q:QualityEvidence` subclass and
//! carries a `q:value` literal.
//!
//! ```text
//! <urn:lsid:uniprot.org:uniprot:P30089>
//!     a q:ImprintHitEntry ;
//!     q:contains-evidence _:e1 .
//! _:e1 a q:HitRatio ; q:value 0.82 .
//! ```

use crate::map::AnnotationMap;
use crate::value::EvidenceValue;
use crate::{AnnotationError, Result};
use parking_lot::RwLock;
use qurator_ontology::iq::{vocab, IqModel};
use qurator_rdf::namespace::{rdf, PrefixMap};
use qurator_rdf::sparql;
use qurator_rdf::store::GraphStore;
use qurator_rdf::term::{Iri, Term};
use qurator_rdf::triple::{Triple, TriplePattern};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a repository answers `(data item, evidence type)` lookups — §5 uses
/// SPARQL; the direct index path is the E3 ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LookupMode {
    /// Generate and evaluate a SPARQL SELECT per lookup (paper-faithful).
    #[default]
    Sparql,
    /// Walk the triple indexes directly.
    Direct,
}

/// A quality-annotation repository.
///
/// Thread-safe: processors executing in parallel waves may annotate and
/// enrich concurrently. Writes validate the evidence class against the IQ
/// model ("guarantees that the metadata complies with the ontology model",
/// §5).
pub struct AnnotationRepository {
    name: String,
    persistent: bool,
    iq: Arc<IqModel>,
    store: RwLock<GraphStore>,
    lookup_mode: LookupMode,
    blank_counter: AtomicU64,
}

impl AnnotationRepository {
    /// Creates a repository. `persistent = false` marks a per-execution
    /// cache whose contents are dropped by
    /// [`AnnotationRepository::clear`] between process executions (§4).
    pub fn new(name: impl Into<String>, persistent: bool, iq: Arc<IqModel>) -> Self {
        AnnotationRepository {
            name: name.into(),
            persistent,
            iq,
            store: RwLock::new(GraphStore::new()),
            lookup_mode: LookupMode::default(),
            blank_counter: AtomicU64::new(0),
        }
    }

    /// Switches the lookup implementation (E3 ablation).
    pub fn with_lookup_mode(mut self, mode: LookupMode) -> Self {
        self.lookup_mode = mode;
        self
    }

    /// The repository name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether annotations here outlive a single process execution.
    pub fn is_persistent(&self) -> bool {
        self.persistent
    }

    /// Number of stored triples (diagnostics).
    pub fn triple_count(&self) -> usize {
        self.store.read().len()
    }

    /// Writes one annotation: `item --evidence_type--> value`.
    ///
    /// Returns an error when `evidence_type` is not a registered subclass of
    /// `q:QualityEvidence`. A repeated write for the same `(item, type)`
    /// replaces the previous value (latest annotation wins).
    pub fn annotate(
        &self,
        item: &Term,
        evidence_type: &Iri,
        value: EvidenceValue,
    ) -> Result<()> {
        if !self.iq.is_evidence_type(evidence_type) {
            return Err(AnnotationError::NotEvidence(format!(
                "<{evidence_type}> (annotating {item})"
            )));
        }
        let Some(value_term) = value.to_term() else {
            // Null: record nothing; absence is the null.
            return Ok(());
        };
        let a = Term::iri(rdf::TYPE);
        let contains = Term::Iri(vocab::contains_evidence());
        let value_prop = Term::Iri(vocab::value());

        let mut store = self.store.write();
        // Replace any previous evidence node of this type for this item.
        let old_nodes: Vec<Term> = store
            .matching(&TriplePattern::new(item.clone(), contains.clone(), None))
            .map(|t| t.object)
            .filter(|node| {
                store.contains(&Triple::new(
                    node.clone(),
                    a.clone(),
                    Term::Iri(evidence_type.clone()),
                ))
            })
            .collect();
        for node in old_nodes {
            store.remove_matching(&TriplePattern::new(node.clone(), None, None));
            store.remove(&Triple::new(item.clone(), contains.clone(), node));
        }
        let node = Term::blank(format!(
            "{}-e{}",
            self.name,
            self.blank_counter.fetch_add(1, Ordering::Relaxed)
        ));
        store.insert(Triple::new(item.clone(), contains.clone(), node.clone()));
        store.insert(Triple::new(
            node.clone(),
            a,
            Term::Iri(evidence_type.clone()),
        ));
        store.insert(Triple::new(node, value_prop, value_term));
        Ok(())
    }

    /// Records the data-entity type of an item (`rdf:type` triple).
    pub fn record_item_type(&self, item: &Term, entity_type: &Iri) -> Result<()> {
        if !self.iq.is_data_entity_type(entity_type) {
            return Err(AnnotationError::NotEvidence(format!(
                "<{entity_type}> is not a DataEntity class"
            )));
        }
        self.store.write().insert(Triple::new(
            item.clone(),
            Term::iri(rdf::TYPE),
            Term::Iri(entity_type.clone()),
        ));
        Ok(())
    }

    /// The `(item, evidence type)` lookup of §5.
    pub fn lookup(&self, item: &Term, evidence_type: &Iri) -> Result<EvidenceValue> {
        match self.lookup_mode {
            LookupMode::Sparql => self.lookup_sparql(item, evidence_type),
            LookupMode::Direct => Ok(self.lookup_direct(item, evidence_type)),
        }
    }

    /// SPARQL-based lookup — generates the query shape of §5.
    pub fn lookup_sparql(&self, item: &Term, evidence_type: &Iri) -> Result<EvidenceValue> {
        let Term::Iri(item_iri) = item else {
            return Ok(EvidenceValue::Null);
        };
        let query = format!(
            "PREFIX q: <http://qurator.org/iq#>\n\
             SELECT ?v WHERE {{\n\
               <{item_iri}> q:contains-evidence ?e .\n\
               ?e a <{evidence_type}> ; q:value ?v .\n\
             }}"
        );
        let store = self.store.read();
        let rows = sparql::select(&store, &query)
            .map_err(|e| AnnotationError::Rdf(e.to_string()))?;
        Ok(rows
            .first()
            .and_then(|r| r.get("v"))
            .map(EvidenceValue::from_term)
            .unwrap_or(EvidenceValue::Null))
    }

    /// Index-walking lookup (E3 ablation baseline).
    pub fn lookup_direct(&self, item: &Term, evidence_type: &Iri) -> EvidenceValue {
        let store = self.store.read();
        let contains = Term::Iri(vocab::contains_evidence());
        let a = Term::iri(rdf::TYPE);
        let value_prop = Term::Iri(vocab::value());
        for node in store
            .matching(&TriplePattern::new(item.clone(), contains.clone(), None))
            .map(|t| t.object)
        {
            if store.contains(&Triple::new(
                node.clone(),
                a.clone(),
                Term::Iri(evidence_type.clone()),
            )) {
                if let Some(v) = store.object(&node, &value_prop) {
                    return EvidenceValue::from_term(&v);
                }
            }
        }
        EvidenceValue::Null
    }

    /// The Data-Enrichment primitive: fetches the given evidence types for
    /// every item, producing an annotation map (nulls where absent).
    pub fn enrich(
        &self,
        items: &[Term],
        evidence_types: &[Iri],
    ) -> Result<AnnotationMap> {
        let mut map = AnnotationMap::for_items(items.iter().cloned());
        for item in items {
            for evidence_type in evidence_types {
                let value = self.lookup(item, evidence_type)?;
                if !value.is_null() {
                    map.set_evidence(item, evidence_type.clone(), value);
                }
            }
        }
        Ok(map)
    }

    /// Bulk-writes every evidence entry of an annotation map.
    pub fn store_map(&self, map: &AnnotationMap) -> Result<usize> {
        let mut written = 0;
        for item in map.items() {
            let row = map.item(item).expect("listed");
            for (evidence_type, value) in row.evidence_entries() {
                self.annotate(item, evidence_type, value.clone())?;
                written += 1;
            }
        }
        Ok(written)
    }

    /// Drops all annotations (cache repositories are cleared between
    /// process executions; calling this on a persistent repository is
    /// allowed but unusual and returns `false` to flag it).
    pub fn clear(&self) -> bool {
        self.store.write().clear();
        !self.persistent
    }

    /// Serializes the annotation graph as Turtle (persistence format).
    pub fn export_turtle(&self) -> String {
        qurator_rdf::turtle::serialize(&self.store.read(), &PrefixMap::with_defaults())
    }

    /// Loads annotations from Turtle produced by [`Self::export_turtle`]
    /// (contents are added to whatever is already stored).
    pub fn import_turtle(&self, text: &str) -> Result<usize> {
        let (triples, _) = qurator_rdf::turtle::parse(text)
            .map_err(|e| AnnotationError::Rdf(e.to_string()))?;
        let mut store = self.store.write();
        Ok(store.extend(triples))
    }

    /// Runs an arbitrary SPARQL SELECT against the annotation graph.
    pub fn query(&self, query: &str) -> Result<Vec<sparql::Row>> {
        let store = self.store.read();
        sparql::select(&store, query).map_err(|e| AnnotationError::Rdf(e.to_string()))
    }
}

impl std::fmt::Debug for AnnotationRepository {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnnotationRepository")
            .field("name", &self.name)
            .field("persistent", &self.persistent)
            .field("triples", &self.triple_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_rdf::namespace::q;

    fn repo() -> AnnotationRepository {
        let iq = Arc::new(IqModel::with_proteomics_extension().unwrap());
        AnnotationRepository::new("cache", false, iq)
    }

    fn item(n: u32) -> Term {
        Term::iri(format!("urn:lsid:uniprot.org:uniprot:P{n:05}"))
    }

    #[test]
    fn annotate_and_lookup_both_modes() {
        let r = repo();
        r.annotate(&item(30089), &q::iri("HitRatio"), 0.82.into()).unwrap();
        r.annotate(&item(30089), &q::iri("MassCoverage"), 31.into()).unwrap();
        assert_eq!(
            r.lookup_sparql(&item(30089), &q::iri("HitRatio")).unwrap(),
            EvidenceValue::Number(0.82)
        );
        assert_eq!(
            r.lookup_direct(&item(30089), &q::iri("HitRatio")),
            EvidenceValue::Number(0.82)
        );
        assert_eq!(
            r.lookup(&item(30089), &q::iri("MassCoverage")).unwrap(),
            EvidenceValue::Number(31.0)
        );
        assert_eq!(
            r.lookup(&item(30089), &q::iri("PeptidesCount")).unwrap(),
            EvidenceValue::Null
        );
        assert_eq!(
            r.lookup(&item(99999), &q::iri("HitRatio")).unwrap(),
            EvidenceValue::Null
        );
    }

    #[test]
    fn rewrite_replaces_value() {
        let r = repo();
        r.annotate(&item(1), &q::iri("HitRatio"), 0.1.into()).unwrap();
        r.annotate(&item(1), &q::iri("HitRatio"), 0.9.into()).unwrap();
        assert_eq!(
            r.lookup(&item(1), &q::iri("HitRatio")).unwrap(),
            EvidenceValue::Number(0.9)
        );
        // exactly one evidence node of that type remains
        assert_eq!(r.triple_count(), 3);
    }

    #[test]
    fn ontology_validation_rejects_non_evidence() {
        let r = repo();
        let err = r
            .annotate(&item(1), &q::iri("UniversalPIScore2"), 1.0.into())
            .unwrap_err();
        assert!(matches!(err, AnnotationError::NotEvidence(_)));
        let err = r
            .annotate(&item(1), &Iri::new("http://random/thing"), 1.0.into())
            .unwrap_err();
        assert!(matches!(err, AnnotationError::NotEvidence(_)));
    }

    #[test]
    fn null_values_are_not_stored() {
        let r = repo();
        r.annotate(&item(1), &q::iri("HitRatio"), EvidenceValue::Null).unwrap();
        assert_eq!(r.triple_count(), 0);
    }

    #[test]
    fn enrich_builds_annotation_map() {
        let r = repo();
        for i in 1..=3 {
            r.annotate(&item(i), &q::iri("HitRatio"), (0.1 * i as f64).into()).unwrap();
        }
        r.annotate(&item(2), &q::iri("MassCoverage"), 25.into()).unwrap();
        let items: Vec<Term> = (1..=3).map(item).collect();
        let map = r
            .enrich(&items, &[q::iri("HitRatio"), q::iri("MassCoverage")])
            .unwrap();
        assert_eq!(map.len(), 3);
        assert_eq!(
            map.item(&item(2)).unwrap().evidence(&q::iri("MassCoverage")),
            EvidenceValue::Number(25.0)
        );
        assert_eq!(
            map.item(&item(1)).unwrap().evidence(&q::iri("MassCoverage")),
            EvidenceValue::Null
        );
    }

    #[test]
    fn store_map_roundtrip() {
        let r = repo();
        let mut map = AnnotationMap::new();
        map.set_evidence(&item(1), q::iri("HitRatio"), 0.7.into());
        map.set_evidence(&item(1), q::iri("Coverage"), 12.into());
        let written = r.store_map(&map).unwrap();
        assert_eq!(written, 2);
        let back = r.enrich(&[item(1)], &[q::iri("HitRatio"), q::iri("Coverage")]).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn turtle_persistence_roundtrip() {
        let r = repo();
        r.record_item_type(&item(1), &q::iri("ImprintHitEntry")).unwrap();
        r.annotate(&item(1), &q::iri("HitRatio"), 0.5.into()).unwrap();
        let text = r.export_turtle();
        let fresh = repo();
        fresh.import_turtle(&text).unwrap();
        assert_eq!(
            fresh.lookup(&item(1), &q::iri("HitRatio")).unwrap(),
            EvidenceValue::Number(0.5)
        );
    }

    #[test]
    fn clear_flags_persistence() {
        let iq = Arc::new(IqModel::with_proteomics_extension().unwrap());
        let cache = AnnotationRepository::new("cache", false, iq.clone());
        let durable = AnnotationRepository::new("uniprot", true, iq);
        cache.annotate(&item(1), &q::iri("HitRatio"), 1.0.into()).unwrap();
        assert!(cache.clear());
        assert_eq!(cache.triple_count(), 0);
        assert!(!durable.clear());
    }

    #[test]
    fn record_item_type_validates() {
        let r = repo();
        r.record_item_type(&item(1), &q::iri("ImprintHitEntry")).unwrap();
        assert!(r.record_item_type(&item(1), &q::iri("HitRatio")).is_err());
    }

    #[test]
    fn concurrent_annotation() {
        let r = Arc::new(repo());
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let r = r.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        let id = worker * 100 + i;
                        r.annotate(&item(id), &q::iri("HitRatio"), (id as f64).into())
                            .unwrap();
                    }
                });
            }
        });
        assert_eq!(r.triple_count(), 3 * 200);
        assert_eq!(
            r.lookup(&item(307), &q::iri("HitRatio")).unwrap(),
            EvidenceValue::Number(307.0)
        );
    }
}
