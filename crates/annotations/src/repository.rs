//! Annotation repositories: RDF-graph stores of quality annotations with
//! ontology-validated writes and SPARQL-based retrieval.
//!
//! The encoding follows the paper's Figure 2 exactly: a data item (an
//! LSID-wrapped IRI) carries `q:contains-evidence` links to evidence nodes;
//! each evidence node is typed with its `q:QualityEvidence` subclass and
//! carries a `q:value` literal.
//!
//! ```text
//! <urn:lsid:uniprot.org:uniprot:P30089>
//!     a q:ImprintHitEntry ;
//!     q:contains-evidence _:e1 .
//! _:e1 a q:HitRatio ; q:value 0.82 .
//! ```

use crate::map::AnnotationMap;
use crate::value::EvidenceValue;
use crate::{AnnotationError, Result};
use parking_lot::RwLock;
use qurator_ontology::iq::{vocab, IqModel};
use qurator_rdf::namespace::{rdf, PrefixMap};
use qurator_rdf::sparql::{self, PreparedQuery};
use qurator_rdf::storage::{DiskBackend, MemoryBackend, Storage};
use qurator_rdf::term::{Iri, Term};
use qurator_rdf::triple::{Triple, TriplePattern};
use qurator_telemetry::{Counter, Histogram};
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Maps storage-layer failures into the annotation error space.
fn rdf_err(e: qurator_rdf::RdfError) -> AnnotationError {
    AnnotationError::Rdf(e.to_string())
}

fn lookup_count() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| qurator_telemetry::metrics().counter("enrich.lookup.count"))
}

fn lookup_latency() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| qurator_telemetry::metrics().histogram("enrich.lookup.latency_ns"))
}

fn bulk_calls() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| qurator_telemetry::metrics().counter("enrich.bulk.calls"))
}

fn bulk_rows() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| qurator_telemetry::metrics().counter("enrich.bulk.rows"))
}

fn bulk_latency() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| qurator_telemetry::metrics().histogram("enrich.bulk.latency_ns"))
}

fn bulk_sparse() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| qurator_telemetry::metrics().counter("enrich.bulk.sparse"))
}

fn bulk_dense() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| qurator_telemetry::metrics().counter("enrich.bulk.dense"))
}

fn annotate_count() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| qurator_telemetry::metrics().counter("annotations.write.count"))
}

/// How a repository answers `(data item, evidence type)` lookups — §5 uses
/// SPARQL; the other modes are the E3 ablation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LookupMode {
    /// Generate, parse and evaluate a SPARQL SELECT per lookup
    /// (paper-faithful baseline; pays a parse per `(item, type)` pair).
    #[default]
    Sparql,
    /// Evaluate a shared pre-parsed SELECT with `(item, type)` bound as
    /// parameters — same query shape as [`LookupMode::Sparql`], no parsing,
    /// immune to IRI injection by construction.
    Prepared,
    /// Walk the triple indexes directly.
    Direct,
}

/// The canonical §5 lookup, parsed once per process: bind `?item` and
/// `?etype` to get the evidence values of one `(data item, evidence type)`
/// pair.
fn lookup_query() -> &'static PreparedQuery {
    static QUERY: OnceLock<PreparedQuery> = OnceLock::new();
    QUERY.get_or_init(|| {
        PreparedQuery::new(
            "PREFIX q: <http://qurator.org/iq#>\n\
             SELECT ?v WHERE {\n\
               ?item q:contains-evidence ?e .\n\
               ?e a ?etype ; q:value ?v .\n\
             }",
        )
        .expect("canonical lookup query parses")
    })
}

/// A quality-annotation repository.
///
/// Thread-safe: processors executing in parallel waves may annotate and
/// enrich concurrently. Writes validate the evidence class against the IQ
/// model ("guarantees that the metadata complies with the ontology model",
/// §5).
pub struct AnnotationRepository {
    name: String,
    persistent: bool,
    iq: Arc<IqModel>,
    store: RwLock<Box<dyn Storage>>,
    lookup_mode: LookupMode,
    blank_counter: AtomicU64,
}

impl AnnotationRepository {
    /// Creates an in-memory repository. `persistent = false` marks a
    /// per-execution cache whose contents are dropped by
    /// [`AnnotationRepository::clear`] between process executions (§4).
    pub fn new(name: impl Into<String>, persistent: bool, iq: Arc<IqModel>) -> Self {
        AnnotationRepository {
            name: name.into(),
            persistent,
            iq,
            store: RwLock::new(Box::new(MemoryBackend::new())),
            lookup_mode: LookupMode::default(),
            blank_counter: AtomicU64::new(0),
        }
    }

    /// Opens (creating if absent) a disk-backed repository rooted at `dir`.
    ///
    /// Because storage ids are stable across reopen, evidence-node blank
    /// labels minted by earlier process lifetimes are still present; the
    /// blank counter restarts past the highest `{name}-e<n>` label found so
    /// a restarted `qv serve` never reuses an evidence node.
    pub fn open_disk(
        name: impl Into<String>,
        persistent: bool,
        iq: Arc<IqModel>,
        dir: impl Into<PathBuf>,
    ) -> Result<Self> {
        let name = name.into();
        let store = DiskBackend::open(dir).map_err(rdf_err)?;
        let prefix = format!("{name}-e");
        let mut next = 0u64;
        for id in 0..store.term_count() as u32 {
            if let Some(Term::Blank(node)) = store.try_term_at(id) {
                if let Some(n) =
                    node.label().strip_prefix(&prefix).and_then(|rest| rest.parse::<u64>().ok())
                {
                    next = next.max(n + 1);
                }
            }
        }
        Ok(AnnotationRepository {
            name,
            persistent,
            iq,
            store: RwLock::new(Box::new(store)),
            lookup_mode: LookupMode::default(),
            blank_counter: AtomicU64::new(next),
        })
    }

    /// Durability barrier: group-commits everything written so far. A no-op
    /// for in-memory repositories.
    pub fn flush(&self) -> Result<()> {
        self.store.write().flush().map_err(rdf_err)
    }

    /// Folds the journal into the base segment (disk backends); a no-op in
    /// memory.
    pub fn checkpoint(&self) -> Result<()> {
        self.store.write().checkpoint().map_err(rdf_err)
    }

    /// Which storage backend answers this repository's lookups.
    pub fn backend_name(&self) -> &'static str {
        self.store.read().backend_name()
    }

    /// The on-disk store directory, if this repository is disk-backed.
    pub fn store_path(&self) -> Option<PathBuf> {
        self.store.read().path().map(Path::to_path_buf)
    }

    /// Number of interned terms (diagnostics).
    pub fn term_count(&self) -> usize {
        self.store.read().term_count()
    }

    /// Storage-layer snapshot of the backing store (journal depth, base
    /// segment size, dictionary size, compaction facts) — the expanded
    /// `GET /store` surface.
    pub fn storage_status(&self) -> qurator_rdf::storage::StorageStatus {
        self.store.read().status()
    }

    /// Switches the lookup implementation (E3 ablation).
    pub fn with_lookup_mode(mut self, mode: LookupMode) -> Self {
        self.lookup_mode = mode;
        self
    }

    /// The repository name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether annotations here outlive a single process execution.
    pub fn is_persistent(&self) -> bool {
        self.persistent
    }

    /// Number of stored triples (diagnostics).
    pub fn triple_count(&self) -> usize {
        self.store.read().len()
    }

    /// The distinct evidence types this repository currently holds
    /// annotations for — the inventory the static analyzer checks
    /// enrichment fetches against (QV024). Reads the `rdf:type` facts
    /// [`annotate`](Self::annotate) writes on evidence nodes, filtered
    /// to registered evidence classes (item-type records don't count).
    pub fn annotated_evidence_types(&self) -> Vec<Iri> {
        let store = self.store.read();
        let mut out: Vec<Iri> = Vec::new();
        for triple in store.matching(&TriplePattern::new(None, Term::iri(rdf::TYPE), None)) {
            if let Term::Iri(class) = triple.object {
                if self.iq.is_evidence_type(&class) && !out.contains(&class) {
                    out.push(class);
                }
            }
        }
        out.sort();
        out
    }

    /// Writes one annotation: `item --evidence_type--> value`.
    ///
    /// Returns an error when `evidence_type` is not a registered subclass of
    /// `q:QualityEvidence`. A repeated write for the same `(item, type)`
    /// replaces the previous value (latest annotation wins).
    pub fn annotate(&self, item: &Term, evidence_type: &Iri, value: EvidenceValue) -> Result<()> {
        if !self.iq.is_evidence_type(evidence_type) {
            return Err(AnnotationError::NotEvidence(format!(
                "<{evidence_type}> (annotating {item})"
            )));
        }
        let Some(value_term) = value.to_term() else {
            // Null: record nothing; absence is the null.
            return Ok(());
        };
        let a = Term::iri(rdf::TYPE);
        let contains = Term::Iri(vocab::contains_evidence());
        let value_prop = Term::Iri(vocab::value());

        let mut store = self.store.write();
        // Replace any previous evidence node of this type for this item.
        let old_nodes: Vec<Term> = store
            .matching(&TriplePattern::new(item.clone(), contains.clone(), None))
            .map(|t| t.object)
            .filter(|node| {
                store.contains(&Triple::new(
                    node.clone(),
                    a.clone(),
                    Term::Iri(evidence_type.clone()),
                ))
            })
            .collect();
        for node in old_nodes {
            store.remove_matching(&TriplePattern::new(node.clone(), None, None));
            store.remove(&Triple::new(item.clone(), contains.clone(), node));
        }
        let node = Term::blank(format!(
            "{}-e{}",
            self.name,
            self.blank_counter.fetch_add(1, Ordering::Relaxed)
        ));
        store.insert(Triple::new(item.clone(), contains.clone(), node.clone())).map_err(rdf_err)?;
        store
            .insert(Triple::new(node.clone(), a, Term::Iri(evidence_type.clone())))
            .map_err(rdf_err)?;
        store.insert(Triple::new(node, value_prop, value_term)).map_err(rdf_err)?;
        annotate_count().inc();
        Ok(())
    }

    /// Records the data-entity type of an item (`rdf:type` triple).
    pub fn record_item_type(&self, item: &Term, entity_type: &Iri) -> Result<()> {
        if !self.iq.is_data_entity_type(entity_type) {
            return Err(AnnotationError::NotEvidence(format!(
                "<{entity_type}> is not a DataEntity class"
            )));
        }
        self.store
            .write()
            .insert(Triple::new(item.clone(), Term::iri(rdf::TYPE), Term::Iri(entity_type.clone())))
            .map_err(rdf_err)?;
        Ok(())
    }

    /// The `(item, evidence type)` lookup of §5.
    pub fn lookup(&self, item: &Term, evidence_type: &Iri) -> Result<EvidenceValue> {
        let started = Instant::now();
        let result = match self.lookup_mode {
            LookupMode::Sparql => self.lookup_sparql(item, evidence_type),
            LookupMode::Prepared => self.lookup_prepared(item, evidence_type),
            LookupMode::Direct => Ok(self.lookup_direct(item, evidence_type)),
        };
        lookup_count().inc();
        lookup_latency().record(started.elapsed().as_nanos() as u64);
        result
    }

    /// SPARQL-based lookup — renders and parses the query text of §5 per
    /// call (the paper-faithful baseline).
    ///
    /// An [`Iri`] can never contain `>`, `"` or whitespace, so an
    /// interpolated IRI cannot escape its `<…>` brackets. But IRIs whose
    /// first character makes `<` lex as a comparison operator (digits, `-`,
    /// `?`, `=`) would silently corrupt the rendered query; those are
    /// refused with an explicit error. [`LookupMode::Prepared`] handles
    /// every valid IRI because it never renders IRIs into query text.
    pub fn lookup_sparql(&self, item: &Term, evidence_type: &Iri) -> Result<EvidenceValue> {
        let Term::Iri(item_iri) = item else {
            return Ok(EvidenceValue::Null);
        };
        for iri in [item_iri, evidence_type] {
            if matches!(
                iri.as_str().as_bytes().first(),
                Some(b) if b.is_ascii_digit() || matches!(b, b'-' | b'?' | b'=')
            ) {
                return Err(AnnotationError::Rdf(format!(
                    "refusing to interpolate <{iri}> into SPARQL text: it would \
                     mis-lex as an operator; use LookupMode::Prepared"
                )));
            }
        }
        let query = format!(
            "PREFIX q: <http://qurator.org/iq#>\n\
             SELECT ?v WHERE {{\n\
               <{item_iri}> q:contains-evidence ?e .\n\
               ?e a <{evidence_type}> ; q:value ?v .\n\
             }}"
        );
        let store = self.store.read();
        let rows =
            sparql::select(&**store, &query).map_err(|e| AnnotationError::Rdf(e.to_string()))?;
        Ok(rows
            .first()
            .and_then(|r| r.get("v"))
            .map(EvidenceValue::from_term)
            .unwrap_or(EvidenceValue::Null))
    }

    /// Prepared-query lookup: same query shape as [`Self::lookup_sparql`],
    /// parsed once per process, with `(item, type)` bound at evaluation
    /// time. Non-IRI items read as null, mirroring the SPARQL path.
    pub fn lookup_prepared(&self, item: &Term, evidence_type: &Iri) -> Result<EvidenceValue> {
        if !matches!(item, Term::Iri(_)) {
            return Ok(EvidenceValue::Null);
        }
        let store = self.store.read();
        let rows = lookup_query()
            .select(
                &**store,
                &[("item", item.clone()), ("etype", Term::Iri(evidence_type.clone()))],
            )
            .map_err(|e| AnnotationError::Rdf(e.to_string()))?;
        Ok(rows
            .first()
            .and_then(|r| r.get("v"))
            .map(EvidenceValue::from_term)
            .unwrap_or(EvidenceValue::Null))
    }

    /// Index-walking lookup (E3 ablation baseline).
    pub fn lookup_direct(&self, item: &Term, evidence_type: &Iri) -> EvidenceValue {
        let store = self.store.read();
        let contains = Term::Iri(vocab::contains_evidence());
        let a = Term::iri(rdf::TYPE);
        let value_prop = Term::Iri(vocab::value());
        for node in store
            .matching(&TriplePattern::new(item.clone(), contains.clone(), None))
            .map(|t| t.object)
        {
            if store.contains(&Triple::new(
                node.clone(),
                a.clone(),
                Term::Iri(evidence_type.clone()),
            )) {
                if let Some(v) = store.object(&node, &value_prop) {
                    return EvidenceValue::from_term(&v);
                }
            }
        }
        EvidenceValue::Null
    }

    /// The Data-Enrichment primitive: fetches the given evidence types for
    /// every item, producing an annotation map (nulls where absent).
    ///
    /// Issues one [`Self::lookup`] per `(item, type)` pair in the current
    /// [`LookupMode`] — the E3 ablation baseline. Production callers should
    /// prefer [`Self::enrich_bulk`], which answers the whole batch from a
    /// single index scan.
    pub fn enrich(&self, items: &[Term], evidence_types: &[Iri]) -> Result<AnnotationMap> {
        let mut map = AnnotationMap::for_items(items.iter().cloned());
        for item in items {
            for evidence_type in evidence_types {
                let value = self.lookup(item, evidence_type)?;
                if !value.is_null() {
                    map.set_evidence(item, evidence_type.clone(), value);
                }
            }
        }
        Ok(map)
    }

    /// Batched Data Enrichment: one read lock, one range scan over the
    /// `q:contains-evidence` edges, hash-joined against the requested item
    /// and evidence-type sets.
    ///
    /// Returns exactly the map [`Self::enrich`] would: per `(item, type)`
    /// the deciding evidence node is the first (in index order) that has the
    /// type and a `q:value` — the same node every per-pair mode finds —
    /// and null values are left unrecorded. (Non-IRI items are resolved
    /// like [`LookupMode::Direct`]; the SPARQL modes read them as null.)
    pub fn enrich_bulk(&self, items: &[Term], evidence_types: &[Iri]) -> Result<AnnotationMap> {
        let started = Instant::now();
        bulk_calls().inc();
        bulk_rows().add(items.len() as u64);
        let mut map = AnnotationMap::for_items(items.iter().cloned());
        if items.is_empty() || evidence_types.is_empty() {
            bulk_latency().record(started.elapsed().as_nanos() as u64);
            return Ok(map);
        }

        let store = self.store.read();
        // The whole join runs on interned u32 ids; a term the dictionary has
        // never seen (item, type, or even the vocabulary itself in an empty
        // repository) can contribute no evidence.
        let (Some(contains), Some(a), Some(value_prop)) = (
            store.id_of(&Term::Iri(vocab::contains_evidence())),
            store.id_of(&Term::iri(rdf::TYPE)),
            store.id_of(&Term::Iri(vocab::value())),
        ) else {
            return Ok(map);
        };
        let item_ids: Vec<Option<u32>> = items.iter().map(|i| store.id_of(i)).collect();
        let type_ids: Vec<Option<u32>> =
            evidence_types.iter().map(|t| store.id_of(&Term::Iri(t.clone()))).collect();
        let item_set: HashSet<u32> = item_ids.iter().flatten().copied().collect();
        let wanted: HashSet<u32> = type_ids.iter().flatten().copied().collect();

        // Whichever access path feeds it, evidence nodes arrive per item in
        // ascending id order — the same order the per-pair scans use — so
        // first-wins picks the identical node.
        let mut decided: HashMap<(u32, u32), u32> =
            HashMap::with_capacity(item_set.len() * wanted.len());
        // Adaptive access path. The Figure-2 encoding spends ~3 triples per
        // evidence node, so `len() / 3` estimates the contains-evidence edge
        // count. A sparse request (e.g. one chunk of a parallel fan-out)
        // walks only its items' SPO ranges; a request covering most of the
        // store is answered by three linear POS scans (edges, values, types)
        // joined on ids, with no per-node range seeks. Per `(item, type)`
        // both paths elect the same node — the lowest-id evidence node that
        // carries the type and a value — so the choice is invisible in the
        // result.
        if item_set.len() * 8 <= store.len() / 3 {
            bulk_sparse().inc();
            let mut consider = |item: u32, node: u32| {
                let Some(value_term) = store.object_ids(node, value_prop).next() else {
                    // Typed but valueless nodes never decide a pair.
                    return;
                };
                for etype in store.object_ids(node, a) {
                    if wanted.contains(&etype) {
                        decided.entry((item, etype)).or_insert(value_term);
                    }
                }
            };
            for &item in &item_set {
                for node in store.object_ids(item, contains) {
                    consider(item, node);
                }
            }
        } else {
            bulk_dense().inc();
            // Requested contains-evidence edges as (node, item), already in
            // ascending (node, item) order courtesy of the POS index.
            let edges: Vec<(u32, u32)> = store
                .edge_ids(contains)
                .filter(|(item, _)| item_set.contains(item))
                .map(|(item, node)| (node, item))
                .collect();
            // First q:value per node. The scan ascends by (value, node) id,
            // so a node's first sighting carries its lowest value id — the
            // value `object_ids(node, value).next()` would return.
            let mut node_value: HashMap<u32, u32> = HashMap::with_capacity(edges.len());
            for (node, value) in store.edge_ids(value_prop) {
                node_value.entry(node).or_insert(value);
            }
            // Typed edges ascend by (etype, node): per wanted type, nodes
            // arrive in ascending order, so first-wins elects the same node
            // as the per-pair scans.
            for (node, etype) in store.edge_ids(a) {
                if !wanted.contains(&etype) {
                    continue;
                }
                let Some(&value) = node_value.get(&node) else {
                    continue;
                };
                let start = edges.partition_point(|&(n, _)| n < node);
                for &(n, item) in &edges[start..] {
                    if n != node {
                        break;
                    }
                    decided.entry((item, etype)).or_insert(value);
                }
            }
        }

        // Emit in (item, type) request order so the result is structurally
        // identical to the per-pair path's map; only winning terms decode,
        // and each item's row is located once, not once per pair.
        for (item, item_id) in items.iter().zip(&item_ids) {
            let Some(item_id) = item_id else { continue };
            let row = map.row_mut(item).expect("seeded by for_items");
            for (evidence_type, type_id) in evidence_types.iter().zip(&type_ids) {
                let Some(type_id) = type_id else { continue };
                if let Some(&value_id) = decided.get(&(*item_id, *type_id)) {
                    // Trust boundary: on a disk backend `value_id` came off a
                    // segment file, so decode fallibly instead of panicking.
                    let value_term = store.try_term_at(value_id).ok_or_else(|| {
                        AnnotationError::Rdf(format!(
                            "corrupt store: evidence value id {value_id} has no term"
                        ))
                    })?;
                    let value = EvidenceValue::from_term(&value_term);
                    if !value.is_null() {
                        row.insert_evidence(evidence_type.clone(), value);
                    }
                }
            }
        }
        bulk_latency().record(started.elapsed().as_nanos() as u64);
        Ok(map)
    }

    /// Bulk-writes every evidence entry of an annotation map.
    pub fn store_map(&self, map: &AnnotationMap) -> Result<usize> {
        let mut written = 0;
        for item in map.items() {
            let row = map.item(item).expect("listed");
            for (evidence_type, value) in row.evidence_entries() {
                self.annotate(item, evidence_type, value.clone())?;
                written += 1;
            }
        }
        Ok(written)
    }

    /// Drops all annotations (cache repositories are cleared between
    /// process executions; calling this on a persistent repository is
    /// allowed but unusual and returns `false` to flag it).
    pub fn clear(&self) -> bool {
        self.store.write().clear();
        !self.persistent
    }

    /// Serializes the annotation graph as Turtle (persistence format).
    pub fn export_turtle(&self) -> String {
        let store = self.store.read();
        qurator_rdf::turtle::serialize(&**store, &PrefixMap::with_defaults())
    }

    /// Loads annotations from Turtle produced by [`Self::export_turtle`]
    /// (contents are added to whatever is already stored).
    pub fn import_turtle(&self, text: &str) -> Result<usize> {
        let (triples, _) =
            qurator_rdf::turtle::parse(text).map_err(|e| AnnotationError::Rdf(e.to_string()))?;
        let mut store = self.store.write();
        store.insert_all(&mut triples.into_iter()).map_err(rdf_err)
    }

    /// Runs an arbitrary SPARQL SELECT against the annotation graph.
    pub fn query(&self, query: &str) -> Result<Vec<sparql::Row>> {
        let store = self.store.read();
        sparql::select(&**store, query).map_err(|e| AnnotationError::Rdf(e.to_string()))
    }
}

impl std::fmt::Debug for AnnotationRepository {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnnotationRepository")
            .field("name", &self.name)
            .field("persistent", &self.persistent)
            .field("backend", &self.backend_name())
            .field("triples", &self.triple_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_rdf::namespace::q;

    fn repo() -> AnnotationRepository {
        let iq = Arc::new(IqModel::with_proteomics_extension().unwrap());
        AnnotationRepository::new("cache", false, iq)
    }

    fn item(n: u32) -> Term {
        Term::iri(format!("urn:lsid:uniprot.org:uniprot:P{n:05}"))
    }

    #[test]
    fn annotate_and_lookup_both_modes() {
        let r = repo();
        r.annotate(&item(30089), &q::iri("HitRatio"), 0.82.into()).unwrap();
        r.annotate(&item(30089), &q::iri("MassCoverage"), 31.into()).unwrap();
        assert_eq!(
            r.lookup_sparql(&item(30089), &q::iri("HitRatio")).unwrap(),
            EvidenceValue::Number(0.82)
        );
        assert_eq!(r.lookup_direct(&item(30089), &q::iri("HitRatio")), EvidenceValue::Number(0.82));
        assert_eq!(
            r.lookup(&item(30089), &q::iri("MassCoverage")).unwrap(),
            EvidenceValue::Number(31.0)
        );
        assert_eq!(r.lookup(&item(30089), &q::iri("PeptidesCount")).unwrap(), EvidenceValue::Null);
        assert_eq!(r.lookup(&item(99999), &q::iri("HitRatio")).unwrap(), EvidenceValue::Null);
    }

    #[test]
    fn rewrite_replaces_value() {
        let r = repo();
        r.annotate(&item(1), &q::iri("HitRatio"), 0.1.into()).unwrap();
        r.annotate(&item(1), &q::iri("HitRatio"), 0.9.into()).unwrap();
        assert_eq!(r.lookup(&item(1), &q::iri("HitRatio")).unwrap(), EvidenceValue::Number(0.9));
        // exactly one evidence node of that type remains
        assert_eq!(r.triple_count(), 3);
    }

    #[test]
    fn ontology_validation_rejects_non_evidence() {
        let r = repo();
        let err = r.annotate(&item(1), &q::iri("UniversalPIScore2"), 1.0.into()).unwrap_err();
        assert!(matches!(err, AnnotationError::NotEvidence(_)));
        let err = r.annotate(&item(1), &Iri::new("http://random/thing"), 1.0.into()).unwrap_err();
        assert!(matches!(err, AnnotationError::NotEvidence(_)));
    }

    #[test]
    fn null_values_are_not_stored() {
        let r = repo();
        r.annotate(&item(1), &q::iri("HitRatio"), EvidenceValue::Null).unwrap();
        assert_eq!(r.triple_count(), 0);
    }

    #[test]
    fn annotated_evidence_types_inventories_the_store() {
        let r = repo();
        assert!(r.annotated_evidence_types().is_empty());
        r.annotate(&item(1), &q::iri("HitRatio"), 0.5.into()).unwrap();
        r.annotate(&item(2), &q::iri("HitRatio"), 0.7.into()).unwrap();
        r.annotate(&item(1), &q::iri("MassCoverage"), 31.into()).unwrap();
        // duplicates collapse; order is the sorted-IRI order QV024 keys on
        assert_eq!(r.annotated_evidence_types(), vec![q::iri("HitRatio"), q::iri("MassCoverage")]);
    }

    #[test]
    fn enrich_builds_annotation_map() {
        let r = repo();
        for i in 1..=3 {
            r.annotate(&item(i), &q::iri("HitRatio"), (0.1 * i as f64).into()).unwrap();
        }
        r.annotate(&item(2), &q::iri("MassCoverage"), 25.into()).unwrap();
        let items: Vec<Term> = (1..=3).map(item).collect();
        let map = r.enrich(&items, &[q::iri("HitRatio"), q::iri("MassCoverage")]).unwrap();
        assert_eq!(map.len(), 3);
        assert_eq!(
            map.item(&item(2)).unwrap().evidence(&q::iri("MassCoverage")),
            EvidenceValue::Number(25.0)
        );
        assert_eq!(
            map.item(&item(1)).unwrap().evidence(&q::iri("MassCoverage")),
            EvidenceValue::Null
        );
    }

    #[test]
    fn store_map_roundtrip() {
        let r = repo();
        let mut map = AnnotationMap::new();
        map.set_evidence(&item(1), q::iri("HitRatio"), 0.7.into());
        map.set_evidence(&item(1), q::iri("Coverage"), 12.into());
        let written = r.store_map(&map).unwrap();
        assert_eq!(written, 2);
        let back = r.enrich(&[item(1)], &[q::iri("HitRatio"), q::iri("Coverage")]).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn turtle_persistence_roundtrip() {
        let r = repo();
        r.record_item_type(&item(1), &q::iri("ImprintHitEntry")).unwrap();
        r.annotate(&item(1), &q::iri("HitRatio"), 0.5.into()).unwrap();
        let text = r.export_turtle();
        let fresh = repo();
        fresh.import_turtle(&text).unwrap();
        assert_eq!(
            fresh.lookup(&item(1), &q::iri("HitRatio")).unwrap(),
            EvidenceValue::Number(0.5)
        );
    }

    #[test]
    fn clear_flags_persistence() {
        let iq = Arc::new(IqModel::with_proteomics_extension().unwrap());
        let cache = AnnotationRepository::new("cache", false, iq.clone());
        let durable = AnnotationRepository::new("uniprot", true, iq);
        cache.annotate(&item(1), &q::iri("HitRatio"), 1.0.into()).unwrap();
        assert!(cache.clear());
        assert_eq!(cache.triple_count(), 0);
        assert!(!durable.clear());
    }

    #[test]
    fn record_item_type_validates() {
        let r = repo();
        r.record_item_type(&item(1), &q::iri("ImprintHitEntry")).unwrap();
        assert!(r.record_item_type(&item(1), &q::iri("HitRatio")).is_err());
    }

    #[test]
    fn concurrent_annotation() {
        let r = Arc::new(repo());
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let r = r.clone();
                scope.spawn(move || {
                    for i in 0..50 {
                        let id = worker * 100 + i;
                        r.annotate(&item(id), &q::iri("HitRatio"), (id as f64).into()).unwrap();
                    }
                });
            }
        });
        assert_eq!(r.triple_count(), 3 * 200);
        assert_eq!(
            r.lookup(&item(307), &q::iri("HitRatio")).unwrap(),
            EvidenceValue::Number(307.0)
        );
    }

    #[test]
    fn disk_repository_survives_reopen_without_blank_collision() {
        let tmp = qurator_rdf::storage::test_support::TempDir::new("annrepo");
        let iq = Arc::new(IqModel::with_proteomics_extension().unwrap());
        let r = AnnotationRepository::open_disk("archive", true, iq.clone(), tmp.path()).unwrap();
        assert_eq!(r.backend_name(), "disk");
        assert_eq!(r.store_path().as_deref(), Some(tmp.path()));
        r.annotate(&item(1), &q::iri("HitRatio"), 0.25.into()).unwrap();
        r.annotate(&item(2), &q::iri("MassCoverage"), 42.into()).unwrap();
        r.flush().unwrap();
        drop(r);

        let r = AnnotationRepository::open_disk("archive", true, iq, tmp.path()).unwrap();
        assert_eq!(r.triple_count(), 6);
        assert_eq!(r.lookup(&item(1), &q::iri("HitRatio")).unwrap(), EvidenceValue::Number(0.25));
        // The blank counter restarted past the surviving evidence labels, so
        // a new annotation must not clobber an old node: overwrite semantics
        // stay per-(item, type).
        r.annotate(&item(3), &q::iri("HitRatio"), 0.75.into()).unwrap();
        assert_eq!(r.triple_count(), 9);
        assert_eq!(r.lookup(&item(1), &q::iri("HitRatio")).unwrap(), EvidenceValue::Number(0.25));
        assert_eq!(r.lookup(&item(3), &q::iri("HitRatio")).unwrap(), EvidenceValue::Number(0.75));
        assert_eq!(
            r.lookup(&item(2), &q::iri("MassCoverage")).unwrap(),
            EvidenceValue::Number(42.0)
        );
        // Replacement still works across the restart boundary.
        r.annotate(&item(1), &q::iri("HitRatio"), 0.5.into()).unwrap();
        assert_eq!(r.triple_count(), 9);
        assert_eq!(r.lookup(&item(1), &q::iri("HitRatio")).unwrap(), EvidenceValue::Number(0.5));
    }

    #[test]
    fn prepared_lookup_matches_sparql_lookup() {
        let r = repo();
        r.annotate(&item(1), &q::iri("HitRatio"), 0.82.into()).unwrap();
        r.annotate(&item(1), &q::iri("MassCoverage"), 31.into()).unwrap();
        for etype in [q::iri("HitRatio"), q::iri("MassCoverage"), q::iri("PeptidesCount")] {
            assert_eq!(
                r.lookup_prepared(&item(1), &etype).unwrap(),
                r.lookup_sparql(&item(1), &etype).unwrap(),
                "mismatch for {etype}"
            );
        }
        // Non-IRI items read as null on both SPARQL paths.
        let blank = Term::blank("b0");
        assert_eq!(r.lookup_prepared(&blank, &q::iri("HitRatio")).unwrap(), EvidenceValue::Null);
        assert_eq!(r.lookup_sparql(&blank, &q::iri("HitRatio")).unwrap(), EvidenceValue::Null);
        // The mode switch routes lookups through the prepared query.
        let r = repo().with_lookup_mode(LookupMode::Prepared);
        r.annotate(&item(2), &q::iri("HitRatio"), 0.5.into()).unwrap();
        assert_eq!(r.lookup(&item(2), &q::iri("HitRatio")).unwrap(), EvidenceValue::Number(0.5));
    }

    #[test]
    fn hostile_iri_regression() {
        // `Iri` construction already rejects the close-and-reopen payload…
        assert!(Iri::try_new("urn:x> q:value ?v . ?s ?p <urn:y").is_err());
        // …but digit-initial IRIs are valid and used to corrupt the
        // interpolated query text silently. The SPARQL mode now refuses
        // them loudly; the prepared mode answers them correctly.
        let r = repo();
        let hostile = Term::iri("7evil:item");
        let err = r.lookup_sparql(&hostile, &q::iri("HitRatio")).unwrap_err();
        assert!(err.to_string().contains("refusing to interpolate"), "err: {err}");
        assert_eq!(r.lookup_prepared(&hostile, &q::iri("HitRatio")).unwrap(), EvidenceValue::Null);
        // And when such an item actually carries evidence, the prepared
        // path retrieves it.
        r.annotate(&hostile, &q::iri("HitRatio"), 0.9.into()).unwrap();
        assert_eq!(
            r.lookup_prepared(&hostile, &q::iri("HitRatio")).unwrap(),
            EvidenceValue::Number(0.9)
        );
        assert_eq!(r.lookup_direct(&hostile, &q::iri("HitRatio")), EvidenceValue::Number(0.9));
    }

    #[test]
    fn enrich_bulk_matches_per_pair() {
        let r = repo();
        for i in 1..=10 {
            r.annotate(&item(i), &q::iri("HitRatio"), (0.05 * i as f64).into()).unwrap();
            if i % 2 == 0 {
                r.annotate(&item(i), &q::iri("MassCoverage"), (i as i64).into()).unwrap();
            }
            if i % 3 == 0 {
                r.annotate(&item(i), &q::iri("PeptidesCount"), (2 * i as i64).into()).unwrap();
            }
        }
        // Also items with no annotations at all, plus a type nobody has.
        let items: Vec<Term> = (1..=12).map(item).collect();
        let types = [
            q::iri("HitRatio"),
            q::iri("MassCoverage"),
            q::iri("PeptidesCount"),
            q::iri("SequenceCoverage"),
        ];
        let per_pair = r.enrich(&items, &types).unwrap();
        let bulk = r.enrich_bulk(&items, &types).unwrap();
        assert_eq!(bulk, per_pair);
        // Empty corners.
        assert_eq!(r.enrich_bulk(&[], &types).unwrap(), r.enrich(&[], &types).unwrap());
        assert_eq!(r.enrich_bulk(&items, &[]).unwrap(), r.enrich(&items, &[]).unwrap());
    }

    #[test]
    fn enrich_bulk_ignores_unrequested_items_and_types() {
        let r = repo();
        r.annotate(&item(1), &q::iri("HitRatio"), 0.9.into()).unwrap();
        r.annotate(&item(2), &q::iri("MassCoverage"), 10.into()).unwrap();
        let map = r.enrich_bulk(&[item(1)], &[q::iri("HitRatio")]).unwrap();
        assert_eq!(map.len(), 1);
        assert_eq!(map.items(), &[item(1)]);
        assert_eq!(
            map.item(&item(1)).unwrap().evidence_entries().count(),
            1,
            "only the requested type may appear"
        );
    }

    #[test]
    fn concurrent_bulk_enrich_and_annotate() {
        // Writers keep annotating while readers run bulk enrichments; every
        // observed value must be one a writer actually wrote, and the run
        // must be free of deadlocks and panics.
        let r = Arc::new(repo());
        for i in 0..64 {
            r.annotate(&item(i), &q::iri("HitRatio"), 1.0.into()).unwrap();
        }
        let items: Vec<Term> = (0..64).map(item).collect();
        std::thread::scope(|scope| {
            for w in 0..2 {
                let r = r.clone();
                scope.spawn(move || {
                    for round in 1..=20 {
                        for i in (w * 32)..(w * 32 + 32) {
                            r.annotate(
                                &item(i),
                                &q::iri("HitRatio"),
                                ((round * 100 + i) as f64).into(),
                            )
                            .unwrap();
                        }
                    }
                });
            }
            for _ in 0..2 {
                let r = r.clone();
                let items = items.clone();
                scope.spawn(move || {
                    for _ in 0..40 {
                        let map = r.enrich_bulk(&items, &[q::iri("HitRatio")]).unwrap();
                        assert_eq!(map.len(), 64);
                        for it in map.items() {
                            // value may be mid-update but never garbage
                            let v = map.item(it).unwrap().evidence(&q::iri("HitRatio"));
                            if let EvidenceValue::Number(n) = v {
                                assert!((0.0..=2064.0).contains(&n), "implausible value {n}");
                            }
                        }
                    }
                });
            }
        });
        // Quiescent state: bulk agrees with per-pair.
        let final_bulk = r.enrich_bulk(&items, &[q::iri("HitRatio")]).unwrap();
        let final_pairs = r.enrich(&items, &[q::iri("HitRatio")]).unwrap();
        assert_eq!(final_bulk, final_pairs);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use qurator_rdf::namespace::q;

    fn item(n: u32) -> Term {
        Term::iri(format!("urn:lsid:uniprot.org:uniprot:P{n:05}"))
    }

    const TYPES: [&str; 3] = ["HitRatio", "MassCoverage", "PeptidesCount"];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// All four lookup paths produce the identical annotation map for
        /// any random annotation workload.
        #[test]
        fn all_lookup_paths_agree(
            writes in proptest::collection::vec((0u32..12, 0usize..3, -50f64..50.0), 0..60),
            queried in proptest::collection::vec(0u32..15, 1..15),
        ) {
            let iq = Arc::new(IqModel::with_proteomics_extension().unwrap());
            let sparql_repo = AnnotationRepository::new("a", false, iq.clone());
            for (i, t, v) in &writes {
                sparql_repo.annotate(&item(*i), &q::iri(TYPES[*t]), (*v).into()).unwrap();
            }
            let turtle = sparql_repo.export_turtle();
            let mk = |mode: LookupMode| {
                let r = AnnotationRepository::new("b", false, iq.clone()).with_lookup_mode(mode);
                r.import_turtle(&turtle).unwrap();
                r
            };
            let items: Vec<Term> = queried.iter().map(|i| item(*i)).collect();
            let types: Vec<Iri> = TYPES.iter().map(|t| q::iri(t)).collect();

            let via_sparql = sparql_repo.enrich(&items, &types).unwrap();
            let via_prepared = mk(LookupMode::Prepared).enrich(&items, &types).unwrap();
            let via_direct = mk(LookupMode::Direct).enrich(&items, &types).unwrap();
            let via_bulk = sparql_repo.enrich_bulk(&items, &types).unwrap();

            prop_assert_eq!(&via_prepared, &via_sparql);
            prop_assert_eq!(&via_direct, &via_sparql);
            prop_assert_eq!(&via_bulk, &via_sparql);
        }
    }
}
