//! Annotation maps: the structure quality operators pass around.
//!
//! Paper §4.1: "an annotation map `Amap : d ↦ {(e, v)}` associates an
//! evidence value v (possibly null) for evidence type e ∈ E to each data
//! item d ∈ D", and quality assertions augment the map with classification
//! mappings `{d ↦ (t, cl)}` and scores. We key evidence by its ontology
//! class [`Iri`] and QA outputs by their *tag name* (the `tagName`
//! variables of QV declarations, e.g. `HR_MC`, `ScoreClass`).

use crate::value::EvidenceValue;
use qurator_rdf::term::{Iri, Term};
use std::collections::{BTreeMap, HashSet};

/// Per-item annotations: evidence values plus QA tags.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ItemAnnotations {
    evidence: BTreeMap<Iri, EvidenceValue>,
    tags: BTreeMap<String, EvidenceValue>,
}

impl ItemAnnotations {
    /// The value for an evidence type (explicit null and absence both read
    /// as `Null`).
    pub fn evidence(&self, evidence_type: &Iri) -> EvidenceValue {
        self.evidence.get(evidence_type).cloned().unwrap_or(EvidenceValue::Null)
    }

    /// The value for a QA tag.
    pub fn tag(&self, tag: &str) -> EvidenceValue {
        self.tags.get(tag).cloned().unwrap_or(EvidenceValue::Null)
    }

    /// Borrowed view of a QA tag's value, `None` when absent. Readers
    /// that only render the value (provenance capture) use this to skip
    /// the clone [`ItemAnnotations::tag`] pays.
    pub fn tag_ref(&self, tag: &str) -> Option<&EvidenceValue> {
        self.tags.get(tag)
    }

    /// Directly sets an evidence value on this row. Bulk writers pair this
    /// with [`AnnotationMap::row_mut`] to pay one row lookup per item
    /// instead of one per `(item, evidence type)` pair.
    pub fn insert_evidence(&mut self, evidence_type: Iri, value: EvidenceValue) {
        self.evidence.insert(evidence_type, value);
    }

    /// All evidence entries.
    pub fn evidence_entries(&self) -> impl Iterator<Item = (&Iri, &EvidenceValue)> {
        self.evidence.iter()
    }

    /// All tag entries.
    pub fn tag_entries(&self) -> impl Iterator<Item = (&str, &EvidenceValue)> {
        self.tags.iter().map(|(k, v)| (k.as_str(), v))
    }
}

/// An annotation map over an ordered data set.
///
/// Order matters: the data items flow through the quality process as a
/// collection and actions must emit their groups in input order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnnotationMap {
    order: Vec<Term>,
    rows: BTreeMap<Term, ItemAnnotations>,
}

impl AnnotationMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// A map over the given data set with no annotations yet.
    ///
    /// Equivalent to repeated [`Self::ensure_item`] (first-seen order,
    /// duplicates dropped) but built in one pass: `BTreeMap`'s
    /// `FromIterator` sorts and bulk-loads, which is markedly cheaper than
    /// per-item inserts on the large batches bulk enrichment seeds.
    pub fn for_items(items: impl IntoIterator<Item = Term>) -> Self {
        let mut order: Vec<Term> = Vec::new();
        let mut seen: HashSet<&Term> = HashSet::new();
        let items: Vec<Term> = items.into_iter().collect();
        for item in &items {
            if seen.insert(item) {
                order.push(item.clone());
            }
        }
        drop(seen);
        let rows = order.iter().map(|item| (item.clone(), ItemAnnotations::default())).collect();
        Self { order, rows }
    }

    /// Adds a data item (idempotent; preserves first-seen order).
    pub fn ensure_item(&mut self, item: Term) {
        if !self.rows.contains_key(&item) {
            self.order.push(item.clone());
            self.rows.insert(item, ItemAnnotations::default());
        }
    }

    /// Sets an evidence value for an item.
    pub fn set_evidence(&mut self, item: &Term, evidence_type: Iri, value: EvidenceValue) {
        self.ensure_item(item.clone());
        self.rows.get_mut(item).expect("just ensured").evidence.insert(evidence_type, value);
    }

    /// Sets a QA tag value for an item (scores, class labels).
    pub fn set_tag(&mut self, item: &Term, tag: impl Into<String>, value: EvidenceValue) {
        self.ensure_item(item.clone());
        self.rows.get_mut(item).expect("just ensured").tags.insert(tag.into(), value);
    }

    /// The annotations of one item.
    pub fn item(&self, item: &Term) -> Option<&ItemAnnotations> {
        self.rows.get(item)
    }

    /// Mutable access to an existing item's row (`None` for unknown items).
    /// This is the bulk-enrichment write path; [`Self::set_evidence`] stays
    /// the convenient per-value entry point.
    pub fn row_mut(&mut self, item: &Term) -> Option<&mut ItemAnnotations> {
        self.rows.get_mut(item)
    }

    /// Data items in input order.
    pub fn items(&self) -> &[Term] {
        &self.order
    }

    /// All `(item, row)` pairs in key order — the cheap whole-map scan
    /// (no per-item lookup), for consumers that don't need input order.
    pub fn rows(&self) -> impl Iterator<Item = (&Term, &ItemAnnotations)> {
        self.rows.iter()
    }

    /// Number of data items.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when no items are present.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// All evidence values of one evidence type in item order (nulls for
    /// unannotated items) — the column view QAs consume to compute
    /// collection statistics (avg/stddev thresholds, §5.1).
    pub fn column(&self, evidence_type: &Iri) -> Vec<EvidenceValue> {
        self.order.iter().map(|item| self.rows[item].evidence(evidence_type)).collect()
    }

    /// The tag column in item order.
    pub fn tag_column(&self, tag: &str) -> Vec<EvidenceValue> {
        self.order.iter().map(|item| self.rows[item].tag(tag)).collect()
    }

    /// Merges `other` into `self` (evidence/tags of shared items are
    /// unioned, `other` winning conflicts; new items appended in order).
    /// Used when one Data-Enrichment operator reads several repositories.
    pub fn merge(&mut self, other: &AnnotationMap) {
        for item in other.items() {
            self.ensure_item(item.clone());
            let src = &other.rows[item];
            let dst = self.rows.get_mut(item).expect("ensured");
            for (e, v) in &src.evidence {
                dst.evidence.insert(e.clone(), v.clone());
            }
            for (t, v) in &src.tags {
                dst.tags.insert(t.clone(), v.clone());
            }
        }
    }

    /// Restricts the map to the given items (used by split actions to ship
    /// each group with its own sub-map — paper §4.1: output consists of
    /// pairs `(D_i, Amap_i)`).
    pub fn restrict(&self, keep: &[Term]) -> AnnotationMap {
        let mut out = AnnotationMap::new();
        for item in keep {
            if let Some(row) = self.rows.get(item) {
                out.order.push(item.clone());
                out.rows.insert(item.clone(), row.clone());
            }
        }
        out
    }

    /// Collection statistics over a numeric evidence column: `(mean,
    /// population std-dev, n)` skipping nulls. The §5.1 classifier uses
    /// `avg ± stddev` thresholds.
    pub fn column_stats(&self, evidence_type: &Iri) -> Option<(f64, f64, usize)> {
        let values: Vec<f64> =
            self.column(evidence_type).iter().filter_map(EvidenceValue::as_number).collect();
        numeric_stats(&values)
    }

    /// Same statistics over a tag column.
    pub fn tag_stats(&self, tag: &str) -> Option<(f64, f64, usize)> {
        let values: Vec<f64> =
            self.tag_column(tag).iter().filter_map(EvidenceValue::as_number).collect();
        numeric_stats(&values)
    }
}

/// Mean / population standard deviation of a sample (None when empty).
pub fn numeric_stats(values: &[f64]) -> Option<(f64, f64, usize)> {
    if values.is_empty() {
        return None;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    Some((mean, var.sqrt(), values.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_rdf::namespace::q;

    fn item(n: u32) -> Term {
        Term::iri(format!("urn:lsid:t:hit:H{n}"))
    }

    #[test]
    fn order_preserved_and_idempotent() {
        let mut m = AnnotationMap::new();
        m.ensure_item(item(2));
        m.ensure_item(item(1));
        m.ensure_item(item(2));
        assert_eq!(m.items(), &[item(2), item(1)]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn evidence_and_tags() {
        let mut m = AnnotationMap::new();
        m.set_evidence(&item(1), q::iri("HitRatio"), 0.8.into());
        m.set_tag(&item(1), "ScoreClass", EvidenceValue::Class(q::iri("high")));
        let row = m.item(&item(1)).unwrap();
        assert_eq!(row.evidence(&q::iri("HitRatio")), EvidenceValue::Number(0.8));
        assert_eq!(row.evidence(&q::iri("Missing")), EvidenceValue::Null);
        assert_eq!(row.tag("ScoreClass"), EvidenceValue::Class(q::iri("high")));
        assert_eq!(row.tag("Other"), EvidenceValue::Null);
        assert_eq!(row.evidence_entries().count(), 1);
        assert_eq!(row.tag_entries().count(), 1);
    }

    #[test]
    fn columns_align_with_items() {
        let mut m = AnnotationMap::new();
        m.set_evidence(&item(1), q::iri("HR"), 0.1.into());
        m.ensure_item(item(2)); // no HR
        m.set_evidence(&item(3), q::iri("HR"), 0.3.into());
        let col = m.column(&q::iri("HR"));
        assert_eq!(
            col,
            vec![EvidenceValue::Number(0.1), EvidenceValue::Null, EvidenceValue::Number(0.3)]
        );
    }

    #[test]
    fn stats_skip_nulls() {
        let mut m = AnnotationMap::new();
        m.set_evidence(&item(1), q::iri("HR"), 1.0.into());
        m.ensure_item(item(2));
        m.set_evidence(&item(3), q::iri("HR"), 3.0.into());
        let (mean, sd, n) = m.column_stats(&q::iri("HR")).unwrap();
        assert_eq!(mean, 2.0);
        assert_eq!(sd, 1.0);
        assert_eq!(n, 2);
        assert!(m.column_stats(&q::iri("Absent")).is_none());
    }

    #[test]
    fn merge_unions_and_overrides() {
        let mut a = AnnotationMap::new();
        a.set_evidence(&item(1), q::iri("HR"), 0.1.into());
        let mut b = AnnotationMap::new();
        b.set_evidence(&item(1), q::iri("HR"), 0.9.into());
        b.set_evidence(&item(2), q::iri("MC"), 30.into());
        a.merge(&b);
        assert_eq!(a.item(&item(1)).unwrap().evidence(&q::iri("HR")), EvidenceValue::Number(0.9));
        assert_eq!(a.items(), &[item(1), item(2)]);
    }

    #[test]
    fn restrict_keeps_order_and_rows() {
        let mut m = AnnotationMap::new();
        for i in 1..=4 {
            m.set_evidence(&item(i), q::iri("HR"), (i as f64).into());
        }
        let sub = m.restrict(&[item(3), item(1)]);
        assert_eq!(sub.items(), &[item(3), item(1)]);
        assert_eq!(sub.item(&item(3)).unwrap().evidence(&q::iri("HR")), EvidenceValue::Number(3.0));
        assert!(sub.item(&item(2)).is_none());
    }

    #[test]
    fn tag_stats() {
        let mut m = AnnotationMap::new();
        m.set_tag(&item(1), "score", 10.0.into());
        m.set_tag(&item(2), "score", 20.0.into());
        let (mean, _, n) = m.tag_stats("score").unwrap();
        assert_eq!((mean, n), (15.0, 2));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use qurator_rdf::namespace::q;

    proptest! {
        /// restrict(items()) is the identity; restrict is idempotent.
        #[test]
        fn restrict_laws(values in proptest::collection::vec((0u32..12, -100f64..100.0), 0..30)) {
            let mut m = AnnotationMap::new();
            for (i, v) in &values {
                m.set_evidence(&Term::iri(format!("urn:lsid:t:h:{i}")), q::iri("HR"), (*v).into());
            }
            let full = m.restrict(m.items());
            prop_assert_eq!(&full, &m);
            let keep: Vec<Term> = m.items().iter().take(m.len() / 2).cloned().collect();
            let once = m.restrict(&keep);
            let twice = once.restrict(&keep);
            prop_assert_eq!(once, twice);
        }

        /// column_stats mean is bounded by min/max of the inputs.
        #[test]
        fn stats_bounds(values in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
            let (mean, sd, n) = numeric_stats(&values).unwrap();
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(mean >= min - 1e-9 && mean <= max + 1e-9);
            prop_assert!(sd >= 0.0);
            prop_assert_eq!(n, values.len());
        }
    }
}
