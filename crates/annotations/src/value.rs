//! The value space of quality evidence.

use qurator_rdf::term::{Iri, Literal, Term};

/// A quality-evidence value attached to a data item.
///
/// `Class` carries classification labels (IQ-model individuals such as
/// `q:high`); `Null` is an explicitly recorded missing value — the paper's
/// annotation maps associate "an evidence value v (possibly null)" with
/// each item.
#[derive(Debug, Clone, PartialEq)]
pub enum EvidenceValue {
    Number(f64),
    Text(String),
    Bool(bool),
    Class(Iri),
    Null,
}

impl EvidenceValue {
    /// Numeric accessor.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            EvidenceValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Text accessor.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            EvidenceValue::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Classification-label accessor.
    pub fn as_class(&self) -> Option<&Iri> {
        match self {
            EvidenceValue::Class(c) => Some(c),
            _ => None,
        }
    }

    /// True when the value is the explicit null.
    pub fn is_null(&self) -> bool {
        matches!(self, EvidenceValue::Null)
    }

    /// Renders as an RDF term for the annotation graph encoding. `Null`
    /// values are not stored (absence in the graph *is* the null), so this
    /// returns `None` for them.
    pub fn to_term(&self) -> Option<Term> {
        match self {
            EvidenceValue::Number(n) => Some(Term::Literal(Literal::double(*n))),
            EvidenceValue::Text(s) => Some(Term::Literal(Literal::string(s))),
            EvidenceValue::Bool(b) => Some(Term::Literal(Literal::boolean(*b))),
            EvidenceValue::Class(c) => Some(Term::Iri(c.clone())),
            EvidenceValue::Null => None,
        }
    }

    /// Reads back from an RDF term stored by [`EvidenceValue::to_term`].
    pub fn from_term(term: &Term) -> Self {
        match term {
            Term::Iri(iri) => EvidenceValue::Class(iri.clone()),
            Term::Blank(b) => EvidenceValue::Text(b.label().to_string()),
            Term::Literal(l) => {
                if let Some(n) = l.as_f64() {
                    EvidenceValue::Number(n)
                } else if let Some(b) = l.as_bool() {
                    EvidenceValue::Bool(b)
                } else {
                    EvidenceValue::Text(l.lexical().to_string())
                }
            }
        }
    }
}

impl std::fmt::Display for EvidenceValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvidenceValue::Number(n) => write!(f, "{n}"),
            EvidenceValue::Text(s) => write!(f, "{s:?}"),
            EvidenceValue::Bool(b) => write!(f, "{b}"),
            EvidenceValue::Class(c) => write!(f, "{}", c.local_name()),
            EvidenceValue::Null => write!(f, "null"),
        }
    }
}

impl From<f64> for EvidenceValue {
    fn from(n: f64) -> Self {
        EvidenceValue::Number(n)
    }
}

impl From<i64> for EvidenceValue {
    fn from(n: i64) -> Self {
        EvidenceValue::Number(n as f64)
    }
}

impl From<&str> for EvidenceValue {
    fn from(s: &str) -> Self {
        EvidenceValue::Text(s.to_string())
    }
}

impl From<bool> for EvidenceValue {
    fn from(b: bool) -> Self {
        EvidenceValue::Bool(b)
    }
}

impl From<Iri> for EvidenceValue {
    fn from(iri: Iri) -> Self {
        EvidenceValue::Class(iri)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_rdf::namespace::q;

    #[test]
    fn term_roundtrip() {
        for v in [
            EvidenceValue::Number(0.82),
            EvidenceValue::Text("lab-A".into()),
            EvidenceValue::Bool(true),
            EvidenceValue::Class(q::iri("high")),
        ] {
            let t = v.to_term().unwrap();
            assert_eq!(EvidenceValue::from_term(&t), v);
        }
        assert_eq!(EvidenceValue::Null.to_term(), None);
    }

    #[test]
    fn integer_literals_read_as_numbers() {
        let t = Term::integer(31);
        assert_eq!(EvidenceValue::from_term(&t), EvidenceValue::Number(31.0));
    }

    #[test]
    fn accessors() {
        assert_eq!(EvidenceValue::from(0.5).as_number(), Some(0.5));
        assert_eq!(EvidenceValue::from("x").as_text(), Some("x"));
        assert_eq!(EvidenceValue::Class(q::iri("mid")).as_class(), Some(&q::iri("mid")));
        assert!(EvidenceValue::Null.is_null());
        assert_eq!(EvidenceValue::from(1.0).as_text(), None);
    }

    #[test]
    fn display() {
        assert_eq!(EvidenceValue::Class(q::iri("high")).to_string(), "high");
        assert_eq!(EvidenceValue::Number(2.5).to_string(), "2.5");
        assert_eq!(EvidenceValue::Null.to_string(), "null");
    }
}
