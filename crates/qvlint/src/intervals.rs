//! Interval/set analysis over condition predicates.
//!
//! The analyzer decides two questions about `qurator_expr` boolean
//! expressions, conservatively (it only ever answers when certain):
//!
//! * [`definitely_unsat`] — can the condition accept *any* item? A filter
//!   with an unsatisfiable condition is a dead action (QV022).
//! * [`implies`] — does condition `a` accept a subset of what `b`
//!   accepts? Splitter groups are "not necessarily disjoint" (§4.1), but a
//!   group whose condition is implied by another group's adds no
//!   discrimination (QV023).
//!
//! The abstract domain is per-variable: a numeric interval (open/closed
//! bounds) for number-valued variables, a positive/negative label set for
//! symbol-valued ones, and a forced boolean for bare boolean variables.
//! Expressions are normalized to a disjunction of conjunctions of atomic
//! constraints with a size cap; anything the normalizer does not
//! understand (variable-variable comparisons, arithmetic over variables)
//! becomes an opaque atom that blocks *unsat* claims for its conjunct but
//! never blocks *sat* claims by other conjuncts.

use qurator_expr::{BinaryOp, Expr, UnaryOp, Value};
use std::collections::BTreeSet;

/// Upper bound on the number of conjuncts produced by DNF expansion.
/// Conditions in quality views are tiny (the paper's largest has three
/// atoms); anything past the cap returns "unknown" rather than blowing up.
const MAX_CONJUNCTS: usize = 128;

/// One atomic constraint in negation normal form.
#[derive(Debug, Clone)]
enum Atom {
    /// `var <op> k` with a numeric constant (op already oriented so the
    /// variable is on the left).
    Num { var: String, op: BinaryOp, k: f64 },
    /// `var in {labels}` (`pos`) or `var not in {labels}` (`!pos`); labels
    /// are normalized to their local names (`q:high` ≡ `high`, matching
    /// the evaluator's symbol equality).
    Sym { var: String, labels: BTreeSet<String>, pos: bool },
    /// A bare boolean variable forced to `value`.
    Bool { var: String, value: bool },
    /// Constant truth value.
    Const(bool),
    /// Something the analysis does not model.
    Opaque,
}

fn local(label: &str) -> String {
    label.rsplit(':').next().unwrap_or(label).to_string()
}

fn as_symbolish(e: &Expr) -> Option<String> {
    match e {
        Expr::Const(Value::Symbol(s)) | Expr::Const(Value::Str(s)) => Some(local(s)),
        _ => None,
    }
}

fn as_number(e: &Expr) -> Option<f64> {
    match e {
        Expr::Const(Value::Num(n)) => Some(*n),
        Expr::Unary(UnaryOp::Neg, inner) => as_number(inner).map(|n| -n),
        _ => None,
    }
}

fn flip(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::Le => BinaryOp::Ge,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::Ge => BinaryOp::Le,
        other => other,
    }
}

fn negate_cmp(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Ge,
        BinaryOp::Le => BinaryOp::Gt,
        BinaryOp::Gt => BinaryOp::Le,
        BinaryOp::Ge => BinaryOp::Lt,
        BinaryOp::Eq => BinaryOp::Ne,
        BinaryOp::Ne => BinaryOp::Eq,
        other => other,
    }
}

/// Converts a comparison with one variable side and one constant side into
/// an atom, or `Atom::Opaque` when it is not of that shape.
fn comparison_atom(op: BinaryOp, lhs: &Expr, rhs: &Expr, negated: bool) -> Atom {
    let (var, op, other) = match (lhs, rhs) {
        (Expr::Var(v), _) => (v.clone(), op, rhs),
        (_, Expr::Var(v)) => (v.clone(), flip(op), lhs),
        _ => return Atom::Opaque,
    };
    let op = if negated { negate_cmp(op) } else { op };
    if let Some(k) = as_number(other) {
        return Atom::Num { var, op, k };
    }
    if let Some(label) = as_symbolish(other) {
        let labels = BTreeSet::from([label]);
        return match op {
            BinaryOp::Eq => Atom::Sym { var, labels, pos: true },
            BinaryOp::Ne => Atom::Sym { var, labels, pos: false },
            _ => Atom::Opaque,
        };
    }
    Atom::Opaque
}

/// DNF expansion: `Some(conjuncts)` where each conjunct is a list of
/// atoms, or `None` when the expression exceeds [`MAX_CONJUNCTS`].
fn dnf(expr: &Expr, negated: bool) -> Option<Vec<Vec<Atom>>> {
    let atom = |a: Atom| Some(vec![vec![a]]);
    match expr {
        Expr::Const(Value::Bool(b)) => atom(Atom::Const(*b != negated)),
        Expr::Const(_) => atom(Atom::Opaque),
        Expr::Var(v) => atom(Atom::Bool { var: v.clone(), value: !negated }),
        Expr::Unary(UnaryOp::Not, inner) => dnf(inner, !negated),
        Expr::Unary(UnaryOp::Neg, _) => atom(Atom::Opaque),
        Expr::Binary(BinaryOp::And, a, b) if !negated => conjoin(dnf(a, false)?, dnf(b, false)?),
        Expr::Binary(BinaryOp::Or, a, b) if !negated => disjoin(dnf(a, false)?, dnf(b, false)?),
        // De Morgan under negation
        Expr::Binary(BinaryOp::And, a, b) => disjoin(dnf(a, true)?, dnf(b, true)?),
        Expr::Binary(BinaryOp::Or, a, b) => conjoin(dnf(a, true)?, dnf(b, true)?),
        Expr::Binary(op, a, b) => match op {
            BinaryOp::Lt
            | BinaryOp::Le
            | BinaryOp::Gt
            | BinaryOp::Ge
            | BinaryOp::Eq
            | BinaryOp::Ne => atom(comparison_atom(*op, a, b, negated)),
            _ => atom(Atom::Opaque),
        },
        Expr::In(lhs, items) => {
            let Expr::Var(var) = lhs.as_ref() else {
                return atom(Atom::Opaque);
            };
            let mut labels = BTreeSet::new();
            for item in items {
                match as_symbolish(item) {
                    Some(l) => {
                        labels.insert(l);
                    }
                    // numeric membership sets exist (`x in 1, 2`); model
                    // them opaquely rather than as symbol sets
                    None => return atom(Atom::Opaque),
                }
            }
            atom(Atom::Sym { var: var.clone(), labels, pos: !negated })
        }
    }
}

fn conjoin(a: Vec<Vec<Atom>>, b: Vec<Vec<Atom>>) -> Option<Vec<Vec<Atom>>> {
    if a.len().saturating_mul(b.len()) > MAX_CONJUNCTS {
        return None;
    }
    let mut out = Vec::with_capacity(a.len() * b.len());
    for ca in &a {
        for cb in &b {
            let mut c = ca.clone();
            c.extend(cb.iter().cloned());
            out.push(c);
        }
    }
    Some(out)
}

fn disjoin(mut a: Vec<Vec<Atom>>, mut b: Vec<Vec<Atom>>) -> Option<Vec<Vec<Atom>>> {
    if a.len() + b.len() > MAX_CONJUNCTS {
        return None;
    }
    a.append(&mut b);
    Some(a)
}

/// A per-variable numeric interval with open/closed endpoints.
#[derive(Debug, Clone)]
struct Interval {
    lo: f64,
    lo_closed: bool,
    hi: f64,
    hi_closed: bool,
    /// Excluded points (`!=` constraints); only degenerate intervals can
    /// be emptied by them.
    excluded: Vec<f64>,
}

impl Interval {
    fn full() -> Self {
        Interval {
            lo: f64::NEG_INFINITY,
            lo_closed: false,
            hi: f64::INFINITY,
            hi_closed: false,
            excluded: Vec::new(),
        }
    }

    fn constrain(&mut self, op: BinaryOp, k: f64) {
        match op {
            BinaryOp::Lt => self.upper(k, false),
            BinaryOp::Le => self.upper(k, true),
            BinaryOp::Gt => self.lower(k, false),
            BinaryOp::Ge => self.lower(k, true),
            BinaryOp::Eq => {
                self.lower(k, true);
                self.upper(k, true);
            }
            BinaryOp::Ne => self.excluded.push(k),
            _ => {}
        }
    }

    fn lower(&mut self, k: f64, closed: bool) {
        if k > self.lo || (k == self.lo && self.lo_closed && !closed) {
            self.lo = k;
            self.lo_closed = closed;
        }
    }

    fn upper(&mut self, k: f64, closed: bool) {
        if k < self.hi || (k == self.hi && self.hi_closed && !closed) {
            self.hi = k;
            self.hi_closed = closed;
        }
    }

    fn is_empty(&self) -> bool {
        if self.lo > self.hi {
            return true;
        }
        if self.lo == self.hi {
            if !(self.lo_closed && self.hi_closed) {
                return true;
            }
            // the single remaining point may be excluded by a `!=`
            return self.excluded.contains(&self.lo);
        }
        false
    }
}

/// Symbol-set state: an optional positive set (None = unconstrained) and
/// an excluded set.
#[derive(Debug, Clone, Default)]
struct SymState {
    allowed: Option<BTreeSet<String>>,
    excluded: BTreeSet<String>,
}

impl SymState {
    fn allow(&mut self, labels: &BTreeSet<String>) {
        self.allowed = Some(match self.allowed.take() {
            None => labels.clone(),
            Some(prev) => prev.intersection(labels).cloned().collect(),
        });
    }

    fn exclude(&mut self, labels: &BTreeSet<String>) {
        self.excluded.extend(labels.iter().cloned());
    }

    fn is_empty(&self) -> bool {
        match &self.allowed {
            Some(set) => set.iter().all(|l| self.excluded.contains(l)),
            None => false,
        }
    }
}

/// Satisfiability verdict for one conjunct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    Sat,
    Unsat,
    Unknown,
}

fn conjunct_verdict(atoms: &[Atom]) -> Verdict {
    use std::collections::BTreeMap;
    let mut nums: BTreeMap<&str, Interval> = BTreeMap::new();
    let mut syms: BTreeMap<&str, SymState> = BTreeMap::new();
    let mut bools: BTreeMap<&str, bool> = BTreeMap::new();
    let mut opaque = false;
    for atom in atoms {
        match atom {
            Atom::Const(false) => return Verdict::Unsat,
            Atom::Const(true) => {}
            Atom::Opaque => opaque = true,
            Atom::Num { var, op, k } => {
                nums.entry(var).or_insert_with(Interval::full).constrain(*op, *k);
            }
            Atom::Sym { var, labels, pos } => {
                let state = syms.entry(var).or_default();
                if *pos {
                    state.allow(labels);
                } else {
                    state.exclude(labels);
                }
            }
            Atom::Bool { var, value } => {
                if let Some(previous) = bools.insert(var, *value) {
                    if previous != *value {
                        return Verdict::Unsat;
                    }
                }
            }
        }
    }
    // a variable constrained both numerically and symbolically can satisfy
    // at most one family; the type checker flags that separately, treat as
    // unknown here
    for var in nums.keys() {
        if syms.contains_key(var) || bools.contains_key(var) {
            opaque = true;
        }
    }
    if nums.values().any(Interval::is_empty) || syms.values().any(SymState::is_empty) {
        return Verdict::Unsat;
    }
    if opaque {
        Verdict::Unknown
    } else {
        Verdict::Sat
    }
}

/// True when the analyzer can *prove* no assignment satisfies the
/// condition. `false` means satisfiable or unknown.
pub fn definitely_unsat(expr: &Expr) -> bool {
    match dnf(expr, false) {
        Some(conjuncts) => conjuncts.iter().all(|c| conjunct_verdict(c) == Verdict::Unsat),
        None => false,
    }
}

/// True when the analyzer can *prove* `a → b`: every item accepted by `a`
/// is accepted by `b`. Checked as unsatisfiability of `a ∧ ¬b`, and only
/// claimed when the whole formula was understood (no opaque atoms in
/// surviving conjuncts).
pub fn implies(a: &Expr, b: &Expr) -> bool {
    match dnf(a, false).and_then(|da| conjoin(da, dnf(b, true)?)) {
        Some(conjuncts) => conjuncts.iter().all(|c| conjunct_verdict(c) == Verdict::Unsat),
        None => false,
    }
}

/// True when the analyzer can prove `domain ∧ expr` unsatisfiable: under
/// the value domain established upstream (e.g. an assertion's
/// classification labels), the condition can never hold. A condition may
/// be satisfiable in isolation yet dead under the domain — that gap is
/// exactly what the dataflow pass reports as QV025.
pub fn definitely_unsat_given(domain: &Expr, expr: &Expr) -> bool {
    match dnf(domain, false).and_then(|dd| conjoin(dd, dnf(expr, false)?)) {
        Some(conjuncts) => conjuncts.iter().all(|c| conjunct_verdict(c) == Verdict::Unsat),
        None => false,
    }
}

/// True when the analyzer can prove `a → b` *under* the given domain:
/// every item satisfying `domain ∧ a` also satisfies `b`. Checked as
/// unsatisfiability of `domain ∧ a ∧ ¬b`. Splitter-group shadowing that
/// only appears under the classification domain (QV026) uses this with
/// the plain [`implies`] check as the "already reported as QV023" guard.
pub fn implies_given(domain: &Expr, a: &Expr, b: &Expr) -> bool {
    let formula = dnf(domain, false)
        .and_then(|dd| conjoin(dd, dnf(a, false)?))
        .and_then(|dda| conjoin(dda, dnf(b, true)?));
    match formula {
        Some(conjuncts) => conjuncts.iter().all(|c| conjunct_verdict(c) == Verdict::Unsat),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_expr::parse;

    fn unsat(src: &str) -> bool {
        definitely_unsat(&parse(src).unwrap())
    }

    fn imp(a: &str, b: &str) -> bool {
        implies(&parse(a).unwrap(), &parse(b).unwrap())
    }

    fn unsat_given(domain: &str, e: &str) -> bool {
        definitely_unsat_given(&parse(domain).unwrap(), &parse(e).unwrap())
    }

    fn imp_given(domain: &str, a: &str, b: &str) -> bool {
        implies_given(&parse(domain).unwrap(), &parse(a).unwrap(), &parse(b).unwrap())
    }

    #[test]
    fn contradictory_numeric_bounds() {
        assert!(unsat("x > 5 and x < 3"));
        assert!(unsat("x > 5 and x <= 5"));
        assert!(unsat("x = 2 and x = 3"));
        assert!(unsat("x = 2 and x != 2"));
        assert!(!unsat("x > 3 and x < 5"));
        assert!(!unsat("x >= 5 and x <= 5"));
    }

    #[test]
    fn disjunction_needs_all_branches_dead() {
        assert!(unsat("(x > 5 and x < 3) or (x = 1 and x = 2)"));
        assert!(!unsat("(x > 5 and x < 3) or x = 1"));
    }

    #[test]
    fn symbol_set_conflicts() {
        assert!(unsat("c in q:high and c in q:low"));
        assert!(unsat("c in q:high, q:mid and c in q:low"));
        assert!(unsat("c = q:high and c != q:high"));
        assert!(!unsat("c in q:high, q:mid and c != q:high"));
        // prefix vs local-name spellings are the same label at runtime
        assert!(unsat("c in q:high and c in 'low'"));
        assert!(!unsat("c in q:high and c in 'high'"));
    }

    #[test]
    fn negation_is_pushed_through() {
        assert!(unsat("not (x < 10) and x < 5"));
        // `c in q:high or c != q:high` is a tautology, so its negation is dead
        assert!(unsat("not (c in q:high or c != q:high)"));
        assert!(unsat("not (x > 1 or x <= 1)"));
    }

    #[test]
    fn boolean_variables() {
        assert!(unsat("b and not b"));
        assert!(!unsat("b or not b"));
    }

    #[test]
    fn opaque_forms_never_claim_unsat() {
        assert!(!unsat("x > y and x < y"), "variable-variable comparison is opaque");
        assert!(!unsat("x + 1 > 5 and x + 1 < 3"), "arithmetic over variables is opaque");
    }

    #[test]
    fn implication_between_groups() {
        assert!(imp("x > 10", "x > 5"));
        assert!(imp("c in q:high", "c in q:high, q:mid"));
        assert!(imp("x > 10 and c in q:high", "x > 5"));
        assert!(!imp("x > 5", "x > 10"));
        assert!(!imp("c in q:high, q:mid", "c in q:high"));
        // equivalent conditions imply each other
        assert!(imp("x >= 3", "not (x < 3)") && imp("not (x < 3)", "x >= 3"));
    }

    #[test]
    fn implication_refuses_opaque_formulas() {
        assert!(!imp("x > y", "x > y"), "opaque: never claimed even when trivially true");
    }

    #[test]
    fn paper_condition_is_satisfiable() {
        assert!(!unsat("ScoreClass in q:high, q:mid and HR_MC > 20"));
    }

    #[test]
    fn domain_unsat_catches_labels_outside_the_classification() {
        let domain = "c in q:low, q:mid, q:high";
        // dead only under the domain: plain analysis keeps it satisfiable
        assert!(!unsat("c in q:bogus"));
        assert!(unsat_given(domain, "c in q:bogus"));
        // a condition satisfiable under the domain is not flagged
        assert!(!unsat_given(domain, "c in q:low"));
        // negating the whole domain is unsat under it, sat without it
        assert!(unsat_given(domain, "not (c in q:low, q:mid, q:high)"));
        assert!(!unsat("not (c in q:low, q:mid, q:high)"));
    }

    #[test]
    fn domain_implication_sees_shadowing_plain_implication_misses() {
        let domain = "c in q:low, q:mid, q:high";
        // under the domain, "not low" and "mid or high" coincide
        assert!(imp_given(domain, "not (c in q:low)", "c in q:mid, q:high"));
        assert!(!imp("not (c in q:low)", "c in q:mid, q:high"));
        // and plain implication still works when lifted
        assert!(imp_given(domain, "c in q:high", "c in q:mid, q:high"));
        // but no false positives: low does not imply mid-or-high
        assert!(!imp_given(domain, "c in q:low", "c in q:mid, q:high"));
    }

    #[test]
    fn domain_helpers_refuse_opaque_formulas() {
        assert!(!unsat_given("x > y", "x < y"));
        assert!(!imp_given("c in q:low", "x > y", "x > y"));
    }
}
