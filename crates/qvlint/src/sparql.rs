//! Analysis of SPARQL query text.
//!
//! Enrichment queries (§5) are authored by hand when views bypass the
//! generated `(data item, evidence type)` lookup, and a typo'd variable
//! silently projects nothing — the classic SPARQL failure mode. This pass
//! parses the query with `qurator_rdf::sparql` and reports syntax errors
//! (SQ001), projected variables the pattern never binds (SQ002),
//! cartesian-product joins between disconnected pattern components
//! (SQ003), and unknown namespace prefixes (SQ004).

use crate::{Diagnostic, Span};
use qurator_rdf::sparql::ast::{GroupPattern, Query, SelectProjection};
use qurator_rdf::{sparql, RdfError};

/// Runs all SPARQL passes over one query text.
pub fn analyze_sparql(source: &str) -> Vec<Diagnostic> {
    let query = match sparql::parse(source) {
        Ok(q) => q,
        Err(RdfError::SparqlSyntax { pos, message }) => {
            // The parser folds prefix-resolution failures into its syntax
            // error; give them their own code so CI can tell them apart.
            if let Some(prefix) = message
                .strip_prefix("unknown namespace prefix ")
                .map(|p| p.trim_matches('"').to_string())
            {
                let span =
                    find_span(source, &format!("{prefix}:")).or(Some(offset_to_span(source, pos)));
                return vec![Diagnostic::error(
                    "SQ004",
                    format!("unknown namespace prefix {prefix:?}"),
                )
                .at(span)
                .help(format!("add `PREFIX {prefix}: <…>` before the query body"))];
            }
            return vec![Diagnostic::error("SQ001", format!("sparql syntax error: {message}"))
                .at(Some(offset_to_span(source, pos)))];
        }
        Err(RdfError::UnknownPrefix(prefix)) => {
            let span = find_span(source, &format!("{prefix}:"));
            return vec![Diagnostic::error(
                "SQ004",
                format!("unknown namespace prefix {prefix:?}"),
            )
            .at(span)
            .help(format!("add `PREFIX {prefix}: <…>` before the query body"))];
        }
        Err(e) => {
            return vec![Diagnostic::error("SQ001", format!("sparql error: {e}"))];
        }
    };

    let mut diags = Vec::new();
    let pattern = match &query {
        Query::Select { projection, pattern, .. } => {
            // SQ002 — a projected variable the pattern never binds is
            // always unbound in every row.
            if let SelectProjection::Vars(vars) = projection {
                let bound = pattern.variables();
                for var in vars {
                    if !bound.iter().any(|b| b == var) {
                        diags.push(
                            Diagnostic::error(
                                "SQ002",
                                format!(
                                    "projected variable ?{var} is not bound by the query pattern"
                                ),
                            )
                            .at(find_span(source, &format!("?{var}")))
                            .help("bind the variable in a triple pattern, or drop it from SELECT"),
                        );
                    }
                }
            }
            pattern
        }
        Query::Ask { pattern } => pattern,
    };

    // SQ003 — disconnected components in the top-level BGP multiply row
    // counts (every solution of one component joins every solution of the
    // others). Variables shared only through OPTIONAL or FILTER do not
    // connect components for the join engine's purposes, so only the
    // top-level triples count.
    let components = bgp_components(pattern);
    if pattern.triples.len() >= 2 && components > 1 {
        diags.push(
            Diagnostic::warning(
                "SQ003",
                format!(
                    "query pattern forms a cartesian product: \
                     {} triple patterns fall into {components} unconnected groups",
                    pattern.triples.len()
                ),
            )
            .help("share a variable between the groups, or split the query"),
        );
    }

    diags
}

/// Number of connected components among the group's triples, where two
/// triples connect when they mention a common variable.
fn bgp_components(pattern: &GroupPattern) -> usize {
    let n = pattern.triples.len();
    let mut component: Vec<usize> = (0..n).collect();
    fn root(component: &mut [usize], mut i: usize) -> usize {
        while component[i] != i {
            component[i] = component[component[i]];
            i = component[i];
        }
        i
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let shares = pattern.triples[i]
                .variables()
                .any(|v| pattern.triples[j].variables().any(|w| w == v));
            if shares {
                let (a, b) = (root(&mut component, i), root(&mut component, j));
                component[a] = b;
            }
        }
    }
    (0..n).filter(|&i| root(&mut component, i) == i).count()
}

/// Converts a byte offset (as reported by the parser) to a 1-based span.
fn offset_to_span(source: &str, pos: usize) -> Span {
    let clamped = pos.min(source.len());
    let before = &source[..clamped];
    let line = before.bytes().filter(|&b| b == b'\n').count() as u32 + 1;
    let col = (clamped - before.rfind('\n').map(|i| i + 1).unwrap_or(0)) as u32 + 1;
    Span::new(line, col)
}

/// Locates the first occurrence of `needle` in the source text.
fn find_span(source: &str, needle: &str) -> Option<Span> {
    source.find(needle).map(|pos| offset_to_span(source, pos))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_query_has_no_findings() {
        let diags = analyze_sparql(
            "PREFIX q: <http://qurator.org/iq#>\n\
             SELECT ?s ?v WHERE { ?s q:contains-evidence ?e . ?e q:value ?v . }",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn syntax_error_with_position() {
        let diags = analyze_sparql("SELECT ?x\nWHERE { ?x }");
        assert_eq!(codes(&diags), vec!["SQ001"]);
        assert_eq!(diags[0].span.unwrap().line, 2, "error is on the WHERE line");
    }

    #[test]
    fn unknown_prefix_is_located() {
        let diags = analyze_sparql("PREFIX q: <http://x#>\nSELECT ?x WHERE { ?x nope:p ?y . }");
        assert_eq!(codes(&diags), vec!["SQ004"]);
        assert!(diags[0].message.contains("nope"));
        let span = diags[0].span.unwrap();
        assert_eq!((span.line, span.col), (2, 22));
    }

    #[test]
    fn unbound_projection_is_an_error() {
        let diags = analyze_sparql("PREFIX q: <http://x#>\nSELECT ?s ?typo WHERE { ?s q:p ?v . }");
        assert_eq!(codes(&diags), vec!["SQ002"]);
        assert!(diags[0].message.contains("?typo"));
        let span = diags[0].span.unwrap();
        assert_eq!((span.line, span.col), (2, 11));
    }

    #[test]
    fn variable_bound_only_in_optional_counts_as_bound() {
        let diags = analyze_sparql(
            "PREFIX q: <http://x#>\n\
             SELECT ?s ?l WHERE { ?s q:p ?v . OPTIONAL { ?s q:label ?l . } }",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn cartesian_product_is_flagged() {
        let diags =
            analyze_sparql("PREFIX q: <http://x#>\nSELECT ?a ?b WHERE { ?a q:p ?x . ?b q:p ?y . }");
        assert_eq!(codes(&diags), vec!["SQ003"]);
        assert!(diags[0].message.contains("2 unconnected groups"));
    }

    #[test]
    fn connected_patterns_are_not_a_product() {
        let diags = analyze_sparql(
            "PREFIX q: <http://x#>\n\
             SELECT ?a ?y WHERE { ?a q:p ?x . ?x q:r ?y . ?y q:s ?z . }",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn ask_queries_are_checked_too() {
        let diags = analyze_sparql("PREFIX q: <http://x#>\nASK { ?a q:p ?x . ?b q:q ?y . }");
        assert_eq!(codes(&diags), vec!["SQ003"]);
    }

    #[test]
    fn offset_mapping() {
        let src = "abc\ndef\nxyz";
        assert_eq!(offset_to_span(src, 0), Span::new(1, 1));
        assert_eq!(offset_to_span(src, 4), Span::new(2, 1));
        assert_eq!(offset_to_span(src, 6), Span::new(2, 3));
        assert_eq!(offset_to_span(src, 99), Span::new(3, 4), "clamped to the end");
    }
}
