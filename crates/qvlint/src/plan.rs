//! Analysis of quality-view plans (the typed IR of `qurator-plan`).
//!
//! The WF-series usage findings are computed here from plan nodes rather
//! than from the compiled workflow graph: the *logical* plan still lists
//! every declared annotator (the optimizer's dead-node elimination prunes
//! write-only volatile ones from the physical plan, which is exactly what
//! WF003 wants to warn about), and the *physical* plan carries the wave
//! schedule both executors follow, so the WF004 width hint describes what
//! will actually run. Graph-only checks (WF001/WF002) stay with
//! [`crate::workflow::analyze_graph`].

use crate::workflow::{wave_width_hint, write_only_repositories};
use crate::{Diagnostic, Span};
use qurator_plan::{LogicalPlan, PhysicalPlan, ENRICH_NODE};

/// Runs the plan pass: WF003 (write-only repositories) over the logical
/// plan's annotator/enrichment nodes, WF004 (wave width) over the
/// physical schedule. `spec_span` anchors findings to the view's source
/// position when it was parsed with spans.
pub fn analyze_plan(
    logical: &LogicalPlan,
    physical: &PhysicalPlan,
    spec_span: Option<Span>,
) -> Vec<Diagnostic> {
    let writes: Vec<(String, String)> =
        logical.annotators().map(|a| (a.name.clone(), a.repository.clone())).collect();
    let reads: Vec<(String, String)> = logical
        .enrich()
        .into_iter()
        .flat_map(|e| e.fetches.iter().map(|(_, repo)| (ENRICH_NODE.to_string(), repo.clone())))
        .collect();
    let mut diags = write_only_repositories(&writes, &reads, spec_span);
    diags.extend(wave_width_hint(&physical.waves, spec_span));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_plan::{
        ActKind, ActNode, AnnotateNode, EnrichNode, LogicalNode, PlanConfig, CONSOLIDATE_NODE,
    };
    use qurator_rdf::term::Iri;

    fn annotator(name: &str, repo: &str, provides: &[&str]) -> LogicalNode {
        LogicalNode::Annotate(AnnotateNode {
            name: name.into(),
            service_type: Iri::new("urn:svc"),
            repository: repo.into(),
            persistent: false,
            provides: provides.iter().map(|p| Iri::new(format!("urn:e:{p}"))).collect(),
        })
    }

    fn plan_pair(nodes: Vec<LogicalNode>) -> (LogicalPlan, PhysicalPlan) {
        let logical = LogicalPlan { view: "v".into(), nodes };
        let physical = qurator_plan::lower(&logical, &PlanConfig::default()).unwrap();
        (logical, physical)
    }

    #[test]
    fn write_only_repository_found_from_plan_nodes() {
        let (logical, physical) = plan_pair(vec![
            annotator("a", "scratch", &["x"]),
            LogicalNode::Enrich(EnrichNode::default()),
            LogicalNode::Consolidate,
            LogicalNode::Act(ActNode {
                name: "act".into(),
                kind: ActKind::Filter { condition: "1 > 0".into() },
            }),
        ]);
        let diags = analyze_plan(&logical, &physical, None);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "WF003");
        assert!(diags[0].message.contains("scratch"), "{}", diags[0].message);
        assert!(diags[0].message.contains("\"a\""), "{}", diags[0].message);
    }

    #[test]
    fn dead_node_elimination_does_not_hide_the_write_only_warning() {
        // the optimizer removes the volatile write-only annotator from the
        // physical plan; the warning must still fire (it comes from the
        // logical plan)
        let (logical, physical) = plan_pair(vec![
            annotator("a", "scratch", &["x"]),
            LogicalNode::Enrich(EnrichNode::default()),
            LogicalNode::Consolidate,
            LogicalNode::Act(ActNode {
                name: "act".into(),
                kind: ActKind::Filter { condition: "1 > 0".into() },
            }),
        ]);
        assert!(physical.annotators.is_empty(), "annotator should be eliminated");
        let codes: Vec<&str> =
            analyze_plan(&logical, &physical, None).iter().map(|d| d.code).collect::<Vec<_>>();
        assert_eq!(codes, vec!["WF003"]);
    }

    #[test]
    fn read_repository_is_not_reported() {
        let (logical, physical) = plan_pair(vec![
            annotator("a", "cache", &["x"]),
            LogicalNode::Enrich(EnrichNode {
                fetches: vec![(Iri::new("urn:e:x"), "cache".into())],
            }),
            LogicalNode::Consolidate,
        ]);
        assert!(analyze_plan(&logical, &physical, None).is_empty());
        assert!(physical.waves.iter().all(|w| w.len() < crate::workflow::WIDE_WAVE));
        assert_eq!(physical.waves.first().unwrap(), &vec!["a".to_string()]);
        assert!(physical.waves.iter().flatten().any(|n| n == CONSOLIDATE_NODE));
    }

    #[test]
    fn wide_plan_wave_gets_the_hint() {
        let mut nodes: Vec<LogicalNode> = (0..crate::workflow::WIDE_WAVE)
            .map(|i| annotator(&format!("a{i}"), "cache", &[]))
            .collect();
        nodes.push(LogicalNode::Enrich(EnrichNode {
            fetches: vec![(Iri::new("urn:e:x"), "cache".into())],
        }));
        nodes.push(LogicalNode::Consolidate);
        let (logical, physical) = plan_pair(nodes);
        let codes: Vec<&str> =
            analyze_plan(&logical, &physical, None).iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["WF004"]);
    }
}
