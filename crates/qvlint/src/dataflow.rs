//! Whole-plan dataflow analysis: forward abstract interpretation over
//! the typed plan IR (`qurator-plan`).
//!
//! Three domains flow through the node graph:
//!
//! 1. **Availability** — which `(evidence, repository)` facts can
//!    possibly exist when the Enrich node runs, seeded from the plan's
//!    Annotate nodes and the engine's repository catalog. A fetch that
//!    provably comes back empty is QV024 (the catalog-aware extension of
//!    the per-node QV007 binding check).
//! 2. **Value domains** — the interval/set analysis of
//!    [`crate::intervals`] lifted from single conditions to *paths*: a
//!    classification assertion constrains its tag to the model's label
//!    set, and that constraint is conjoined onto every downstream action
//!    condition. A branch unsatisfiable only under the domain is dead
//!    (QV025); a splitter group subsumed by a sibling only under the
//!    domain is shadowed (QV026).
//! 3. **Wave conflicts** — two Annotate nodes scheduled into the same
//!    physical wave writing the same evidence to one repository race
//!    nondeterministically (WF006).
//!
//! The pass runs only on views that are otherwise error-free (the engine
//! gates it on the per-node passes), so it can assume conditions parse
//! and services resolved.

use crate::{intervals, Applicability, Diagnostic, Span};
use qurator_expr::{Expr, Value};
use qurator_plan::{ActKind, LogicalPlan, PhysicalPlan, TagKind};
use std::collections::{BTreeMap, BTreeSet};

/// What the engine knows about one bound repository at analysis time.
#[derive(Debug, Clone, Default)]
pub struct RepoFacts {
    /// Repository name (the `repositoryRef` views bind against).
    pub name: String,
    /// Whether the bound store outlives one process execution.
    pub persistent: bool,
    /// Evidence-type IRIs the store currently holds annotations for.
    pub provides: BTreeSet<String>,
}

/// The engine's repository catalog, projected to analysis facts.
#[derive(Debug, Clone, Default)]
pub struct CatalogFacts {
    pub repositories: Vec<RepoFacts>,
}

impl CatalogFacts {
    fn get(&self, name: &str) -> Option<&RepoFacts> {
        self.repositories.iter().find(|r| r.name == name)
    }
}

/// Source positions of one action condition, for diagnostics and fixes.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConditionSpans {
    /// The condition text run (carries a byte extent when parsed).
    pub condition: Option<Span>,
    /// The enclosing `<group>` element — the deletion target for dead
    /// splitter groups. `None` for filters (deleting a view's only
    /// action would trade QV025 for QV002).
    pub element: Option<Span>,
}

/// Where one enrichment fetch was declared, for diagnostics and fixes.
#[derive(Debug, Clone, Copy, Default)]
pub struct FetchSite {
    /// The consuming `<var evidence=…>` attribute value.
    pub site: Option<Span>,
    /// The `repositoryRef` attribute value of the consuming
    /// `<variables>` block — the replacement target for cross-repository
    /// fetches.
    pub repository_attr: Option<Span>,
}

/// Spans harvested from the view's XML source, keyed the way the plan
/// names things. Built by the embedder (which owns the DOM); empty when
/// the view was constructed programmatically — every finding then
/// degrades to spanless, and no fix is machine-appliable.
#[derive(Debug, Clone, Default)]
pub struct SpanIndex {
    /// `(action name, group label)` → condition/element spans. Filters
    /// use the action name as the label (mirroring
    /// `ActNode::conditions`).
    pub conditions: BTreeMap<(String, String), ConditionSpans>,
    /// `(evidence IRI, repository)` → declaration site of the fetch.
    pub fetches: BTreeMap<(String, String), FetchSite>,
    /// Annotator name → its `<Annotator>` element span.
    pub annotators: BTreeMap<String, Span>,
    /// The root element span (spanless-finding fallback).
    pub root: Option<Span>,
}

impl SpanIndex {
    fn condition(&self, action: &str, label: &str) -> ConditionSpans {
        self.conditions.get(&(action.to_string(), label.to_string())).copied().unwrap_or_default()
    }

    fn fetch(&self, evidence: &str, repo: &str) -> FetchSite {
        self.fetches.get(&(evidence.to_string(), repo.to_string())).copied().unwrap_or_default()
    }
}

/// Runs all three dataflow domains over a lowered plan pair.
pub fn analyze_dataflow(
    logical: &LogicalPlan,
    physical: &PhysicalPlan,
    catalog: &CatalogFacts,
    spans: &SpanIndex,
) -> Vec<Diagnostic> {
    let mut d = Vec::new();
    availability(logical, physical, catalog, spans, &mut d);
    value_domains(logical, spans, &mut d);
    wave_conflicts(physical, spans, &mut d);
    d
}

// ---- domain 1: evidence availability ----------------------------------

fn availability(
    logical: &LogicalPlan,
    physical: &PhysicalPlan,
    catalog: &CatalogFacts,
    spans: &SpanIndex,
    d: &mut Vec<Diagnostic>,
) {
    // evidence IRI → repositories an in-plan annotator writes it to
    let mut written: BTreeMap<String, BTreeSet<&str>> = BTreeMap::new();
    for a in logical.annotators() {
        for e in &a.provides {
            written.entry(e.to_string()).or_default().insert(a.repository.as_str());
        }
    }

    let Some(enrich) = logical.enrich() else { return };
    for (evidence, repo) in &enrich.fetches {
        let evidence = evidence.to_string();
        let site = spans.fetch(&evidence, repo);
        let at = site.site.or(spans.root);
        if let Some(writers) = written.get(&evidence) {
            if writers.contains(repo.as_str()) {
                continue; // fed by an in-plan annotator
            }
            // cross-repository fetch: the evidence exists, but in another
            // repository — this lookup comes back empty every run.
            let target = sole_writer_for_repo_fetches(&written, enrich, repo);
            let mut diag = Diagnostic::warning(
                "QV024",
                format!(
                    "evidence <{evidence}> is fetched from repository {repo:?}, but the view's \
                     annotator writes it to {writers:?} — the lookup always comes back empty",
                    writers = writers.iter().collect::<Vec<_>>(),
                ),
            )
            .at(at)
            .help(format!("change the consuming repositoryRef to {:?}", writers.first().unwrap()));
            if let (Some(attr), Some(target)) = (site.repository_attr, target) {
                diag = diag.suggest(
                    format!("replace the repositoryRef with \"{target}\""),
                    attr,
                    target,
                    Applicability::MachineApplicable,
                );
            }
            d.push(diag);
            continue;
        }
        // not written in-plan: the fetch must be answered by the bound
        // store. QV018 (view-declared volatile repository) already covers
        // the in-view declaration; skip to keep findings disjoint.
        if physical.persistence.iter().any(|(r, p)| r == repo && !p) {
            continue;
        }
        match catalog.get(repo) {
            Some(facts) if facts.provides.contains(&evidence) => {}
            Some(facts) => d.push(
                Diagnostic::warning(
                    "QV024",
                    format!(
                        "evidence <{evidence}> is fetched from {kind} repository {repo:?}, which \
                         holds no annotations of that type",
                        kind = if facts.persistent { "persistent" } else { "volatile" },
                    ),
                )
                .at(at)
                .help("seed the repository, or add an annotator providing the evidence"),
            ),
            None => d.push(
                Diagnostic::warning(
                    "QV024",
                    format!(
                        "evidence <{evidence}> is fetched from repository {repo:?}, which is not \
                         bound in the engine catalog — a fresh volatile cache answers every \
                         lookup empty",
                    ),
                )
                .at(at)
                .help(
                    "bind the repository in the engine, or add an annotator providing the \
                       evidence",
                ),
            ),
        }
    }
}

/// The unique rewrite target for a `repositoryRef`, if one exists: every
/// in-plan-written evidence type fetched from `repo` must be written to
/// the same single other repository. (The attribute is shared by all
/// `<var>`s of one `<variables>` block, so rewriting it is only
/// machine-applicable when one target satisfies all of them.)
fn sole_writer_for_repo_fetches(
    written: &BTreeMap<String, BTreeSet<&str>>,
    enrich: &qurator_plan::EnrichNode,
    repo: &str,
) -> Option<String> {
    let mut target: Option<&str> = None;
    for (e, r) in &enrich.fetches {
        if r != repo {
            continue;
        }
        let writers = written.get(&e.to_string())?;
        if writers.contains(repo) || writers.len() != 1 {
            return None;
        }
        let w = writers.iter().next().unwrap();
        if target.is_some_and(|t| t != *w) {
            return None;
        }
        target = Some(w);
    }
    target.map(str::to_string)
}

// ---- domain 2: value domains along paths ------------------------------

fn value_domains(logical: &LogicalPlan, spans: &SpanIndex, d: &mut Vec<Diagnostic>) {
    // tag → classification label set, from the Assert nodes
    let domains: BTreeMap<&str, &[String]> = logical
        .assertions()
        .filter(|a| a.tag_kind == TagKind::Class && !a.labels.is_empty())
        .map(|a| (a.tag.as_str(), a.labels.as_slice()))
        .collect();
    if domains.is_empty() {
        return;
    }

    for act in logical.actions() {
        let is_split = matches!(act.kind, ActKind::Split { .. });
        // (label, expr, domain expr over the condition's class vars)
        let mut parsed: Vec<(&str, Expr, Option<Expr>, bool)> = Vec::new();
        for (label, source) in act.conditions() {
            let Ok(expr) = qurator_expr::parse(source) else { continue };
            let domain = domain_of(&expr, &domains);
            let dead = match &domain {
                Some(dom) => {
                    !intervals::definitely_unsat(&expr)
                        && intervals::definitely_unsat_given(dom, &expr)
                }
                None => false,
            };
            parsed.push((label, expr, domain, dead));
        }

        for (label, _, domain, dead) in &parsed {
            if !dead {
                continue;
            }
            let dom = domain.as_ref().unwrap();
            let cs = spans.condition(&act.name, label);
            let place = if is_split {
                format!("group {label:?} of action {:?}", act.name)
            } else {
                format!("action {:?}", act.name)
            };
            let mut diag = Diagnostic::warning(
                "QV025",
                format!(
                    "{place} is dead: its condition is unsatisfiable under the upstream \
                     classification domain {}",
                    dom.to_source(),
                ),
            )
            .at(cs.condition.or(spans.root));
            diag = if is_split {
                if let Some(el) = cs.element.filter(|s| s.byte_range().is_some()) {
                    diag.suggest(
                        format!("delete the dead group {label:?}"),
                        el,
                        "",
                        Applicability::MachineApplicable,
                    )
                } else {
                    diag.help(
                        "delete the group, or widen its condition to labels the \
                               classifier can produce",
                    )
                }
            } else {
                diag.help(
                    "widen the condition to labels the classifier can produce, or fix the \
                     tagSemType model",
                )
            };
            d.push(diag);
        }

        if !is_split {
            continue;
        }
        // QV026 — shadowing that only appears under the domain. Plain
        // implication either way is already QV023 (per-node pass); dead
        // branches are already QV025.
        for x in 0..parsed.len() {
            for y in 0..parsed.len() {
                if x == y {
                    continue;
                }
                let (ga, ea, da, dead_a) = &parsed[x];
                let (gb, eb, _, dead_b) = &parsed[y];
                if *dead_a || *dead_b {
                    continue;
                }
                let Some(dom) = da else { continue };
                if intervals::implies(ea, eb) || intervals::implies(eb, ea) {
                    continue; // QV023 territory
                }
                if intervals::implies_given(dom, ea, eb) {
                    let cs = spans.condition(&act.name, ga);
                    let sibling = spans.condition(&act.name, gb);
                    d.push(
                        Diagnostic::warning(
                            "QV026",
                            format!(
                                "action {:?}: group {ga:?} is shadowed by group {gb:?} under the \
                                 classification domain {} — every item it accepts also joins \
                                 {gb:?}",
                                act.name,
                                dom.to_source(),
                            ),
                        )
                        .at(cs.condition.or(spans.root))
                        .label(sibling.condition, "subsuming sibling group")
                        .help("tighten one of the conditions, or merge the groups"),
                    );
                }
            }
        }
    }
}

/// The conjunction of `tag in {labels…}` constraints for every
/// classification tag the expression mentions; `None` when it mentions
/// none (the analysis then has nothing to add over the per-node passes).
fn domain_of(expr: &Expr, domains: &BTreeMap<&str, &[String]>) -> Option<Expr> {
    let mut out: Option<Expr> = None;
    for var in expr.variables() {
        let Some(labels) = domains.get(var.as_str()) else { continue };
        let constraint = Expr::In(
            Box::new(Expr::Var(var.clone())),
            labels.iter().map(|l| Expr::Const(Value::symbol(l.clone()))).collect(),
        );
        out = Some(match out {
            None => constraint,
            Some(prev) => {
                Expr::Binary(qurator_expr::BinaryOp::And, Box::new(prev), Box::new(constraint))
            }
        });
    }
    out
}

// ---- domain 3: wave conflicts -----------------------------------------

fn wave_conflicts(physical: &PhysicalPlan, spans: &SpanIndex, d: &mut Vec<Diagnostic>) {
    for wave in &physical.waves {
        // (evidence, repository) → first writer in this wave
        let mut writers: BTreeMap<(String, &str), &str> = BTreeMap::new();
        for name in wave {
            let Some(a) = physical.annotators.iter().find(|a| &a.name == name) else { continue };
            for e in &a.provides {
                let key = (e.to_string(), a.repository.as_str());
                match writers.get(&key) {
                    None => {
                        writers.insert(key, a.name.as_str());
                    }
                    Some(first) => {
                        let at = spans.annotators.get(a.name.as_str()).copied().or(spans.root);
                        let first_span = spans.annotators.get(*first).copied();
                        let mut diag = Diagnostic::warning(
                            "WF006",
                            format!(
                                "annotators {first:?} and {:?} run in the same execution wave \
                                 and both write <{e}> to repository {:?} — the surviving value \
                                 is nondeterministic",
                                a.name, a.repository,
                            ),
                        )
                        .at(at)
                        .label(first_span, "first writer in this wave");
                        if let Some(el) = at.filter(|s| s.byte_range().is_some()) {
                            diag = diag.suggest(
                                format!("delete the duplicate annotator {:?}", a.name),
                                el,
                                "",
                                Applicability::MaybeIncorrect,
                            );
                        }
                        d.push(
                            diag.help("drop one writer, or point them at different repositories"),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_plan::{
        ActNode, AnnotateNode, AssertNode, Binding, EnrichNode, LogicalNode, PlanConfig,
    };
    use qurator_rdf::term::Iri;

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://qurator.org/ont#{s}"))
    }

    fn annotate(name: &str, repo: &str, provides: &[&str]) -> LogicalNode {
        LogicalNode::Annotate(AnnotateNode {
            name: name.into(),
            service_type: iri("A"),
            repository: repo.into(),
            persistent: false,
            provides: provides.iter().map(|p| iri(p)).collect(),
        })
    }

    fn classifier(name: &str, tag: &str, labels: &[&str], on: &str) -> LogicalNode {
        LogicalNode::Assert(AssertNode {
            name: name.into(),
            service_type: iri("QA"),
            tag: tag.into(),
            tag_kind: TagKind::Class,
            labels: labels.iter().map(|l| l.to_string()).collect(),
            bindings: vec![("v".into(), Binding::Evidence(iri(on)))],
        })
    }

    fn split(name: &str, groups: &[(&str, &str)]) -> LogicalNode {
        LogicalNode::Act(ActNode {
            name: name.into(),
            kind: ActKind::Split {
                groups: groups.iter().map(|(g, c)| (g.to_string(), c.to_string())).collect(),
            },
        })
    }

    fn plan(nodes: Vec<LogicalNode>) -> (LogicalPlan, PhysicalPlan) {
        let logical = LogicalPlan { view: "t".into(), nodes };
        let physical =
            qurator_plan::lower(&logical, &PlanConfig { optimize: false }).expect("lower");
        (logical, physical)
    }

    fn run(nodes: Vec<LogicalNode>) -> Vec<Diagnostic> {
        let (logical, physical) = plan(nodes);
        analyze_dataflow(&logical, &physical, &CatalogFacts::default(), &SpanIndex::default())
    }

    fn base(groups: &[(&str, &str)]) -> Vec<LogicalNode> {
        vec![
            annotate("ann", "cache", &["X"]),
            LogicalNode::Enrich(EnrichNode { fetches: vec![(iri("X"), "cache".into())] }),
            classifier("cls", "C", &["low", "mid", "high"], "X"),
            LogicalNode::Consolidate,
            split("triage", groups),
        ]
    }

    #[test]
    fn clean_plan_has_no_findings() {
        let diags = run(base(&[("lo", "C in q:low"), ("rest", "not (C in q:low)")]));
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn qv024_cross_repository_fetch() {
        let diags = run(vec![
            annotate("ann", "cache", &["X"]),
            LogicalNode::Enrich(EnrichNode { fetches: vec![(iri("X"), "archive".into())] }),
            classifier("cls", "C", &["low"], "X"),
            LogicalNode::Consolidate,
            split("t", &[("g", "C in q:low")]),
        ]);
        let qv024 = diags.iter().find(|d| d.code == "QV024").expect("QV024");
        assert!(qv024.message.contains("archive") && qv024.message.contains("cache"));
        // no span index → no machine fix
        assert!(qv024.suggestion.is_none());
    }

    #[test]
    fn qv024_unknown_catalog_repository() {
        // repository never written in-plan and absent from the catalog
        let diags = run(vec![
            LogicalNode::Enrich(EnrichNode { fetches: vec![(iri("X"), "warehouse".into())] }),
            classifier("cls", "C", &["low"], "X"),
            LogicalNode::Consolidate,
            split("t", &[("g", "C in q:low")]),
        ]);
        assert!(diags.iter().any(|d| d.code == "QV024" && d.message.contains("not bound")));
    }

    #[test]
    fn qv024_respects_the_catalog() {
        let nodes = vec![
            LogicalNode::Enrich(EnrichNode { fetches: vec![(iri("X"), "warehouse".into())] }),
            classifier("cls", "C", &["low"], "X"),
            LogicalNode::Consolidate,
            split("t", &[("g", "C in q:low")]),
        ];
        let (logical, physical) = plan(nodes);
        let stocked = CatalogFacts {
            repositories: vec![RepoFacts {
                name: "warehouse".into(),
                persistent: true,
                provides: [iri("X").to_string()].into(),
            }],
        };
        let diags = analyze_dataflow(&logical, &physical, &stocked, &SpanIndex::default());
        assert!(diags.is_empty(), "catalog-provided evidence is available: {diags:?}");

        let empty_store = CatalogFacts {
            repositories: vec![RepoFacts {
                name: "warehouse".into(),
                persistent: true,
                provides: BTreeSet::new(),
            }],
        };
        let diags = analyze_dataflow(&logical, &physical, &empty_store, &SpanIndex::default());
        assert!(
            diags.iter().any(|d| d.code == "QV024" && d.message.contains("holds no annotations")),
            "{diags:?}"
        );
    }

    #[test]
    fn qv024_cross_repo_fix_needs_a_unique_target() {
        let nodes = vec![
            annotate("ann", "cache", &["X"]),
            LogicalNode::Enrich(EnrichNode { fetches: vec![(iri("X"), "archive".into())] }),
            classifier("cls", "C", &["low"], "X"),
            LogicalNode::Consolidate,
            split("t", &[("g", "C in q:low")]),
        ];
        let (logical, physical) = plan(nodes);
        let mut spans = SpanIndex::default();
        spans.fetches.insert(
            (iri("X").to_string(), "archive".into()),
            FetchSite {
                site: Some(Span::with_extent(3, 5, 40, 10)),
                repository_attr: Some(Span::with_extent(3, 30, 60, 7)),
            },
        );
        let diags = analyze_dataflow(&logical, &physical, &CatalogFacts::default(), &spans);
        let qv024 = diags.iter().find(|d| d.code == "QV024").unwrap();
        let s = qv024.suggestion.as_ref().expect("machine fix");
        assert_eq!(s.replacement, "cache");
        assert_eq!(s.applicability, Applicability::MachineApplicable);
    }

    #[test]
    fn qv025_domain_dead_group_and_filter() {
        let diags = run(base(&[("lo", "C in q:low"), ("ghost", "C in q:ghost")]));
        let qv025 = diags.iter().find(|d| d.code == "QV025").expect("QV025");
        assert!(qv025.message.contains("ghost"));
        // spanless element → helpful text, no machine fix
        assert!(qv025.suggestion.is_none() && qv025.help.is_some());

        // a plain-unsat condition is QV022's finding, not QV025's
        let diags = run(base(&[("dead", "C in q:low and not (C in q:low)")]));
        assert!(!diags.iter().any(|d| d.code == "QV025"), "{diags:?}");
    }

    #[test]
    fn qv025_dead_group_with_spans_gets_a_machine_fix() {
        let nodes = base(&[("lo", "C in q:low"), ("ghost", "C in q:ghost")]);
        let (logical, physical) = plan(nodes);
        let mut spans = SpanIndex::default();
        spans.conditions.insert(
            ("triage".into(), "ghost".into()),
            ConditionSpans {
                condition: Some(Span::with_extent(9, 7, 200, 13)),
                element: Some(Span::with_extent(8, 5, 180, 60)),
            },
        );
        let diags = analyze_dataflow(&logical, &physical, &CatalogFacts::default(), &spans);
        let qv025 = diags.iter().find(|d| d.code == "QV025").unwrap();
        let s = qv025.suggestion.as_ref().expect("machine fix");
        assert_eq!(s.applicability, Applicability::MachineApplicable);
        assert_eq!(s.span.byte_range(), Some(180..240));
        assert!(s.replacement.is_empty());
    }

    #[test]
    fn qv026_domain_shadowing() {
        // "not low" and "low or mid or high" only relate under the domain:
        // plain set analysis finds no implication in either direction
        let diags =
            run(base(&[("rest", "not (C in q:low)"), ("all", "C in q:low, q:mid, q:high")]));
        let qv026 = diags.iter().find(|d| d.code == "QV026").expect("QV026");
        assert!(qv026.message.contains("\"rest\"") && qv026.message.contains("\"all\""));
        assert_eq!(qv026.labels.len(), 1);

        // plain subsumption stays QV023's finding
        let diags = run(base(&[("hi", "C in q:high"), ("both", "C in q:mid, q:high")]));
        assert!(!diags.iter().any(|d| d.code == "QV026"), "{diags:?}");
    }

    #[test]
    fn wf006_same_wave_duplicate_writers() {
        let diags = run(vec![
            annotate("a1", "cache", &["X"]),
            annotate("a2", "cache", &["X"]),
            LogicalNode::Enrich(EnrichNode { fetches: vec![(iri("X"), "cache".into())] }),
            classifier("cls", "C", &["low"], "X"),
            LogicalNode::Consolidate,
            split("t", &[("g", "C in q:low")]),
        ]);
        let wf006 = diags.iter().find(|d| d.code == "WF006").expect("WF006");
        assert!(wf006.message.contains("a1") && wf006.message.contains("a2"));

        // different repositories do not conflict
        let diags = run(vec![
            annotate("a1", "cache", &["X"]),
            annotate("a2", "archive", &["X"]),
            LogicalNode::Enrich(EnrichNode { fetches: vec![(iri("X"), "cache".into())] }),
            classifier("cls", "C", &["low"], "X"),
            LogicalNode::Consolidate,
            split("t", &[("g", "C in q:low")]),
        ]);
        assert!(!diags.iter().any(|d| d.code == "WF006"), "{diags:?}");
    }
}
