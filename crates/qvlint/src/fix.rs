//! The `qv check --fix` patcher: applies [`MachineApplicable`]
//! suggestions to the original source text by byte-range splicing, and
//! renders a dependency-free unified diff for `--fix --dry-run`.
//!
//! The patcher is deliberately dumb: it never re-serializes the DOM.
//! Replacements are spliced into the exact byte extents the parser
//! recorded, so everything the author wrote — comments, attribute
//! order, indentation — survives untouched except for the fixed region.
//!
//! [`MachineApplicable`]: crate::Applicability::MachineApplicable

use crate::{Applicability, Diagnostic};

/// One fix the patcher applied, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedFix {
    /// The diagnostic code the fix came from.
    pub code: &'static str,
    /// The suggestion's human message.
    pub message: String,
    /// 1-based position of the replaced region.
    pub line: u32,
    /// 1-based column of the replaced region.
    pub col: u32,
}

/// The outcome of [`apply_machine_fixes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixReport {
    /// The patched source (equal to the input when nothing applied).
    pub fixed: String,
    /// Fixes applied, in source order.
    pub applied: Vec<AppliedFix>,
    /// Machine-applicable suggestions that could *not* be applied:
    /// missing byte extent, out-of-bounds span, or overlap with an
    /// earlier fix. These surface as a warning in the CLI.
    pub skipped: usize,
}

impl FixReport {
    /// True when the patcher changed the source.
    pub fn changed(&self) -> bool {
        !self.applied.is_empty()
    }
}

/// Applies every `MachineApplicable` suggestion to `source`.
///
/// Suggestions are applied in ascending span order; a suggestion whose
/// byte range overlaps an already-accepted one is skipped (the caller
/// re-lints and re-fixes until convergence). Pure deletions additionally
/// swallow any whitespace-only line remains around the removed region,
/// so deleting an element does not leave a blank line behind.
pub fn apply_machine_fixes(source: &str, diags: &[Diagnostic]) -> FixReport {
    let mut candidates: Vec<(std::ops::Range<usize>, &Diagnostic)> = Vec::new();
    let mut skipped = 0usize;
    for d in diags {
        let Some(s) = &d.suggestion else { continue };
        if s.applicability != Applicability::MachineApplicable {
            continue;
        }
        match s.span.byte_range() {
            Some(r)
                if r.end <= source.len()
                    && source.is_char_boundary(r.start)
                    && source.is_char_boundary(r.end) =>
            {
                candidates.push((r, d));
            }
            _ => skipped += 1,
        }
    }
    candidates.sort_by_key(|(r, d)| (r.start, r.end, d.code));

    // accept non-overlapping fixes in source order
    let mut accepted: Vec<(std::ops::Range<usize>, &Diagnostic)> = Vec::new();
    for (r, d) in candidates {
        if accepted.last().is_some_and(|(prev, _)| r.start < prev.end) {
            skipped += 1;
            continue;
        }
        let r = if d.suggestion.as_ref().unwrap().replacement.is_empty() {
            widen_deletion(source, r)
        } else {
            r
        };
        accepted.push((r, d));
    }

    // splice back-to-front so earlier ranges stay valid
    let mut fixed = source.to_string();
    for (r, d) in accepted.iter().rev() {
        let s = d.suggestion.as_ref().unwrap();
        fixed.replace_range(r.clone(), &s.replacement);
    }

    let applied = accepted
        .iter()
        .map(|(_, d)| {
            let s = d.suggestion.as_ref().unwrap();
            AppliedFix {
                code: d.code,
                message: s.message.clone(),
                line: s.span.line,
                col: s.span.col,
            }
        })
        .collect();
    FixReport { fixed, applied, skipped }
}

/// Expands a deletion range over whitespace-only line remains: leading
/// indentation (back to the line start, if only spaces/tabs precede the
/// region) and the trailing newline, so removing an element removes its
/// whole line(s).
fn widen_deletion(source: &str, r: std::ops::Range<usize>) -> std::ops::Range<usize> {
    let bytes = source.as_bytes();
    let mut start = r.start;
    while start > 0 && matches!(bytes[start - 1], b' ' | b'\t') {
        start -= 1;
    }
    let at_line_start = start == 0 || bytes[start - 1] == b'\n';
    if !at_line_start {
        // mid-line deletion: keep the surrounding text intact
        return r;
    }
    let mut end = r.end;
    while end < bytes.len() && matches!(bytes[end], b' ' | b'\t') {
        end += 1;
    }
    if end < bytes.len() && bytes[end] == b'\r' {
        end += 1;
    }
    if end < bytes.len() && bytes[end] == b'\n' {
        end += 1;
    } else if end != r.end {
        // trailing whitespace but no newline: leave the tail alone
        end = r.end;
    }
    start..end
}

/// Renders a unified diff (`--- a/name` / `+++ b/name`, 3 lines of
/// context) between the original and fixed sources. Returns the empty
/// string when the texts are equal. Line-based LCS, no dependencies.
pub fn unified_diff(original: &str, fixed: &str, name: &str) -> String {
    if original == fixed {
        return String::new();
    }
    let a: Vec<&str> = original.lines().collect();
    let b: Vec<&str> = fixed.lines().collect();

    // classic DP LCS over lines; view sources are small (≪ 10k lines)
    let (n, m) = (a.len(), b.len());
    let mut lcs = vec![vec![0u32; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            lcs[i][j] =
                if a[i] == b[j] { lcs[i + 1][j + 1] + 1 } else { lcs[i + 1][j].max(lcs[i][j + 1]) };
        }
    }

    #[derive(Clone, Copy, PartialEq)]
    enum Op {
        Keep,
        Del,
        Add,
    }
    let mut ops: Vec<(Op, usize, usize)> = Vec::new(); // (op, a-index, b-index)
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            ops.push((Op::Keep, i, j));
            i += 1;
            j += 1;
        } else if lcs[i + 1][j] >= lcs[i][j + 1] {
            ops.push((Op::Del, i, j));
            i += 1;
        } else {
            ops.push((Op::Add, i, j));
            j += 1;
        }
    }
    while i < n {
        ops.push((Op::Del, i, j));
        i += 1;
    }
    while j < m {
        ops.push((Op::Add, i, j));
        j += 1;
    }

    const CTX: usize = 3;
    let mut out = String::new();
    out.push_str(&format!("--- a/{name}\n+++ b/{name}\n"));
    let mut k = 0;
    while k < ops.len() {
        if ops[k].0 == Op::Keep {
            k += 1;
            continue;
        }
        // hunk: from CTX lines before this change to CTX lines after the
        // last change in the run (merging changes closer than 2*CTX)
        let hunk_start = k.saturating_sub(CTX);
        let mut hunk_end = k;
        let mut last_change = k;
        while hunk_end < ops.len() {
            if ops[hunk_end].0 != Op::Keep {
                last_change = hunk_end;
            } else if hunk_end - last_change >= 2 * CTX {
                break;
            }
            hunk_end += 1;
        }
        let hunk_end = (last_change + CTX + 1).min(ops.len());

        let a_start = ops[hunk_start].1;
        let b_start = ops[hunk_start].2;
        let (mut a_count, mut b_count) = (0usize, 0usize);
        for &(op, _, _) in &ops[hunk_start..hunk_end] {
            match op {
                Op::Keep => {
                    a_count += 1;
                    b_count += 1;
                }
                Op::Del => a_count += 1,
                Op::Add => b_count += 1,
            }
        }
        out.push_str(&format!("@@ -{},{} +{},{} @@\n", a_start + 1, a_count, b_start + 1, b_count));
        for &(op, ai, bi) in &ops[hunk_start..hunk_end] {
            match op {
                Op::Keep => {
                    out.push(' ');
                    out.push_str(a[ai]);
                }
                Op::Del => {
                    out.push('-');
                    out.push_str(a[ai]);
                }
                Op::Add => {
                    out.push('+');
                    out.push_str(b[bi]);
                }
            }
            out.push('\n');
        }
        k = hunk_end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Span;

    fn fixit(code: &'static str, span: Span, replacement: &str) -> Diagnostic {
        Diagnostic::warning(code, "m").at(Some(span)).suggest(
            "fix it",
            span,
            replacement,
            Applicability::MachineApplicable,
        )
    }

    #[test]
    fn replacement_splices_in_place() {
        let src = "<c>HR &gt; 1</c>";
        let d = fixit("QV021", Span::with_extent(1, 4, 3, 9), "HR &gt; 2");
        let report = apply_machine_fixes(src, &[d]);
        assert_eq!(report.fixed, "<c>HR &gt; 2</c>");
        assert_eq!(report.applied.len(), 1);
        assert_eq!(report.skipped, 0);
    }

    #[test]
    fn deletion_swallows_the_whole_line() {
        let src = "<a>\n  <dead/>\n  <live/>\n</a>";
        let start = src.find("<dead/>").unwrap();
        let d = fixit("QV025", Span::with_extent(2, 3, start as u32, 7), "");
        let report = apply_machine_fixes(src, &[d]);
        assert_eq!(report.fixed, "<a>\n  <live/>\n</a>");
    }

    #[test]
    fn mid_line_deletion_keeps_neighbors() {
        let src = "<a><dead/><live/></a>";
        let start = src.find("<dead/>").unwrap();
        let d = fixit("QV025", Span::with_extent(1, 4, start as u32, 7), "");
        let report = apply_machine_fixes(src, &[d]);
        assert_eq!(report.fixed, "<a><live/></a>");
    }

    #[test]
    fn overlapping_and_extentless_fixes_are_skipped() {
        let src = "0123456789";
        let keep = fixit("QV025", Span::with_extent(1, 1, 2, 4), "X");
        let overlap = fixit("QV026", Span::with_extent(1, 4, 4, 4), "Y");
        let pointspan = fixit("QV021", Span::new(1, 1), "Z");
        let not_machine = Diagnostic::warning("WF006", "m").suggest(
            "maybe",
            Span::with_extent(1, 8, 8, 1),
            "",
            Applicability::MaybeIncorrect,
        );
        let report = apply_machine_fixes(src, &[keep, overlap, pointspan, not_machine]);
        assert_eq!(report.fixed, "01X6789");
        assert_eq!(report.applied.len(), 1);
        assert_eq!(report.skipped, 2, "overlap + extentless skipped; MaybeIncorrect ignored");
    }

    #[test]
    fn multiple_fixes_apply_back_to_front() {
        let src = "aa bb cc";
        let d1 = fixit("QV021", Span::with_extent(1, 1, 0, 2), "XX");
        let d2 = fixit("QV021", Span::with_extent(1, 7, 6, 2), "YY");
        let report = apply_machine_fixes(src, &[d2, d1]);
        assert_eq!(report.fixed, "XX bb YY");
        assert_eq!(report.applied.len(), 2);
        // applied list comes back in source order regardless of input order
        assert_eq!(report.applied[0].col, 1);
    }

    #[test]
    fn diff_shows_deleted_lines_with_context() {
        let orig = "l1\nl2\nl3\nl4\nl5\nl6\nl7\nl8\n";
        let fixed = "l1\nl2\nl3\nl5\nl6\nl7\nl8\n";
        let diff = unified_diff(orig, fixed, "view.qv");
        assert!(diff.starts_with("--- a/view.qv\n+++ b/view.qv\n"));
        assert!(diff.contains("-l4\n"));
        assert!(diff.contains(" l3\n") && diff.contains(" l7\n"), "3 lines of context");
        assert!(!diff.contains(" l8\n"), "past the context window");
        assert!(diff.contains("@@ -1,7 +1,6 @@"));
    }

    #[test]
    fn diff_of_identical_texts_is_empty() {
        assert_eq!(unified_diff("same\n", "same\n", "x"), "");
    }

    #[test]
    fn nearby_changes_merge_into_one_hunk() {
        let orig = "a\nb\nc\nd\ne\nf\ng\n";
        let fixed = "a\nB\nc\nd\ne\nF\ng\n";
        let diff = unified_diff(orig, fixed, "x");
        let hunks = diff.lines().filter(|l| l.starts_with("@@")).count();
        assert_eq!(hunks, 1, "one merged hunk:\n{diff}");
    }
}
