//! Diagnostic rendering: a rustc-style text form with source snippets,
//! and a machine-readable JSON form for editor/CI integration.

use crate::{codes, summary, Diagnostic};
use std::fmt::Write as _;

/// Renders diagnostics in the familiar compiler style:
///
/// ```text
/// error[QV022]: action "dead": condition is unsatisfiable
///   --> view.qv:12:18
///    |
/// 12 |       <condition>HR_MC &gt; 5 and HR_MC &lt; 2</condition>
///    |                  ^
///    = help: adjust the bounds so the ranges overlap
/// ```
///
/// `source` is the original document text (used for snippet lines);
/// rendering degrades gracefully when a diagnostic has no span.
pub fn render_text(diags: &[Diagnostic], source_name: &str, source: &str) -> String {
    let lines: Vec<&str> = source.lines().collect();
    let mut out = String::new();
    for d in diags {
        let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
        if let Some(span) = d.span {
            let _ = writeln!(out, "  --> {source_name}:{}:{}", span.line, span.col);
            render_snippet(&mut out, &lines, span.line, span.col);
        }
        for label in &d.labels {
            match label.span {
                Some(s) => {
                    let _ = writeln!(
                        out,
                        "   = note: {} (at {}:{}:{})",
                        label.message, source_name, s.line, s.col
                    );
                }
                None => {
                    let _ = writeln!(out, "   = note: {}", label.message);
                }
            }
        }
        if let Some(help) = &d.help {
            let _ = writeln!(out, "   = help: {help}");
        }
        if let Some(s) = &d.suggestion {
            let _ = writeln!(out, "   = help: {} [{}]", s.message, s.applicability);
            if !s.replacement.is_empty() {
                let _ = writeln!(out, "   = fix: replace with `{}`", s.replacement);
            }
        }
        out.push('\n');
    }
    let _ = writeln!(out, "{}", summary(diags));
    out
}

fn render_snippet(out: &mut String, lines: &[&str], line: u32, col: u32) {
    let Some(text) = lines.get(line as usize - 1) else {
        return;
    };
    let gutter = line.to_string().len().max(2);
    let _ = writeln!(out, "{:gutter$} |", "");
    let _ = writeln!(out, "{line:gutter$} | {text}");
    // the caret column counts bytes from the line start; expand nothing,
    // just pad with spaces (tabs are preserved so terminals line up)
    let mut pad = String::new();
    for (i, c) in text.char_indices() {
        if i + 1 >= col as usize {
            break;
        }
        pad.push(if c == '\t' { '\t' } else { ' ' });
    }
    let _ = writeln!(out, "{:gutter$} | {pad}^", "");
}

/// Renders diagnostics as a JSON array (machine-readable; the schema is
/// documented in DESIGN.md §7). No external JSON library: the value space
/// is flat and escaping is the only subtlety.
pub fn render_json(diags: &[Diagnostic], source_name: &str) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        let _ = write!(
            out,
            "\"code\":{},\"severity\":{},\"message\":{}",
            json_str(d.code),
            json_str(&d.severity.to_string()),
            json_str(&d.message)
        );
        if let Some(desc) = codes::describe(d.code) {
            let _ = write!(out, ",\"description\":{}", json_str(desc));
        }
        let _ = write!(out, ",\"file\":{}", json_str(source_name));
        if let Some(span) = d.span {
            let _ = write!(out, ",\"line\":{},\"col\":{}", span.line, span.col);
        }
        if !d.labels.is_empty() {
            out.push_str(",\"notes\":[");
            for (j, label) in d.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('{');
                let _ = write!(out, "\"message\":{}", json_str(&label.message));
                if let Some(s) = label.span {
                    let _ = write!(out, ",\"line\":{},\"col\":{}", s.line, s.col);
                }
                out.push('}');
            }
            out.push(']');
        }
        if let Some(help) = &d.help {
            let _ = write!(out, ",\"help\":{}", json_str(help));
        }
        if let Some(s) = &d.suggestion {
            let _ = write!(
                out,
                ",\"suggestion\":{{\"message\":{},\"replacement\":{},\"applicability\":{},\
                 \"line\":{},\"col\":{},\"offset\":{},\"len\":{}}}",
                json_str(&s.message),
                json_str(&s.replacement),
                json_str(&s.applicability.to_string()),
                s.span.line,
                s.span.col,
                s.span.offset,
                s.span.len,
            );
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Span;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::error("QV015", "action \"x\": bad syntax")
                .at(Some(Span::new(2, 5)))
                .help("check the grammar"),
            Diagnostic::warning("QV019", "tag \"HR\" is never read")
                .label(Some(Span::new(1, 1)), "produced here"),
        ]
    }

    #[test]
    fn text_rendering_shows_snippet_and_caret() {
        let src = "<QualityView name=\"v\">\n  <action name=\"x\"/>\n</QualityView>";
        let text = render_text(&sample(), "v.qv", src);
        assert!(text.contains("error[QV015]: action \"x\": bad syntax"));
        assert!(text.contains("--> v.qv:2:5"));
        assert!(text.contains(" 2 |   <action name=\"x\"/>"));
        assert!(text.contains("|     ^"), "caret under column 5:\n{text}");
        assert!(text.contains("= help: check the grammar"));
        assert!(text.contains("= note: produced here (at v.qv:1:1)"));
        assert!(text.contains("1 error, 1 warning"));
    }

    #[test]
    fn text_rendering_without_spans() {
        let diags = vec![Diagnostic::error("QV001", "empty name")];
        let text = render_text(&diags, "v.qv", "");
        assert!(text.contains("error[QV001]: empty name"));
        assert!(!text.contains("-->"));
    }

    #[test]
    fn json_rendering_is_escaped_and_complete() {
        let json = render_json(&sample(), "dir/v \"q\".qv");
        assert!(json.contains("\"code\":\"QV015\""));
        assert!(json.contains("\"severity\":\"error\""));
        assert!(json.contains("\"line\":2,\"col\":5"));
        assert!(json.contains("\"file\":\"dir/v \\\"q\\\".qv\""));
        assert!(json.contains("\"description\":\"condition syntax error\""));
        assert!(json.contains("\"notes\":[{\"message\":\"produced here\",\"line\":1,\"col\":1}]"));
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
    }

    #[test]
    fn json_of_empty_list() {
        assert_eq!(render_json(&[], "x"), "[\n]\n");
    }

    #[test]
    fn suggestions_render_in_both_forms() {
        let diags = vec![Diagnostic::warning("QV025", "group \"dead\" can never match")
            .at(Some(Span::new(3, 5)))
            .suggest(
                "delete the dead group \"dead\"",
                crate::Span::with_extent(3, 5, 40, 20),
                "",
                crate::Applicability::MachineApplicable,
            )];
        let text = render_text(&diags, "v.qv", "<a>\n<b>\n  <group/>\n</a>");
        assert!(text.contains("= help: delete the dead group \"dead\" [machine-applicable]"));
        assert!(!text.contains("= fix:"), "deletions carry no replacement text");
        let json = render_json(&diags, "v.qv");
        assert!(json.contains(
            "\"suggestion\":{\"message\":\"delete the dead group \\\"dead\\\"\",\
             \"replacement\":\"\",\"applicability\":\"machine-applicable\",\
             \"line\":3,\"col\":5,\"offset\":40,\"len\":20}"
        ));

        let diags =
            vec![Diagnostic::error("QV021", "foreign label").at(Some(Span::new(1, 1))).suggest(
                "drop the foreign label(s)",
                crate::Span::with_extent(1, 1, 0, 3),
                "(C in {q:low})",
                crate::Applicability::MachineApplicable,
            )];
        let text = render_text(&diags, "v.qv", "<a/>");
        assert!(text.contains("= fix: replace with `(C in {q:low})`"));
    }
}
