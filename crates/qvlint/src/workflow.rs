//! Analysis of compiled workflow graphs (§6.1 output).
//!
//! The compiler's own `Workflow::validate()` guarantees well-formedness
//! (ports exist, required inputs fed, acyclic); this pass re-checks the
//! graph-shape properties as diagnostics — so `qv check` reports them
//! alongside view-level findings instead of aborting — and adds the
//! observations validation does not make: nodes unreachable from any
//! workflow input, repositories written but never read, and unusually
//! wide execution waves (a parallelism hint for the wave scheduler).

use crate::{Diagnostic, Span};
use qurator_workflow::Workflow;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Repository access facts the caller extracts from the view (the
/// workflow graph itself does not know which processors touch which
/// repository). `writes`/`reads` pair a node name with a repository name.
#[derive(Debug, Clone, Default)]
pub struct RepoUsage {
    pub writes: Vec<(String, String)>,
    pub reads: Vec<(String, String)>,
}

/// Waves at least this wide earn a WF004 parallelism hint.
pub const WIDE_WAVE: usize = 8;

/// Runs the full workflow pass: the graph-shape checks of
/// [`analyze_graph`] plus the repository-usage (WF003) and wave-width
/// (WF004) observations derived from `repos` and the workflow's own wave
/// schedule. `qv check` runs WF003/WF004 on the plan IR instead (see
/// [`crate::plan::analyze_plan`]); this all-in-one entry point serves
/// callers that only have a compiled workflow in hand.
pub fn analyze_workflow(
    workflow: &Workflow,
    repos: &RepoUsage,
    spec_span: Option<Span>,
) -> Vec<Diagnostic> {
    let mut diags = analyze_graph(workflow, spec_span);
    if diags.iter().any(|d| d.code == "WF001") {
        return diags;
    }
    diags.extend(write_only_repositories(&repos.writes, &repos.reads, spec_span));
    if let Ok(waves) = workflow.waves() {
        diags.extend(wave_width_hint(&waves, spec_span));
    }
    diags
}

/// The pure graph-shape checks (WF001 cycles, WF002 unreachable nodes) —
/// the properties only the wired workflow can answer.
pub fn analyze_graph(workflow: &Workflow, spec_span: Option<Span>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // WF001 — dependency cycles. The topological order underpins every
    // other graph question, so a cycle short-circuits the pass.
    if let Err(e) = workflow.topological_order() {
        diags.push(
            Diagnostic::error("WF001", format!("workflow {:?}: {e}", workflow.name()))
                .at(spec_span)
                .help("break the dependency cycle between the listed processors"),
        );
        return diags;
    }

    // WF002 — unreachable nodes: no path from any workflow-input-fed node.
    let mut adjacency: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in workflow.dependency_edges() {
        adjacency.entry(from).or_default().push(to);
    }
    let mut reached: BTreeSet<&str> = BTreeSet::new();
    let mut queue: VecDeque<&str> = VecDeque::new();
    for (_, targets) in workflow.inputs() {
        for port in targets {
            if reached.insert(port.processor.as_str()) {
                queue.push_back(&port.processor);
            }
        }
    }
    while let Some(node) = queue.pop_front() {
        for next in adjacency.get(node).into_iter().flatten() {
            if reached.insert(next) {
                queue.push_back(next);
            }
        }
    }
    for node in workflow.nodes() {
        if !reached.contains(node) {
            diags.push(
                Diagnostic::warning(
                    "WF002",
                    format!("processor {node:?} is unreachable from any workflow input"),
                )
                .at(spec_span)
                .help("connect the processor to the data flow or remove it"),
            );
        }
    }

    diags
}

/// WF003 — repositories written but never read. An annotator that
/// fills a repository no enrichment step consults does work nobody
/// observes (within this view; persistent repositories may serve
/// later views, which is why this is a warning, not an error).
/// `writes`/`reads` pair a node name with a repository name.
pub fn write_only_repositories(
    writes: &[(String, String)],
    reads: &[(String, String)],
    spec_span: Option<Span>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let read: BTreeSet<&str> = reads.iter().map(|(_, r)| r.as_str()).collect();
    let mut reported: BTreeSet<&str> = BTreeSet::new();
    for (node, repo) in writes {
        if !read.contains(repo.as_str()) && reported.insert(repo) {
            diags.push(
                Diagnostic::warning(
                    "WF003",
                    format!(
                        "repository {repo:?} is written (by {node:?}) but never read by this view"
                    ),
                )
                .at(spec_span)
                .help("point an assertion at the repository, or drop the annotator"),
            );
        }
    }
    diags
}

/// WF004 — wave-width hint: the §6.1 enactor runs each wave's nodes in
/// parallel, so a wave wider than the worker pool serializes.
pub fn wave_width_hint(waves: &[Vec<String>], spec_span: Option<Span>) -> Option<Diagnostic> {
    let (index, width) =
        waves.iter().enumerate().map(|(i, w)| (i, w.len())).max_by_key(|(_, w)| *w)?;
    if width < WIDE_WAVE {
        return None;
    }
    Some(
        Diagnostic::info(
            "WF004",
            format!(
                "wave {index} runs {width} processors in parallel; \
                 the enactor's thread pool may serialize it"
            ),
        )
        .at(spec_span),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_workflow::processor::FnProcessor;
    use qurator_workflow::{PortRef, Processor};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn node() -> Arc<dyn Processor> {
        Arc::new(
            FnProcessor::new("n", &[("in", 0)], &["out"], |_, _| {
                Ok(BTreeMap::from([("out".to_string(), qurator_workflow::data::Data::Null)]))
            })
            .with_optional(&["in"]),
        )
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn detects_cycles() {
        let mut w = Workflow::new("t");
        w.add("a", node()).unwrap();
        w.add("b", node()).unwrap();
        w.link("a", "out", "b", "in").unwrap();
        w.link("b", "out", "a", "in").unwrap();
        let diags = analyze_workflow(&w, &RepoUsage::default(), None);
        assert_eq!(codes(&diags), vec!["WF001"]);
    }

    #[test]
    fn detects_unreachable_nodes() {
        let mut w = Workflow::new("t");
        w.add("fed", node()).unwrap();
        w.add("downstream", node()).unwrap();
        w.add("orphan", node()).unwrap();
        w.link("fed", "out", "downstream", "in").unwrap();
        w.declare_input("x", PortRef::new("fed", "in")).unwrap();
        let diags = analyze_workflow(&w, &RepoUsage::default(), None);
        assert_eq!(codes(&diags), vec!["WF002"]);
        assert!(diags[0].message.contains("orphan"));
    }

    #[test]
    fn detects_write_only_repositories() {
        let mut w = Workflow::new("t");
        w.add("a", node()).unwrap();
        w.declare_input("x", PortRef::new("a", "in")).unwrap();
        let repos = RepoUsage {
            writes: vec![("a".into(), "scratch".into()), ("a".into(), "cache".into())],
            reads: vec![("de".into(), "cache".into())],
        };
        let diags = analyze_workflow(&w, &repos, None);
        assert_eq!(codes(&diags), vec!["WF003"]);
        assert!(diags[0].message.contains("scratch"));
    }

    #[test]
    fn wide_waves_get_a_hint() {
        let mut w = Workflow::new("t");
        w.add("src", node()).unwrap();
        w.declare_input("x", PortRef::new("src", "in")).unwrap();
        for i in 0..WIDE_WAVE {
            let name = format!("p{i}");
            w.add(name.clone(), node()).unwrap();
            w.link("src", "out", &name, "in").unwrap();
        }
        let diags = analyze_workflow(&w, &RepoUsage::default(), None);
        assert_eq!(codes(&diags), vec!["WF004"]);
        assert!(diags[0].message.contains(&WIDE_WAVE.to_string()));
    }

    #[test]
    fn clean_workflow_has_no_findings() {
        let mut w = Workflow::new("t");
        w.add("a", node()).unwrap();
        w.add("b", node()).unwrap();
        w.link("a", "out", "b", "in").unwrap();
        w.declare_input("x", PortRef::new("a", "in")).unwrap();
        assert!(analyze_workflow(&w, &RepoUsage::default(), None).is_empty());
    }
}
