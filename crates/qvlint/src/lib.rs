//! # qurator-qvlint
//!
//! Static analysis for the Quality Views framework (reproduction of
//! *Quality Views*, VLDB 2006). The paper's cost-effectiveness argument
//! (§6.1) rests on users being told about unknown concepts, unbound
//! variables and ill-typed conditions *before* a view is compiled and
//! deployed into the host workflow; this crate is that analysis layer,
//! grown from a fail-fast validator into a collect-all diagnostics engine.
//!
//! The crate supplies the *framework* and the spec-independent passes:
//!
//! * [`Diagnostic`] — one finding: a stable code (`QV0xx` view-level,
//!   `WF0xx` workflow-level, `SQ0xx` SPARQL-level), a [`Severity`], a
//!   human message, labeled source [`Span`]s and an optional fix
//!   suggestion;
//! * [`render`] — rustc-style text rendering with source snippets, plus a
//!   machine-readable JSON form;
//! * [`intervals`] — interval/set analysis over condition predicates
//!   (unsatisfiability, implication between splitter groups);
//! * [`workflow`] — analysis of compiled workflow graphs (cycles,
//!   unreachable nodes, repository write/read mismatches, wave-width
//!   hints);
//! * [`plan`] — the WF003/WF004 usage findings rebased onto the typed
//!   plan IR (`qurator-plan`), which both executors consume;
//! * [`sparql`] — analysis of SPARQL query text (syntax, unbound
//!   projected variables, cartesian-product joins, unknown prefixes).
//!
//! The view-level passes (QV0xx) live in `qurator::lint`, next to the
//! spec model they analyze; they produce the same [`Diagnostic`] values.

pub mod dataflow;
pub mod fix;
pub mod intervals;
pub mod plan;
pub mod render;
pub mod sparql;
pub mod workflow;

pub use qurator_xml::Span;

use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The view/query is wrong and must not be deployed.
    Error,
    /// Probably a mistake; deployment would still behave deterministically.
    Warning,
    /// A hint (e.g. a performance observation), never a gate.
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        })
    }
}

/// How confident the analyzer is that a suggested replacement is the
/// right fix — the same ladder rustc uses. Only `MachineApplicable`
/// suggestions are applied by `qv check --fix`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applicability {
    /// The fix is definitely correct; applying it cannot change the
    /// meaning of the view beyond removing the flagged defect.
    MachineApplicable,
    /// The fix is probably what the author meant, but a human should
    /// confirm (e.g. deleting one of two same-wave duplicate writers).
    MaybeIncorrect,
    /// The replacement contains placeholders the author must fill in.
    HasPlaceholders,
}

impl fmt::Display for Applicability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Applicability::MachineApplicable => "machine-applicable",
            Applicability::MaybeIncorrect => "maybe-incorrect",
            Applicability::HasPlaceholders => "has-placeholders",
        })
    }
}

/// A structured, machine-readable fix attached to a diagnostic.
///
/// `span` must carry a byte extent (see [`Span::byte_range`]) for the
/// fix to be appliable; the patcher replaces those bytes with
/// `replacement` (empty string = deletion). `message` is the
/// human-facing "help: …" line shown by the renderers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suggestion {
    /// What the fix does, e.g. `replace the condition with "…"`.
    pub message: String,
    /// The source region to replace. Needs a byte extent to be
    /// machine-appliable.
    pub span: Span,
    /// Replacement source text (already XML-escaped when it lands in
    /// character data). Empty means "delete the region".
    pub replacement: String,
    /// Whether `--fix` may apply this without a human in the loop.
    pub applicability: Applicability,
}

/// A secondary source label attached to a diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Label {
    /// Where (1-based line/col), when the source was parsed with spans.
    pub span: Option<Span>,
    /// What this place contributes to the finding.
    pub message: String,
}

/// One finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code (`QV017`, `WF001`, `SQ003`, …). Codes are append-only:
    /// meanings never change across releases, so CI configs can allow-list
    /// them.
    pub code: &'static str,
    /// Error / warning / info.
    pub severity: Severity,
    /// One-line human message.
    pub message: String,
    /// The primary source position, when known.
    pub span: Option<Span>,
    /// Secondary labels (other places involved in the finding).
    pub labels: Vec<Label>,
    /// A fix suggestion.
    pub help: Option<String>,
    /// A structured fix, when the repair is mechanical.
    pub suggestion: Option<Suggestion>,
}

impl Diagnostic {
    fn new(code: &'static str, severity: Severity, message: impl Into<String>) -> Self {
        debug_assert!(codes::describe(code).is_some(), "unregistered diagnostic code {code}");
        Diagnostic {
            code,
            severity,
            message: message.into(),
            span: None,
            labels: Vec::new(),
            help: None,
            suggestion: None,
        }
    }

    /// An error-severity diagnostic.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Error, message)
    }

    /// A warning-severity diagnostic.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Warning, message)
    }

    /// An info-severity diagnostic.
    pub fn info(code: &'static str, message: impl Into<String>) -> Self {
        Self::new(code, Severity::Info, message)
    }

    /// Sets the primary span (no-op on `None`, so span plumbing stays
    /// optional end to end).
    pub fn at(mut self, span: Option<Span>) -> Self {
        self.span = span;
        self
    }

    /// Adds a secondary label.
    pub fn label(mut self, span: Option<Span>, message: impl Into<String>) -> Self {
        self.labels.push(Label { span, message: message.into() });
        self
    }

    /// Attaches a fix suggestion.
    pub fn help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Attaches a structured fix.
    pub fn suggest(
        mut self,
        message: impl Into<String>,
        span: Span,
        replacement: impl Into<String>,
        applicability: Applicability,
    ) -> Self {
        self.suggestion = Some(Suggestion {
            message: message.into(),
            span,
            replacement: replacement.into(),
            applicability,
        });
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(span) = self.span {
            write!(f, " (at {span})")?;
        }
        Ok(())
    }
}

/// True when any diagnostic is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Orders diagnostics for stable presentation: by source position
/// (spanless findings last), then code, then severity. Keying on the
/// code before the severity keeps `qv check --format json` byte-stable
/// across runs and analyzer-pass reorderings.
pub fn sort_diagnostics(diags: &mut [Diagnostic]) {
    diags.sort_by_key(|d| {
        let (line, col) = match d.span {
            Some(s) => (s.line, s.col),
            None => (u32::MAX, u32::MAX),
        };
        (line, col, d.code, d.severity, d.message.clone())
    });
}

/// "3 errors, 1 warning" — for the renderer footer and CLI exit message.
pub fn summary(diags: &[Diagnostic]) -> String {
    let count = |s: Severity| diags.iter().filter(|d| d.severity == s).count();
    let (e, w, i) = (count(Severity::Error), count(Severity::Warning), count(Severity::Info));
    let mut parts = Vec::new();
    let plural = |n: usize, word: &str| format!("{n} {word}{}", if n == 1 { "" } else { "s" });
    if e > 0 {
        parts.push(plural(e, "error"));
    }
    if w > 0 {
        parts.push(plural(w, "warning"));
    }
    if i > 0 {
        parts.push(plural(i, "hint"));
    }
    if parts.is_empty() {
        "no findings".to_string()
    } else {
        parts.join(", ")
    }
}

/// Records lint-run telemetry: one `lint.pass.duration_us` histogram
/// sample, a `lint.pass.runs{pass=…}` counter tick, and one
/// `lint.diagnostics{code=…}` tick per finding.
pub fn record_pass_telemetry(pass: &str, duration: std::time::Duration, diags: &[Diagnostic]) {
    let metrics = qurator_telemetry::metrics();
    metrics.histogram("lint.pass.duration_us").record(duration.as_micros() as u64);
    metrics.counter_with("lint.pass.runs", &[("pass", pass)]).add(1);
    for d in diags {
        metrics.counter_with("lint.diagnostics", &[("code", d.code)]).add(1);
    }
}

/// The stable diagnostic-code registry.
pub mod codes {
    /// All codes with their one-line descriptions, in code order. The
    /// table is the source of truth for DESIGN.md §7 and the JSON
    /// renderer's `description` field.
    pub const ALL: &[(&str, &str)] = &[
        ("QV001", "quality view has an empty name"),
        ("QV002", "view declares no actions"),
        ("QV003", "repository declared both persistent and non-persistent"),
        ("QV004", "annotator service type is unknown or not an AnnotationFunction"),
        ("QV005", "assertion service type is unknown or not a QualityAssertion"),
        ("QV006", "variable references an unknown or non-evidence concept"),
        ("QV007", "bound annotation service does not provide the declared evidence"),
        ("QV008", "annotator declares a tag reference"),
        ("QV009", "no service registered or bound for the concept"),
        ("QV010", "duplicate quality-assertion tag name"),
        ("QV011", "classification QA without a usable tagSemType model"),
        ("QV012", "variable references a tag no earlier assertion produces"),
        ("QV013", "service-expected variable is not bound"),
        ("QV014", "duplicate or reserved action/group name"),
        ("QV015", "condition syntax error"),
        ("QV016", "condition type error"),
        ("QV017", "evidence provided by an annotator but consumed by no assertion"),
        ("QV018", "evidence consumed but never annotated, from a non-persistent repository"),
        ("QV019", "tag is produced but never read by any action or later assertion"),
        ("QV020", "name shadowing between tags, evidence types or variables"),
        ("QV021", "condition references a label outside the tag's classification model"),
        ("QV022", "condition is unsatisfiable — the action can never accept an item"),
        ("QV023", "splitter group condition subsumed by another group"),
        ("QV024", "evidence fetched from a repository that cannot provide it"),
        (
            "QV025",
            "branch is dead: condition unsatisfiable given the upstream classification domain",
        ),
        (
            "QV026",
            "branch shadowed: condition subsumed by a sibling under the classification domain",
        ),
        ("WF001", "compiled workflow contains a dependency cycle"),
        ("WF002", "workflow node is unreachable from any workflow input"),
        ("WF003", "repository is written but never read within the view"),
        ("WF004", "wide execution wave (parallelism hint)"),
        ("WF005", "view failed to compile into a workflow"),
        ("WF006", "two nodes in the same execution wave write the same evidence to one repository"),
        ("SQ001", "SPARQL syntax error"),
        ("SQ002", "projected variable is not bound by the query pattern"),
        ("SQ003", "query pattern forms a cartesian product"),
        ("SQ004", "unknown namespace prefix"),
    ];

    /// The description of a code, when registered.
    pub fn describe(code: &str) -> Option<&'static str> {
        ALL.iter().find(|(c, _)| *c == code).map(|(_, d)| *d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_display() {
        let d = Diagnostic::error("QV015", "action \"x\": syntax error")
            .at(Some(Span::new(4, 7)))
            .label(Some(Span::new(2, 1)), "declared here")
            .help("check the condition grammar");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.to_string(), "error[QV015]: action \"x\": syntax error (at 4:7)");
        assert_eq!(d.labels.len(), 1);
    }

    #[test]
    fn codes_are_unique_and_described() {
        let mut seen = std::collections::BTreeSet::new();
        for (code, description) in codes::ALL {
            assert!(seen.insert(*code), "duplicate code {code}");
            assert!(!description.is_empty());
        }
        assert!(codes::describe("QV017").is_some());
        assert!(codes::describe("XX999").is_none());
    }

    #[test]
    fn suggestion_builder() {
        let d = Diagnostic::warning("QV025", "group \"dead\" can never match")
            .at(Some(Span::new(8, 3)))
            .suggest(
                "delete the dead group",
                Span::with_extent(8, 3, 120, 64),
                "",
                Applicability::MachineApplicable,
            );
        let s = d.suggestion.as_ref().unwrap();
        assert_eq!(s.applicability, Applicability::MachineApplicable);
        assert_eq!(s.span.byte_range(), Some(120..184));
        assert!(s.replacement.is_empty());
        assert_eq!(Applicability::MaybeIncorrect.to_string(), "maybe-incorrect");
    }

    #[test]
    fn sorting_keys_on_code_before_severity() {
        // same position: the code decides, not the severity
        let mut diags = vec![
            Diagnostic::error("QV022", "b").at(Some(Span::new(3, 1))),
            Diagnostic::warning("QV019", "a").at(Some(Span::new(3, 1))),
        ];
        sort_diagnostics(&mut diags);
        assert_eq!(diags[0].code, "QV019");
        assert_eq!(diags[1].code, "QV022");
    }

    #[test]
    fn sorting_and_summary() {
        let mut diags = vec![
            Diagnostic::warning("QV019", "b").at(None),
            Diagnostic::error("QV015", "a").at(Some(Span::new(9, 1))),
            Diagnostic::error("QV001", "c").at(Some(Span::new(1, 1))),
        ];
        sort_diagnostics(&mut diags);
        assert_eq!(diags[0].code, "QV001");
        assert_eq!(diags[1].code, "QV015");
        assert_eq!(diags[2].code, "QV019", "spanless findings sort last");
        assert!(has_errors(&diags));
        assert_eq!(summary(&diags), "2 errors, 1 warning");
        assert_eq!(summary(&[]), "no findings");
    }
}
