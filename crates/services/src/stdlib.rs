//! Generic, configurable service implementations — the reusable kernel of
//! the paper's "quality management functionality that is either generic
//! across a range of analysis problems, or … generated automatically from a
//! high-level specification".
//!
//! * [`FieldCaptureAnnotator`] — captures payload fields of a data set as
//!   evidence annotations (the Imprint-output annotator of §5.1 is an
//!   instance: "the evidence is available as part of the Imprint output,
//!   therefore the annotation function simply captures their values");
//! * [`LinearScoreAssertion`] — a weighted linear score over bound
//!   variables;
//! * [`ZScoreAssertion`] — a collection-normalized score: the sum of
//!   per-variable z-scores (a faithful whole-collection decision model,
//!   standing in for the Stead et al. universal PI score);
//! * [`StatClassifierAssertion`] — the §5.1 three-way classifier: labels
//!   from `avg ± k·stddev` thresholds over a score variable;
//! * [`FixedThresholdClassifier`] — the per-item ablation variant with
//!   static thresholds;
//! * [`DelayedAnnotator`] — wraps any annotation service with synthetic
//!   latency (models remote sources such as journal impact-factor tables;
//!   used by the E1 cache ablation).

use crate::message::DataSet;
use crate::service::{AnnotationService, AssertionService, VariableBindings};
use crate::{Result, ServiceError};
use qurator_annotations::{AnnotationMap, AnnotationRepository, EvidenceValue};
use qurator_rdf::term::{Iri, Term};
use std::sync::Arc;
use std::time::Duration;

/// Captures payload fields as evidence annotations.
pub struct FieldCaptureAnnotator {
    service_type: Iri,
    /// `(payload field, evidence type)` pairs.
    captures: Vec<(String, Iri)>,
}

impl FieldCaptureAnnotator {
    /// Builds a capture annotator.
    pub fn new(service_type: Iri, captures: &[(&str, Iri)]) -> Self {
        FieldCaptureAnnotator {
            service_type,
            captures: captures.iter().map(|(f, e)| (f.to_string(), e.clone())).collect(),
        }
    }
}

impl AnnotationService for FieldCaptureAnnotator {
    fn service_type(&self) -> Iri {
        self.service_type.clone()
    }

    fn provides(&self) -> Vec<Iri> {
        self.captures.iter().map(|(_, e)| e.clone()).collect()
    }

    fn annotate(&self, data: &DataSet, repository: &AnnotationRepository) -> Result<usize> {
        let mut written = 0;
        for item in data.items() {
            for (field, evidence_type) in &self.captures {
                let value = data.field(item, field);
                if !value.is_null() {
                    repository.annotate(item, evidence_type, value)?;
                    written += 1;
                }
            }
        }
        Ok(written)
    }
}

/// Per-item numeric resolution of a variable, with null tracking.
fn numeric(
    bindings: &VariableBindings,
    map: &AnnotationMap,
    item: &Term,
    variable: &str,
) -> Option<f64> {
    bindings.value(map, item, variable).as_number()
}

/// A weighted linear score: `tag = bias + Σ wᵢ · varᵢ`; items with any
/// missing variable get a `Null` tag.
pub struct LinearScoreAssertion {
    service_type: Iri,
    weights: Vec<(String, f64)>,
    bias: f64,
}

impl LinearScoreAssertion {
    /// Builds a linear score assertion.
    pub fn new(service_type: Iri, weights: &[(&str, f64)], bias: f64) -> Self {
        LinearScoreAssertion {
            service_type,
            weights: weights.iter().map(|(v, w)| (v.to_string(), *w)).collect(),
            bias,
        }
    }
}

impl AssertionService for LinearScoreAssertion {
    fn service_type(&self) -> Iri {
        self.service_type.clone()
    }

    fn expected_variables(&self) -> Vec<String> {
        self.weights.iter().map(|(v, _)| v.clone()).collect()
    }

    fn assert_quality(
        &self,
        map: &mut AnnotationMap,
        bindings: &VariableBindings,
        tag: &str,
    ) -> Result<()> {
        let items: Vec<Term> = map.items().to_vec();
        for item in items {
            let mut total = self.bias;
            let mut complete = true;
            for (variable, weight) in &self.weights {
                match numeric(bindings, map, &item, variable) {
                    Some(v) => total += weight * v,
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            let value = if complete { EvidenceValue::Number(total) } else { EvidenceValue::Null };
            map.set_tag(&item, tag, value);
        }
        Ok(())
    }
}

/// A collection-normalized score: `tag = Σᵢ (varᵢ − meanᵢ) / stddevᵢ`,
/// where the statistics are computed over the *whole input collection*
/// (paper §2: "QAs are computed on a whole collection of data items,
/// rather than on individual items").
pub struct ZScoreAssertion {
    service_type: Iri,
    variables: Vec<String>,
}

impl ZScoreAssertion {
    /// Builds a z-score assertion over the given variables.
    pub fn new(service_type: Iri, variables: &[&str]) -> Self {
        ZScoreAssertion {
            service_type,
            variables: variables.iter().map(|s| s.to_string()).collect(),
        }
    }
}

impl AssertionService for ZScoreAssertion {
    fn service_type(&self) -> Iri {
        self.service_type.clone()
    }

    fn expected_variables(&self) -> Vec<String> {
        self.variables.clone()
    }

    fn assert_quality(
        &self,
        map: &mut AnnotationMap,
        bindings: &VariableBindings,
        tag: &str,
    ) -> Result<()> {
        let items: Vec<Term> = map.items().to_vec();
        // collection statistics per variable
        let mut stats = Vec::with_capacity(self.variables.len());
        for variable in &self.variables {
            let values: Vec<f64> =
                items.iter().filter_map(|item| numeric(bindings, map, item, variable)).collect();
            let (mean, sd, _) =
                qurator_annotations::map::numeric_stats(&values).unwrap_or((0.0, 0.0, 0));
            stats.push((mean, sd));
        }
        for item in items {
            let mut total = 0.0;
            let mut complete = !self.variables.is_empty();
            for (variable, (mean, sd)) in self.variables.iter().zip(&stats) {
                match numeric(bindings, map, &item, variable) {
                    Some(v) => {
                        // constant columns contribute 0 rather than NaN
                        if *sd > 0.0 {
                            total += (v - mean) / sd;
                        }
                    }
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            let value = if complete { EvidenceValue::Number(total) } else { EvidenceValue::Null };
            map.set_tag(&item, tag, value);
        }
        Ok(())
    }
}

/// The §5.1 statistical classifier: partitions a numeric variable into
/// enumerated labels using `avg ± k·stddev` thresholds computed over the
/// collection ("the thresholds used for classification are (avg − stddev)
/// and (avg + stddev)", footnote 19).
pub struct StatClassifierAssertion {
    service_type: Iri,
    variable: String,
    classification_model: Iri,
    /// Ordered labels: below, between, above.
    labels: (Iri, Iri, Iri),
    k: f64,
}

impl StatClassifierAssertion {
    /// Builds the classifier with `k = 1` (the paper's thresholds).
    pub fn new(
        service_type: Iri,
        variable: &str,
        classification_model: Iri,
        labels: (Iri, Iri, Iri),
    ) -> Self {
        StatClassifierAssertion {
            service_type,
            variable: variable.to_string(),
            classification_model,
            labels,
            k: 1.0,
        }
    }

    /// Adjusts the threshold width (ablation E2 sweeps this).
    pub fn with_k(mut self, k: f64) -> Self {
        self.k = k;
        self
    }
}

impl AssertionService for StatClassifierAssertion {
    fn service_type(&self) -> Iri {
        self.service_type.clone()
    }

    fn expected_variables(&self) -> Vec<String> {
        vec![self.variable.clone()]
    }

    fn classification_model(&self) -> Option<Iri> {
        Some(self.classification_model.clone())
    }

    fn assert_quality(
        &self,
        map: &mut AnnotationMap,
        bindings: &VariableBindings,
        tag: &str,
    ) -> Result<()> {
        let items: Vec<Term> = map.items().to_vec();
        let values: Vec<f64> =
            items.iter().filter_map(|item| numeric(bindings, map, item, &self.variable)).collect();
        let Some((mean, sd, _)) = qurator_annotations::map::numeric_stats(&values) else {
            // nothing numeric: every tag is null
            for item in items {
                map.set_tag(&item, tag, EvidenceValue::Null);
            }
            return Ok(());
        };
        let low_threshold = mean - self.k * sd;
        let high_threshold = mean + self.k * sd;
        for item in items {
            let value = match numeric(bindings, map, &item, &self.variable) {
                None => EvidenceValue::Null,
                Some(v) if v < low_threshold => EvidenceValue::Class(self.labels.0.clone()),
                Some(v) if v > high_threshold => EvidenceValue::Class(self.labels.2.clone()),
                Some(_) => EvidenceValue::Class(self.labels.1.clone()),
            };
            map.set_tag(&item, tag, value);
        }
        Ok(())
    }
}

/// A per-item classifier with fixed thresholds — the ablation contrast to
/// [`StatClassifierAssertion`] (DESIGN.md: per-item vs collection-statistics
/// classification).
pub struct FixedThresholdClassifier {
    service_type: Iri,
    variable: String,
    classification_model: Iri,
    labels: (Iri, Iri, Iri),
    low_threshold: f64,
    high_threshold: f64,
}

impl FixedThresholdClassifier {
    /// Builds the classifier; requires `low <= high`.
    pub fn new(
        service_type: Iri,
        variable: &str,
        classification_model: Iri,
        labels: (Iri, Iri, Iri),
        low_threshold: f64,
        high_threshold: f64,
    ) -> Result<Self> {
        if low_threshold > high_threshold {
            return Err(ServiceError::BadRequest(format!(
                "low threshold {low_threshold} exceeds high threshold {high_threshold}"
            )));
        }
        Ok(FixedThresholdClassifier {
            service_type,
            variable: variable.to_string(),
            classification_model,
            labels,
            low_threshold,
            high_threshold,
        })
    }
}

impl AssertionService for FixedThresholdClassifier {
    fn service_type(&self) -> Iri {
        self.service_type.clone()
    }

    fn expected_variables(&self) -> Vec<String> {
        vec![self.variable.clone()]
    }

    fn classification_model(&self) -> Option<Iri> {
        Some(self.classification_model.clone())
    }

    fn assert_quality(
        &self,
        map: &mut AnnotationMap,
        bindings: &VariableBindings,
        tag: &str,
    ) -> Result<()> {
        let items: Vec<Term> = map.items().to_vec();
        for item in items {
            let value = match numeric(bindings, map, &item, &self.variable) {
                None => EvidenceValue::Null,
                Some(v) if v < self.low_threshold => EvidenceValue::Class(self.labels.0.clone()),
                Some(v) if v > self.high_threshold => EvidenceValue::Class(self.labels.2.clone()),
                Some(_) => EvidenceValue::Class(self.labels.1.clone()),
            };
            map.set_tag(&item, tag, value);
        }
        Ok(())
    }
}

/// Adds synthetic per-item latency to an annotation service (models
/// expensive external sources; the E1 ablation measures how persistent
/// repositories amortize it).
pub struct DelayedAnnotator {
    inner: Arc<dyn AnnotationService>,
    per_item: Duration,
}

impl DelayedAnnotator {
    /// Wraps a service with per-item latency.
    pub fn new(inner: Arc<dyn AnnotationService>, per_item: Duration) -> Self {
        DelayedAnnotator { inner, per_item }
    }
}

impl AnnotationService for DelayedAnnotator {
    fn service_type(&self) -> Iri {
        self.inner.service_type()
    }

    fn provides(&self) -> Vec<Iri> {
        self.inner.provides()
    }

    fn annotate(&self, data: &DataSet, repository: &AnnotationRepository) -> Result<usize> {
        std::thread::sleep(self.per_item * data.items().len() as u32);
        self.inner.annotate(data, repository)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_ontology::IqModel;
    use qurator_rdf::namespace::q;

    fn item(n: u32) -> Term {
        Term::iri(format!("urn:lsid:t:h:{n}"))
    }

    fn repo() -> AnnotationRepository {
        AnnotationRepository::new(
            "cache",
            false,
            Arc::new(IqModel::with_proteomics_extension().unwrap()),
        )
    }

    fn bindings() -> VariableBindings {
        VariableBindings::new()
            .bind_evidence("hr", q::iri("HitRatio"))
            .bind_evidence("mc", q::iri("MassCoverage"))
    }

    fn sample_map(values: &[(u32, f64, f64)]) -> AnnotationMap {
        let mut map = AnnotationMap::new();
        for (i, hr, mc) in values {
            map.set_evidence(&item(*i), q::iri("HitRatio"), (*hr).into());
            map.set_evidence(&item(*i), q::iri("MassCoverage"), (*mc).into());
        }
        map
    }

    #[test]
    fn field_capture_annotator_mirrors_imprint_output() {
        let annotator = FieldCaptureAnnotator::new(
            q::iri("ImprintOutputAnnotation"),
            &[("hitRatio", q::iri("HitRatio")), ("massCoverage", q::iri("MassCoverage"))],
        );
        let mut data = DataSet::new();
        data.push(item(1), [("hitRatio", 0.8.into()), ("massCoverage", 30.0.into())]);
        data.push(item(2), [("hitRatio", 0.2.into())]); // no MC
        let r = repo();
        let written = annotator.annotate(&data, &r).unwrap();
        assert_eq!(written, 3);
        assert_eq!(
            r.lookup(&item(1), &q::iri("MassCoverage")).unwrap(),
            EvidenceValue::Number(30.0)
        );
        assert_eq!(r.lookup(&item(2), &q::iri("MassCoverage")).unwrap(), EvidenceValue::Null);
        assert_eq!(annotator.provides().len(), 2);
    }

    #[test]
    fn linear_score() {
        let qa = LinearScoreAssertion::new(
            q::iri("UniversalPIScore"),
            &[("hr", 100.0), ("mc", 1.0)],
            0.0,
        );
        let mut map = sample_map(&[(1, 0.9, 40.0), (2, 0.5, 25.0)]);
        qa.assert_quality(&mut map, &bindings(), "HR_MC").unwrap();
        assert_eq!(map.item(&item(1)).unwrap().tag("HR_MC"), EvidenceValue::Number(130.0));
        assert_eq!(map.item(&item(2)).unwrap().tag("HR_MC"), EvidenceValue::Number(75.0));
    }

    #[test]
    fn linear_score_null_on_missing_variable() {
        let qa = LinearScoreAssertion::new(q::iri("S"), &[("hr", 1.0), ("mc", 1.0)], 0.0);
        let mut map = AnnotationMap::new();
        map.set_evidence(&item(1), q::iri("HitRatio"), 0.5.into()); // no MC
        qa.assert_quality(&mut map, &bindings(), "s").unwrap();
        assert_eq!(map.item(&item(1)).unwrap().tag("s"), EvidenceValue::Null);
    }

    #[test]
    fn zscore_is_collection_relative() {
        let qa = ZScoreAssertion::new(q::iri("UniversalPIScore2"), &["hr", "mc"]);
        let mut map = sample_map(&[(1, 0.2, 10.0), (2, 0.5, 20.0), (3, 0.8, 30.0)]);
        qa.assert_quality(&mut map, &bindings(), "z").unwrap();
        let z1 = map.item(&item(1)).unwrap().tag("z").as_number().unwrap();
        let z2 = map.item(&item(2)).unwrap().tag("z").as_number().unwrap();
        let z3 = map.item(&item(3)).unwrap().tag("z").as_number().unwrap();
        assert!(z1 < z2 && z2 < z3);
        assert!((z2).abs() < 1e-9, "middle item sits at the mean");
        assert!((z1 + z3).abs() < 1e-9, "symmetric collection");
    }

    #[test]
    fn zscore_handles_constant_columns() {
        let qa = ZScoreAssertion::new(q::iri("Z"), &["hr"]);
        let mut map = sample_map(&[(1, 0.5, 0.0), (2, 0.5, 0.0)]);
        qa.assert_quality(&mut map, &bindings(), "z").unwrap();
        assert_eq!(map.item(&item(1)).unwrap().tag("z"), EvidenceValue::Number(0.0));
    }

    #[test]
    fn stat_classifier_uses_avg_stddev_thresholds() {
        // values 0,0,0,0,10 -> mean 2, sd 4: only the 10 exceeds mean+sd
        let qa = StatClassifierAssertion::new(
            q::iri("PIScoreClassifier"),
            "hr",
            q::iri("PIScoreClassification"),
            (q::iri("low"), q::iri("mid"), q::iri("high")),
        );
        let mut map = sample_map(&[
            (1, 0.0, 0.0),
            (2, 0.0, 0.0),
            (3, 0.0, 0.0),
            (4, 0.0, 0.0),
            (5, 10.0, 0.0),
        ]);
        qa.assert_quality(&mut map, &bindings(), "cls").unwrap();
        assert_eq!(map.item(&item(5)).unwrap().tag("cls"), EvidenceValue::Class(q::iri("high")));
        for i in 1..=4 {
            assert_eq!(
                map.item(&item(i)).unwrap().tag("cls"),
                EvidenceValue::Class(q::iri("mid")),
                "item {i}"
            );
        }
        assert_eq!(qa.classification_model(), Some(q::iri("PIScoreClassification")));
    }

    #[test]
    fn stat_classifier_k_widens_mid_band() {
        let values: Vec<(u32, f64, f64)> = (1..=10).map(|i| (i, i as f64, 0.0)).collect();
        let mk = |k: f64| {
            StatClassifierAssertion::new(
                q::iri("C"),
                "hr",
                q::iri("PIScoreClassification"),
                (q::iri("low"), q::iri("mid"), q::iri("high")),
            )
            .with_k(k)
        };
        let count_mid = |k: f64| {
            let mut map = sample_map(&values);
            mk(k).assert_quality(&mut map, &bindings(), "cls").unwrap();
            map.items()
                .iter()
                .filter(|i| map.item(i).unwrap().tag("cls") == EvidenceValue::Class(q::iri("mid")))
                .count()
        };
        assert!(count_mid(0.5) < count_mid(1.5));
    }

    #[test]
    fn stat_classifier_all_null_input() {
        let qa = StatClassifierAssertion::new(
            q::iri("C"),
            "ghost",
            q::iri("PIScoreClassification"),
            (q::iri("low"), q::iri("mid"), q::iri("high")),
        );
        let mut map = sample_map(&[(1, 0.1, 1.0)]);
        qa.assert_quality(&mut map, &bindings(), "cls").unwrap();
        assert_eq!(map.item(&item(1)).unwrap().tag("cls"), EvidenceValue::Null);
    }

    #[test]
    fn fixed_threshold_classifier() {
        let qa = FixedThresholdClassifier::new(
            q::iri("C"),
            "hr",
            q::iri("PIScoreClassification"),
            (q::iri("low"), q::iri("mid"), q::iri("high")),
            0.3,
            0.7,
        )
        .unwrap();
        let mut map = sample_map(&[(1, 0.1, 0.0), (2, 0.5, 0.0), (3, 0.9, 0.0)]);
        qa.assert_quality(&mut map, &bindings(), "cls").unwrap();
        let cls = |i: u32| map.item(&item(i)).unwrap().tag("cls");
        assert_eq!(cls(1), EvidenceValue::Class(q::iri("low")));
        assert_eq!(cls(2), EvidenceValue::Class(q::iri("mid")));
        assert_eq!(cls(3), EvidenceValue::Class(q::iri("high")));
        // inverted thresholds are rejected
        assert!(FixedThresholdClassifier::new(
            q::iri("C"),
            "hr",
            q::iri("M"),
            (q::iri("l"), q::iri("m"), q::iri("h")),
            0.7,
            0.3
        )
        .is_err());
    }

    #[test]
    fn delayed_annotator_delegates() {
        let inner = Arc::new(FieldCaptureAnnotator::new(
            q::iri("ImprintOutputAnnotation"),
            &[("hitRatio", q::iri("HitRatio"))],
        ));
        let delayed = DelayedAnnotator::new(inner, Duration::from_millis(1));
        let mut data = DataSet::new();
        data.push(item(1), [("hitRatio", 0.5.into())]);
        let r = repo();
        let started = std::time::Instant::now();
        assert_eq!(delayed.annotate(&data, &r).unwrap(), 1);
        assert!(started.elapsed() >= Duration::from_millis(1));
        assert_eq!(delayed.service_type(), q::iri("ImprintOutputAnnotation"));
    }
}
