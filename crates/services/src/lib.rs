//! # qurator-services
//!
//! The service layer of the Qurator framework (reproduction of *Quality
//! Views*, VLDB 2006, §5): the user-extensible collection of annotation and
//! quality-assertion services, their common interface, and the registry
//! they are recorded in.
//!
//! The paper deploys these as Web services that "all … export the same WSDL
//! interface, using a common XML schema for the input and output messages —
//! effectively a concrete model for the data sets, evidence types and
//! annotation maps". Here the transport is in-process; the common contract
//! survives as two traits over a shared message model:
//!
//! * [`message::DataSet`] — a collection of LSID-identified data items,
//!   each with named payload fields (the concrete data-set model);
//! * [`service::AnnotationService`] — computes evidence for a data set and
//!   writes it into an annotation repository (the Annotation operator's
//!   backend; data-specific, few reuse opportunities, §4.1);
//! * [`service::AssertionService`] — a whole-collection decision model that
//!   augments an annotation map with score/class tags (the QA operator's
//!   backend; reusable across data sets sharing evidence types);
//! * [`registry::ServiceRegistry`] — maps IQ concepts to implementations
//!   (the paper's service registry + Taverna's "scavenger" discovery);
//! * [`stdlib`] — generic, configurable service implementations: field
//!   capture, linear scores, z-scores, and the avg±stddev statistical
//!   classifier from §5.1;
//! * [`learning`] — the paper's future-work item (ii): decision models
//!   (stumps, logistic regression) trained from labelled examples and
//!   deployed as ordinary assertion services.

pub mod learning;
pub mod message;
pub mod registry;
pub mod service;
pub mod stdlib;

pub use message::DataSet;
pub use registry::ServiceRegistry;
pub use service::{AnnotationService, AssertionService, VariableBindings};

/// Errors from the service layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// No service is registered for the requested concept.
    NotRegistered(String),
    /// A registration conflicts with an existing one.
    Duplicate(String),
    /// The request is malformed (missing variables, wrong evidence types).
    BadRequest(String),
    /// The service failed internally.
    Internal(String),
    /// Propagated annotation-layer failure.
    Annotation(qurator_annotations::AnnotationError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::NotRegistered(m) => write!(f, "no service registered for {m}"),
            ServiceError::Duplicate(m) => write!(f, "service already registered for {m}"),
            ServiceError::BadRequest(m) => write!(f, "bad service request: {m}"),
            ServiceError::Internal(m) => write!(f, "service failure: {m}"),
            ServiceError::Annotation(e) => write!(f, "annotation failure: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<qurator_annotations::AnnotationError> for ServiceError {
    fn from(e: qurator_annotations::AnnotationError) -> Self {
        ServiceError::Annotation(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServiceError>;
