//! The common message model: data sets with named payload fields.

use qurator_annotations::EvidenceValue;
use qurator_rdf::term::Term;
use std::collections::BTreeMap;

/// A collection of identified data items, each carrying named payload
/// fields. This is the concrete data-set model of the common service
/// schema: e.g. each Imprint hit entry arrives as an item whose fields are
/// `hitRatio`, `massCoverage`, `rank`, …
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DataSet {
    order: Vec<Term>,
    payloads: BTreeMap<Term, BTreeMap<String, EvidenceValue>>,
}

impl DataSet {
    /// An empty data set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a data set from bare items (no payloads).
    pub fn from_items(items: impl IntoIterator<Item = Term>) -> Self {
        let mut ds = Self::new();
        for item in items {
            ds.push(item, [] as [(String, EvidenceValue); 0]);
        }
        ds
    }

    /// Appends an item with payload fields. Re-pushing an existing item
    /// merges the fields (latest wins).
    pub fn push<I, K>(&mut self, item: Term, fields: I)
    where
        I: IntoIterator<Item = (K, EvidenceValue)>,
        K: Into<String>,
    {
        if !self.payloads.contains_key(&item) {
            self.order.push(item.clone());
            self.payloads.insert(item.clone(), BTreeMap::new());
        }
        let slot = self.payloads.get_mut(&item).expect("ensured");
        for (k, v) in fields {
            slot.insert(k.into(), v);
        }
    }

    /// The items in insertion order.
    pub fn items(&self) -> &[Term] {
        &self.order
    }

    /// A payload field of one item.
    pub fn field(&self, item: &Term, field: &str) -> EvidenceValue {
        self.payloads.get(item).and_then(|m| m.get(field)).cloned().unwrap_or(EvidenceValue::Null)
    }

    /// All fields of one item.
    pub fn fields(&self, item: &Term) -> impl Iterator<Item = (&str, &EvidenceValue)> {
        self.payloads.get(item).into_iter().flat_map(|m| m.iter().map(|(k, v)| (k.as_str(), v)))
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Keeps only the given items, preserving this set's order.
    pub fn restrict(&self, keep: &[Term]) -> DataSet {
        let mut out = DataSet::new();
        for item in &self.order {
            if keep.contains(item) {
                out.order.push(item.clone());
                out.payloads.insert(item.clone(), self.payloads[item].clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(n: u32) -> Term {
        Term::iri(format!("urn:lsid:t:h:{n}"))
    }

    #[test]
    fn push_and_merge_fields() {
        let mut ds = DataSet::new();
        ds.push(item(1), [("hitRatio", EvidenceValue::from(0.8))]);
        ds.push(item(1), [("massCoverage", EvidenceValue::from(30.0))]);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.field(&item(1), "hitRatio"), EvidenceValue::Number(0.8));
        assert_eq!(ds.field(&item(1), "massCoverage"), EvidenceValue::Number(30.0));
        assert_eq!(ds.field(&item(1), "absent"), EvidenceValue::Null);
        assert_eq!(ds.fields(&item(1)).count(), 2);
    }

    #[test]
    fn order_and_restrict() {
        let mut ds = DataSet::new();
        for i in [3u32, 1, 2] {
            ds.push(item(i), [("v", EvidenceValue::from(i as f64))]);
        }
        assert_eq!(ds.items(), &[item(3), item(1), item(2)]);
        let sub = ds.restrict(&[item(2), item(3)]);
        assert_eq!(sub.items(), &[item(3), item(2)], "source order wins");
        assert_eq!(sub.field(&item(2), "v"), EvidenceValue::Number(2.0));
    }

    #[test]
    fn from_items_has_empty_payloads() {
        let ds = DataSet::from_items([item(1), item(2)]);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.fields(&item(1)).count(), 0);
    }
}
