//! The service registry: IQ concept → implementation.
//!
//! Mirrors the paper's registry of "quality annotation functions and QA
//! functions, which are implemented as Web services" plus Taverna's
//! scavenger process that discovers deployed services.

use crate::service::{AnnotationService, AssertionService};
use crate::{Result, ServiceError};
use parking_lot::RwLock;
use qurator_rdf::term::Iri;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A thread-safe registry of annotation and assertion services keyed by
/// the IQ concept they implement.
#[derive(Default)]
pub struct ServiceRegistry {
    annotators: RwLock<BTreeMap<Iri, Arc<dyn AnnotationService>>>,
    assertions: RwLock<BTreeMap<Iri, Arc<dyn AssertionService>>>,
}

impl ServiceRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an annotation service under its declared concept.
    pub fn register_annotator(&self, service: Arc<dyn AnnotationService>) -> Result<()> {
        let concept = service.service_type();
        let mut annotators = self.annotators.write();
        if annotators.contains_key(&concept) {
            return Err(ServiceError::Duplicate(format!("<{concept}>")));
        }
        annotators.insert(concept, service);
        Ok(())
    }

    /// Registers an assertion service under its declared concept.
    pub fn register_assertion(&self, service: Arc<dyn AssertionService>) -> Result<()> {
        let concept = service.service_type();
        let mut assertions = self.assertions.write();
        if assertions.contains_key(&concept) {
            return Err(ServiceError::Duplicate(format!("<{concept}>")));
        }
        assertions.insert(concept, service);
        Ok(())
    }

    /// Replaces (or installs) an annotation service.
    pub fn replace_annotator(&self, service: Arc<dyn AnnotationService>) {
        self.annotators.write().insert(service.service_type(), service);
    }

    /// Looks up the annotation service for a concept.
    pub fn annotator(&self, concept: &Iri) -> Result<Arc<dyn AnnotationService>> {
        self.annotators
            .read()
            .get(concept)
            .cloned()
            .ok_or_else(|| ServiceError::NotRegistered(format!("annotator <{concept}>")))
    }

    /// Looks up the assertion service for a concept.
    pub fn assertion(&self, concept: &Iri) -> Result<Arc<dyn AssertionService>> {
        self.assertions
            .read()
            .get(concept)
            .cloned()
            .ok_or_else(|| ServiceError::NotRegistered(format!("assertion <{concept}>")))
    }

    /// All registered annotator concepts (the scavenger listing).
    pub fn annotator_concepts(&self) -> Vec<Iri> {
        self.annotators.read().keys().cloned().collect()
    }

    /// All registered assertion concepts.
    pub fn assertion_concepts(&self) -> Vec<Iri> {
        self.assertions.read().keys().cloned().collect()
    }
}

impl std::fmt::Debug for ServiceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceRegistry")
            .field("annotators", &self.annotator_concepts())
            .field("assertions", &self.assertion_concepts())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::DataSet;
    use crate::service::VariableBindings;
    use qurator_annotations::{AnnotationMap, AnnotationRepository};
    use qurator_rdf::namespace::q;

    struct NullAnnotator;
    impl AnnotationService for NullAnnotator {
        fn service_type(&self) -> Iri {
            q::iri("NullAnnotation")
        }
        fn provides(&self) -> Vec<Iri> {
            vec![]
        }
        fn annotate(&self, _: &DataSet, _: &AnnotationRepository) -> Result<usize> {
            Ok(0)
        }
    }

    struct NullAssertion;
    impl AssertionService for NullAssertion {
        fn service_type(&self) -> Iri {
            q::iri("NullAssertion")
        }
        fn expected_variables(&self) -> Vec<String> {
            vec![]
        }
        fn assert_quality(
            &self,
            _: &mut AnnotationMap,
            _: &VariableBindings,
            _: &str,
        ) -> Result<()> {
            Ok(())
        }
    }

    #[test]
    fn register_and_lookup() {
        let reg = ServiceRegistry::new();
        reg.register_annotator(Arc::new(NullAnnotator)).unwrap();
        reg.register_assertion(Arc::new(NullAssertion)).unwrap();
        assert!(reg.annotator(&q::iri("NullAnnotation")).is_ok());
        assert!(reg.assertion(&q::iri("NullAssertion")).is_ok());
        assert!(matches!(reg.annotator(&q::iri("Missing")), Err(ServiceError::NotRegistered(_))));
        assert_eq!(reg.annotator_concepts().len(), 1);
        assert_eq!(reg.assertion_concepts().len(), 1);
    }

    #[test]
    fn duplicates_rejected_replace_allowed() {
        let reg = ServiceRegistry::new();
        reg.register_annotator(Arc::new(NullAnnotator)).unwrap();
        assert!(matches!(
            reg.register_annotator(Arc::new(NullAnnotator)),
            Err(ServiceError::Duplicate(_))
        ));
        reg.replace_annotator(Arc::new(NullAnnotator));
        assert_eq!(reg.annotator_concepts().len(), 1);
    }
}
