//! The common service interface (the paper's shared WSDL contract).

use crate::message::DataSet;
use crate::Result;
use qurator_annotations::{AnnotationMap, AnnotationRepository};
use qurator_rdf::term::Iri;
use std::collections::BTreeMap;

/// Variable bindings for an assertion invocation: the service's expected
/// variable names mapped to sources in the annotation map.
///
/// QV declarations bind variables either to evidence types
/// (`<var variableName="coverage" evidence="q:coverage"/>`) or to tags
/// produced by earlier QAs in the same view.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VariableBindings {
    bindings: BTreeMap<String, VariableSource>,
}

/// Where a variable's per-item value comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum VariableSource {
    /// An evidence column of the annotation map.
    Evidence(Iri),
    /// A tag column written by an earlier QA.
    Tag(String),
}

impl VariableBindings {
    /// Empty bindings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a variable to an evidence type.
    pub fn bind_evidence(mut self, variable: impl Into<String>, evidence: Iri) -> Self {
        self.bindings.insert(variable.into(), VariableSource::Evidence(evidence));
        self
    }

    /// Binds a variable to a tag.
    pub fn bind_tag(mut self, variable: impl Into<String>, tag: impl Into<String>) -> Self {
        self.bindings.insert(variable.into(), VariableSource::Tag(tag.into()));
        self
    }

    /// The source of a variable.
    pub fn source(&self, variable: &str) -> Option<&VariableSource> {
        self.bindings.get(variable)
    }

    /// All bound variable names.
    pub fn variables(&self) -> impl Iterator<Item = &str> {
        self.bindings.keys().map(String::as_str)
    }

    /// Resolves a variable to its per-item value in the map.
    pub fn value(
        &self,
        map: &AnnotationMap,
        item: &qurator_rdf::term::Term,
        variable: &str,
    ) -> qurator_annotations::EvidenceValue {
        match self.bindings.get(variable) {
            Some(VariableSource::Evidence(e)) => map
                .item(item)
                .map(|row| row.evidence(e))
                .unwrap_or(qurator_annotations::EvidenceValue::Null),
            Some(VariableSource::Tag(t)) => map
                .item(item)
                .map(|row| row.tag(t))
                .unwrap_or(qurator_annotations::EvidenceValue::Null),
            None => qurator_annotations::EvidenceValue::Null,
        }
    }

    /// All evidence types referenced by these bindings (what the Data
    /// Enrichment step must fetch).
    pub fn evidence_types(&self) -> Vec<Iri> {
        self.bindings
            .values()
            .filter_map(|s| match s {
                VariableSource::Evidence(e) => Some(e.clone()),
                VariableSource::Tag(_) => None,
            })
            .collect()
    }
}

/// An annotation service: computes quality-evidence values for a data set
/// and stores them in a repository (the backend of the Annotation
/// operator, §4.1). These are "not only domain-specific, but … also
/// data-specific".
pub trait AnnotationService: Send + Sync {
    /// The `q:AnnotationFunction` subclass this service implements.
    fn service_type(&self) -> Iri;

    /// The evidence types this service can provide values for.
    fn provides(&self) -> Vec<Iri>;

    /// Computes and stores annotations for the data set; returns the number
    /// of annotations written.
    fn annotate(&self, data: &DataSet, repository: &AnnotationRepository) -> Result<usize>;
}

/// A quality-assertion service: a decision model over a *whole collection*
/// that augments the annotation map with a tag (score or class) per item
/// (the backend of the QA operator, §4.1).
pub trait AssertionService: Send + Sync {
    /// The `q:QualityAssertion` subclass this service implements.
    fn service_type(&self) -> Iri;

    /// Variable names the decision model expects to find bound.
    fn expected_variables(&self) -> Vec<String>;

    /// The classification model produced, when the output is categorical
    /// (`tagSemType` in QV declarations).
    fn classification_model(&self) -> Option<Iri> {
        None
    }

    /// Computes the assertion over the collection, writing `tag` values
    /// into the map for every item.
    fn assert_quality(
        &self,
        map: &mut AnnotationMap,
        bindings: &VariableBindings,
        tag: &str,
    ) -> Result<()>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_annotations::EvidenceValue;
    use qurator_rdf::namespace::q;
    use qurator_rdf::term::Term;

    #[test]
    fn bindings_resolve_both_sources() {
        let item = Term::iri("urn:lsid:t:h:1");
        let mut map = AnnotationMap::new();
        map.set_evidence(&item, q::iri("HitRatio"), 0.4.into());
        map.set_tag(&item, "HR_MC", 12.0.into());

        let bindings = VariableBindings::new()
            .bind_evidence("hr", q::iri("HitRatio"))
            .bind_tag("score", "HR_MC");

        assert_eq!(bindings.value(&map, &item, "hr"), EvidenceValue::Number(0.4));
        assert_eq!(bindings.value(&map, &item, "score"), EvidenceValue::Number(12.0));
        assert_eq!(bindings.value(&map, &item, "nope"), EvidenceValue::Null);
        assert_eq!(bindings.evidence_types(), vec![q::iri("HitRatio")]);
        assert_eq!(bindings.variables().count(), 2);
    }

    #[test]
    fn unknown_item_yields_null() {
        let map = AnnotationMap::new();
        let bindings = VariableBindings::new().bind_evidence("hr", q::iri("HitRatio"));
        let ghost = Term::iri("urn:lsid:t:h:ghost");
        assert_eq!(bindings.value(&map, &ghost, "hr"), EvidenceValue::Null);
    }
}
