//! Learned quality functions — the paper's future-work item (ii):
//! "investigating the use of machine learning techniques to derive
//! decision models and quality functions from example data sets".
//!
//! Two interpretable model families are provided, both trainable from
//! labelled examples and deployable as ordinary [`AssertionService`]s:
//!
//! * [`DecisionStump`] — the best single-feature threshold (the shape of
//!   rule a scientist would write by hand, found automatically);
//! * [`LogisticModel`] — ℓ2-regularized logistic regression trained by
//!   batch gradient descent over standardized features.
//!
//! A [`LearnedAssertion`] wraps either model: the produced tag is the
//! model's score (stump margin / logistic probability), so downstream
//! action conditions stay ordinary (`LearnedScore > 0.5`).

use crate::service::{AssertionService, VariableBindings};
use crate::{Result, ServiceError};
use qurator_annotations::{AnnotationMap, EvidenceValue};
use qurator_rdf::term::{Iri, Term};
use std::collections::BTreeMap;

/// One training example: named numeric features plus a boolean quality
/// label (e.g. "was this identification a true protein?").
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledExample {
    pub features: BTreeMap<String, f64>,
    pub label: bool,
}

impl LabelledExample {
    /// Builds an example from `(feature, value)` pairs.
    pub fn new<I: IntoIterator<Item = (&'static str, f64)>>(features: I, label: bool) -> Self {
        LabelledExample {
            features: features.into_iter().map(|(k, v)| (k.to_string(), v)).collect(),
            label,
        }
    }
}

/// A decision model over named features.
pub trait DecisionModel: Send + Sync {
    /// The feature names the model consumes.
    fn features(&self) -> Vec<String>;
    /// A quality score; higher = better. `None` when a feature is missing.
    fn score(&self, features: &BTreeMap<String, f64>) -> Option<f64>;
}

/// The best single-feature threshold rule found on the training set.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionStump {
    /// The chosen feature.
    pub feature: String,
    /// The threshold.
    pub threshold: f64,
    /// True when values above the threshold are positive.
    pub above_is_positive: bool,
    /// Training accuracy achieved.
    pub training_accuracy: f64,
}

impl DecisionStump {
    /// Exhaustively searches all features and candidate thresholds
    /// (midpoints between consecutive distinct values).
    pub fn train(examples: &[LabelledExample]) -> Result<Self> {
        if examples.is_empty() {
            return Err(ServiceError::BadRequest("no training examples".into()));
        }
        let features: Vec<&String> = examples[0].features.keys().collect();
        let n = examples.len() as f64;
        let mut best: Option<DecisionStump> = None;
        for feature in features {
            let mut values: Vec<(f64, bool)> = examples
                .iter()
                .filter_map(|e| e.features.get(feature).map(|v| (*v, e.label)))
                .collect();
            if values.is_empty() {
                continue;
            }
            values.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let mut candidates: Vec<f64> = vec![values[0].0 - 1.0];
            for pair in values.windows(2) {
                if pair[0].0 < pair[1].0 {
                    candidates.push((pair[0].0 + pair[1].0) / 2.0);
                }
            }
            for threshold in candidates {
                for above_is_positive in [true, false] {
                    let correct = examples
                        .iter()
                        .filter(|e| {
                            let Some(v) = e.features.get(feature) else {
                                return false;
                            };
                            let predicted = (*v > threshold) == above_is_positive;
                            predicted == e.label
                        })
                        .count() as f64;
                    let accuracy = correct / n;
                    if best.as_ref().is_none_or(|b| accuracy > b.training_accuracy) {
                        best = Some(DecisionStump {
                            feature: feature.clone(),
                            threshold,
                            above_is_positive,
                            training_accuracy: accuracy,
                        });
                    }
                }
            }
        }
        best.ok_or_else(|| ServiceError::BadRequest("no usable features".into()))
    }
}

impl DecisionModel for DecisionStump {
    fn features(&self) -> Vec<String> {
        vec![self.feature.clone()]
    }

    fn score(&self, features: &BTreeMap<String, f64>) -> Option<f64> {
        let v = *features.get(&self.feature)?;
        let margin = v - self.threshold;
        Some(if self.above_is_positive { margin } else { -margin })
    }
}

/// ℓ2-regularized logistic regression over standardized features.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    feature_names: Vec<String>,
    /// Per-feature (mean, stddev) used for standardization.
    standardization: Vec<(f64, f64)>,
    weights: Vec<f64>,
    bias: f64,
}

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct LogisticConfig {
    pub epochs: usize,
    pub learning_rate: f64,
    pub l2: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        LogisticConfig { epochs: 400, learning_rate: 0.5, l2: 1e-3 }
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticModel {
    /// Trains by batch gradient descent. Examples missing any feature are
    /// skipped.
    pub fn train(examples: &[LabelledExample], config: &LogisticConfig) -> Result<Self> {
        if examples.is_empty() {
            return Err(ServiceError::BadRequest("no training examples".into()));
        }
        let feature_names: Vec<String> = examples[0].features.keys().cloned().collect();
        let rows: Vec<(Vec<f64>, f64)> = examples
            .iter()
            .filter_map(|e| {
                let xs: Option<Vec<f64>> =
                    feature_names.iter().map(|f| e.features.get(f).copied()).collect();
                xs.map(|xs| (xs, if e.label { 1.0 } else { 0.0 }))
            })
            .collect();
        if rows.is_empty() {
            return Err(ServiceError::BadRequest("no example carries all features".into()));
        }
        let n = rows.len() as f64;
        let k = feature_names.len();

        // standardization
        let mut standardization = Vec::with_capacity(k);
        for j in 0..k {
            let mean = rows.iter().map(|(x, _)| x[j]).sum::<f64>() / n;
            let var = rows.iter().map(|(x, _)| (x[j] - mean).powi(2)).sum::<f64>() / n;
            standardization.push((mean, var.sqrt().max(1e-9)));
        }
        let standardized: Vec<(Vec<f64>, f64)> = rows
            .iter()
            .map(|(x, y)| {
                (x.iter().zip(&standardization).map(|(v, (m, s))| (v - m) / s).collect(), *y)
            })
            .collect();

        // batch gradient descent
        let mut weights = vec![0.0; k];
        let mut bias = 0.0;
        for _ in 0..config.epochs {
            let mut grad_w = vec![0.0; k];
            let mut grad_b = 0.0;
            for (x, y) in &standardized {
                let z = bias + x.iter().zip(&weights).map(|(a, w)| a * w).sum::<f64>();
                let error = sigmoid(z) - y;
                for j in 0..k {
                    grad_w[j] += error * x[j];
                }
                grad_b += error;
            }
            for j in 0..k {
                weights[j] -= config.learning_rate * (grad_w[j] / n + config.l2 * weights[j]);
            }
            bias -= config.learning_rate * grad_b / n;
        }
        Ok(LogisticModel { feature_names, standardization, weights, bias })
    }

    /// The positive-class probability.
    pub fn predict_proba(&self, features: &BTreeMap<String, f64>) -> Option<f64> {
        let mut z = self.bias;
        for ((name, (mean, sd)), weight) in
            self.feature_names.iter().zip(&self.standardization).zip(&self.weights)
        {
            let v = *features.get(name)?;
            z += weight * (v - mean) / sd;
        }
        Some(sigmoid(z))
    }

    /// Accuracy over a labelled set (examples missing features count as
    /// errors).
    pub fn accuracy(&self, examples: &[LabelledExample]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let correct = examples
            .iter()
            .filter(|e| {
                self.predict_proba(&e.features).map(|p| (p > 0.5) == e.label).unwrap_or(false)
            })
            .count();
        correct as f64 / examples.len() as f64
    }
}

impl DecisionModel for LogisticModel {
    fn features(&self) -> Vec<String> {
        self.feature_names.clone()
    }

    fn score(&self, features: &BTreeMap<String, f64>) -> Option<f64> {
        self.predict_proba(features)
    }
}

/// Deploys a trained decision model as a quality assertion: the tag value
/// is the model score; items with missing features get `Null`.
pub struct LearnedAssertion {
    service_type: Iri,
    model: Box<dyn DecisionModel>,
}

impl LearnedAssertion {
    /// Wraps a model under an IQ assertion concept.
    pub fn new(service_type: Iri, model: Box<dyn DecisionModel>) -> Self {
        LearnedAssertion { service_type, model }
    }
}

impl AssertionService for LearnedAssertion {
    fn service_type(&self) -> Iri {
        self.service_type.clone()
    }

    fn expected_variables(&self) -> Vec<String> {
        self.model.features()
    }

    fn assert_quality(
        &self,
        map: &mut AnnotationMap,
        bindings: &VariableBindings,
        tag: &str,
    ) -> Result<()> {
        let items: Vec<Term> = map.items().to_vec();
        for item in items {
            let mut features = BTreeMap::new();
            let mut complete = true;
            for feature in self.model.features() {
                match bindings.value(map, &item, &feature).as_number() {
                    Some(v) => {
                        features.insert(feature, v);
                    }
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            let value = if complete {
                self.model
                    .score(&features)
                    .map(EvidenceValue::Number)
                    .unwrap_or(EvidenceValue::Null)
            } else {
                EvidenceValue::Null
            };
            map.set_tag(&item, tag, value);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_rdf::namespace::q;

    /// Linearly separable toy set: label = (hr + mc/100 > 1).
    fn toy_examples(n: usize) -> Vec<LabelledExample> {
        (0..n)
            .map(|i| {
                let hr = (i % 17) as f64 / 16.0;
                let mc = ((i * 7) % 101) as f64;
                LabelledExample::new([("hr", hr), ("mc", mc)], hr + mc / 100.0 > 1.0)
            })
            .collect()
    }

    #[test]
    fn stump_finds_a_separating_feature() {
        // label determined entirely by hr
        let examples: Vec<LabelledExample> = (0..60)
            .map(|i| {
                let hr = i as f64 / 60.0;
                LabelledExample::new([("hr", hr), ("noise", (i * 13 % 7) as f64)], hr > 0.5)
            })
            .collect();
        let stump = DecisionStump::train(&examples).unwrap();
        assert_eq!(stump.feature, "hr");
        assert!(stump.above_is_positive);
        assert!((stump.threshold - 0.5).abs() < 0.05, "threshold {}", stump.threshold);
        assert!(stump.training_accuracy > 0.99);
    }

    #[test]
    fn stump_handles_inverted_polarity() {
        let examples: Vec<LabelledExample> = (0..40)
            .map(|i| {
                let err = i as f64;
                LabelledExample::new([("error", err)], err < 20.0)
            })
            .collect();
        let stump = DecisionStump::train(&examples).unwrap();
        assert!(!stump.above_is_positive);
        assert!(stump.training_accuracy > 0.99);
    }

    #[test]
    fn logistic_learns_separable_data() {
        let examples = toy_examples(300);
        let model = LogisticModel::train(&examples, &LogisticConfig::default()).unwrap();
        assert!(model.accuracy(&examples) > 0.95, "{}", model.accuracy(&examples));
        // probabilities are ordered by margin
        let strong = BTreeMap::from([("hr".to_string(), 0.95), ("mc".to_string(), 90.0)]);
        let weak = BTreeMap::from([("hr".to_string(), 0.05), ("mc".to_string(), 5.0)]);
        assert!(model.predict_proba(&strong).unwrap() > 0.9);
        assert!(model.predict_proba(&weak).unwrap() < 0.1);
    }

    #[test]
    fn missing_features_yield_none() {
        let model = LogisticModel::train(&toy_examples(50), &LogisticConfig::default()).unwrap();
        let partial = BTreeMap::from([("hr".to_string(), 0.5)]);
        assert_eq!(model.predict_proba(&partial), None);
    }

    #[test]
    fn empty_training_sets_rejected() {
        assert!(DecisionStump::train(&[]).is_err());
        assert!(LogisticModel::train(&[], &LogisticConfig::default()).is_err());
    }

    #[test]
    fn learned_assertion_tags_the_map() {
        let model = LogisticModel::train(&toy_examples(200), &LogisticConfig::default()).unwrap();
        let qa = LearnedAssertion::new(q::iri("LearnedPIScore"), Box::new(model));
        assert_eq!(qa.expected_variables(), vec!["hr", "mc"]);

        let mut map = AnnotationMap::new();
        let good = Term::iri("urn:lsid:t:h:good");
        let bad = Term::iri("urn:lsid:t:h:bad");
        let sparse = Term::iri("urn:lsid:t:h:sparse");
        map.set_evidence(&good, q::iri("HitRatio"), 0.95.into());
        map.set_evidence(&good, q::iri("MassCoverage"), 80.0.into());
        map.set_evidence(&bad, q::iri("HitRatio"), 0.05.into());
        map.set_evidence(&bad, q::iri("MassCoverage"), 3.0.into());
        map.set_evidence(&sparse, q::iri("HitRatio"), 0.5.into());

        let bindings = VariableBindings::new()
            .bind_evidence("hr", q::iri("HitRatio"))
            .bind_evidence("mc", q::iri("MassCoverage"));
        qa.assert_quality(&mut map, &bindings, "P").unwrap();

        let p_good = map.item(&good).unwrap().tag("P").as_number().unwrap();
        let p_bad = map.item(&bad).unwrap().tag("P").as_number().unwrap();
        assert!(p_good > 0.8 && p_bad < 0.2);
        assert!(map.item(&sparse).unwrap().tag("P").is_null());
    }
}
