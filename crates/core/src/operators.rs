//! The abstract quality operators (§4.1) as workflow processors.
//!
//! * [`AnnotatorProcessor`] — the Annotation operator: computes evidence
//!   for the incoming data set and writes it to its repository; produces a
//!   completion token only (annotators "only write to a repository");
//! * [`DataEnrichmentProcessor`] — the single Data-Enrichment operator the
//!   compiler configures with an evidence-type → repository association;
//! * [`AssertionProcessor`] — a QA: augments the annotation map with a tag;
//! * [`ConsolidateProcessor`] — the `ConsolidateAssertions` task "added by
//!   the compiler to produce a consistent view of multiple assertions";
//! * [`ActionProcessor`] — condition/action pairs: filter and splitter.
//!   Conditions are re-parsed from source at execution time so users can
//!   edit them between runs without recompiling the view (§4).

use crate::convert;
use crate::{QuratorError, Result};
use parking_lot::Mutex;
use qurator_annotations::{AnnotationMap, AnnotationRepository, EvidenceValue};
use qurator_expr::{Env, Expr, Value};
use qurator_ontology::IqModel;
use qurator_rdf::term::{Iri, Term};
use qurator_services::{AnnotationService, AssertionService, DataSet, VariableBindings};
use qurator_telemetry::stats::{NodeStats, StatsCollector};
use qurator_telemetry::{Counter, Histogram};
use qurator_workflow::{Context, Data, Processor, WorkflowError};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

type Inputs = BTreeMap<String, Data>;
type Outputs = BTreeMap<String, Data>;

fn enrich_op_items() -> &'static Arc<Counter> {
    static C: OnceLock<Arc<Counter>> = OnceLock::new();
    C.get_or_init(|| qurator_telemetry::metrics().counter("enrich.op.items"))
}

fn enrich_op_latency() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| qurator_telemetry::metrics().histogram("enrich.op.latency_ns"))
}

fn exec_err(processor: &str, message: impl Into<String>) -> WorkflowError {
    WorkflowError::Execution { processor: processor.to_string(), message: message.into() }
}

fn wf_result<T>(processor: &str, r: Result<T>) -> std::result::Result<T, WorkflowError> {
    r.map_err(|e| exec_err(processor, e.to_string()))
}

/// The Annotation operator.
pub struct AnnotatorProcessor {
    name: String,
    service: Arc<dyn AnnotationService>,
    repository: Arc<AnnotationRepository>,
    stats: Option<Arc<StatsCollector>>,
}

impl AnnotatorProcessor {
    /// Wraps an annotation service writing to a repository.
    pub fn new(
        name: impl Into<String>,
        service: Arc<dyn AnnotationService>,
        repository: Arc<AnnotationRepository>,
    ) -> Self {
        AnnotatorProcessor { name: name.into(), service, repository, stats: None }
    }

    /// Attaches the shared observed-statistics sink.
    pub fn with_stats(mut self, stats: Arc<StatsCollector>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Runs the annotation directly (shared with the interpreter path):
    /// computes evidence for the data set, writes it to the repository,
    /// returns the number of annotations written.
    pub fn annotate(&self, dataset: &DataSet) -> Result<usize> {
        let started = Instant::now();
        let written = self
            .service
            .annotate(dataset, &self.repository)
            .map_err(|e| QuratorError::Execution(e.to_string()))?;
        if let Some(stats) = &self.stats {
            stats.record(
                &self.name,
                NodeStats {
                    calls: 1,
                    rows_in: dataset.len() as u64,
                    rows_out: dataset.len() as u64,
                    evidence: written as u64,
                    hits: 0,
                    wall_ns: started.elapsed().as_nanos() as u64,
                },
            );
        }
        Ok(written)
    }
}

impl Processor for AnnotatorProcessor {
    fn type_name(&self) -> &str {
        &self.name
    }

    fn input_ports(&self) -> Vec<(String, usize)> {
        vec![("dataset".to_string(), 0)]
    }

    fn output_ports(&self) -> Vec<String> {
        vec!["done".to_string()]
    }

    fn execute(
        &self,
        inputs: &Inputs,
        _ctx: &Context,
    ) -> std::result::Result<Outputs, WorkflowError> {
        let dataset_data =
            inputs.get("dataset").ok_or_else(|| exec_err(&self.name, "missing dataset"))?;
        let dataset = convert::data_to_dataset(dataset_data)
            .map_err(|e| exec_err(&self.name, e.to_string()))?;
        let written = wf_result(&self.name, self.annotate(&dataset))?;
        Ok(BTreeMap::from([("done".to_string(), Data::Number(written as f64))]))
    }
}

/// The Data-Enrichment operator.
pub struct DataEnrichmentProcessor {
    name: String,
    /// evidence type → repository to read it from (the compiler-computed
    /// association of §6.1).
    plan: Vec<(Iri, Arc<AnnotationRepository>)>,
    /// Fan enrichment out over scoped threads (repository groups × item
    /// chunks). On by default; disable for the E5 sequential ablation.
    parallel: bool,
    stats: Option<Arc<StatsCollector>>,
}

/// Floor on items per parallel enrichment chunk: below this a chunk is not
/// worth a thread, so small batches run on the calling thread.
const PARALLEL_CHUNK_MIN: usize = 4096;

impl DataEnrichmentProcessor {
    /// Builds the operator from its fetch plan.
    pub fn new(name: impl Into<String>, plan: Vec<(Iri, Arc<AnnotationRepository>)>) -> Self {
        DataEnrichmentProcessor { name: name.into(), plan, parallel: true, stats: None }
    }

    /// Switches parallel fan-out on or off.
    pub fn with_parallel(mut self, parallel: bool) -> Self {
        self.parallel = parallel;
        self
    }

    /// Attaches the shared observed-statistics sink.
    pub fn with_stats(mut self, stats: Arc<StatsCollector>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// The repository groups this operator will answer with one bulk
    /// lookup each: `(repository name, evidence types)` in first-fetch
    /// order. Exposed so callers (and regression tests) can verify that a
    /// repository listed under several evidence IRIs gets one grouped
    /// `enrich_bulk` call, not one per IRI.
    pub fn fetch_groups(&self) -> Vec<(String, Vec<Iri>)> {
        self.grouped_plan()
            .into_iter()
            .map(|(repository, types)| (repository.name().to_string(), types))
            .collect()
    }

    /// Groups the fetch plan by repository (first-occurrence order), so a
    /// repository serving several evidence types is scanned once, not once
    /// per type.
    fn grouped_plan(&self) -> Vec<(&Arc<AnnotationRepository>, Vec<Iri>)> {
        let mut groups: Vec<(&Arc<AnnotationRepository>, Vec<Iri>)> = Vec::new();
        for (evidence_type, repository) in &self.plan {
            match groups.iter_mut().find(|(r, _)| Arc::ptr_eq(r, repository)) {
                Some((_, types)) => types.push(evidence_type.clone()),
                None => groups.push((repository, vec![evidence_type.clone()])),
            }
        }
        groups
    }

    /// Runs the enrichment directly (shared with the interpreter path).
    ///
    /// Each repository group is answered by one bulk lookup
    /// ([`AnnotationRepository::enrich_bulk`]: one read lock, one index
    /// scan) instead of a SPARQL query per `(item, type)` pair. With
    /// `parallel` on, repository groups and large item chunks run on scoped
    /// threads; results merge in deterministic plan order, so parallel and
    /// sequential runs produce identical maps.
    pub fn enrich(&self, items: &[Term]) -> Result<AnnotationMap> {
        let started = Instant::now();
        enrich_op_items().add(items.len() as u64);
        let map = self.enrich_inner(items)?;
        let wall_ns = started.elapsed().as_nanos() as u64;
        enrich_op_latency().record(wall_ns);
        if let Some(stats) = &self.stats {
            if stats.enabled() {
                // Observed evidence cardinality and per-item hit rate: one
                // pass over the enriched map (rows are item-count sized,
                // not evidence-count sized, so this stays cheap).
                let mut evidence = 0u64;
                let mut hits = 0u64;
                for item in map.items() {
                    let n = map.item(item).map_or(0, |row| row.evidence_entries().count());
                    if n > 0 {
                        hits += 1;
                    }
                    evidence += n as u64;
                }
                stats.record(
                    &self.name,
                    NodeStats {
                        calls: 1,
                        rows_in: items.len() as u64,
                        rows_out: map.len() as u64,
                        evidence,
                        hits,
                        wall_ns,
                    },
                );
            }
        }
        Ok(map)
    }

    fn enrich_inner(&self, items: &[Term]) -> Result<AnnotationMap> {
        let groups = self.grouped_plan();

        // A single-repository plan (the common §6.1 outcome) is exactly one
        // bulk call: the returned map is already seeded with the item set,
        // so there is nothing to fan out or merge.
        if let [(repository, types)] = groups.as_slice() {
            return repository
                .enrich_bulk(items, types)
                .map_err(|e| QuratorError::Execution(e.to_string()));
        }

        let mut combined = AnnotationMap::for_items(items.iter().cloned());
        let partials: Vec<Result<AnnotationMap>> = if self.parallel && groups.len() > 1 {
            // Multi-repository fan-out: every (repository group × item
            // chunk) pair becomes a scoped-thread job, so independent
            // stores are scanned concurrently.
            let workers = std::thread::available_parallelism().map_or(1, |n| n.get());
            let chunk_size = items.len().div_ceil(workers.max(1)).max(PARALLEL_CHUNK_MIN);
            let jobs: Vec<(&Arc<AnnotationRepository>, &[Iri], &[Term])> = groups
                .iter()
                .flat_map(|(repository, types)| {
                    items
                        .chunks(chunk_size.max(1))
                        .map(move |chunk| (*repository, types.as_slice(), chunk))
                })
                .collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = jobs
                    .iter()
                    .map(|(repository, types, chunk)| {
                        scope.spawn(move || {
                            repository
                                .enrich_bulk(chunk, types)
                                .map_err(|e| QuratorError::Execution(e.to_string()))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| {
                        handle.join().unwrap_or_else(|_| {
                            Err(QuratorError::Execution("enrichment worker panicked".to_string()))
                        })
                    })
                    .collect()
            })
        } else {
            groups
                .iter()
                .map(|(repository, types)| {
                    repository
                        .enrich_bulk(items, types)
                        .map_err(|e| QuratorError::Execution(e.to_string()))
                })
                .collect()
        };

        // Merge in job order (= plan order, then item order), keeping the
        // result byte-identical to a sequential per-pair enrichment.
        for partial in partials {
            combined.merge(&partial?);
        }
        Ok(combined)
    }
}

impl Processor for DataEnrichmentProcessor {
    fn type_name(&self) -> &str {
        &self.name
    }

    fn input_ports(&self) -> Vec<(String, usize)> {
        vec![("dataset".to_string(), 0)]
    }

    fn output_ports(&self) -> Vec<String> {
        vec!["map".to_string()]
    }

    fn execute(
        &self,
        inputs: &Inputs,
        _ctx: &Context,
    ) -> std::result::Result<Outputs, WorkflowError> {
        let dataset_data =
            inputs.get("dataset").ok_or_else(|| exec_err(&self.name, "missing dataset"))?;
        let dataset = wf_result(&self.name, convert::data_to_dataset(dataset_data))?;
        let map = wf_result(&self.name, self.enrich(dataset.items()))?;
        Ok(BTreeMap::from([("map".to_string(), convert::map_to_data(&map))]))
    }
}

/// The Quality Assertion operator.
pub struct AssertionProcessor {
    name: String,
    service: Arc<dyn AssertionService>,
    bindings: VariableBindings,
    tag: String,
    stats: Option<Arc<StatsCollector>>,
}

impl AssertionProcessor {
    /// Wraps an assertion service with its variable bindings and tag name.
    pub fn new(
        name: impl Into<String>,
        service: Arc<dyn AssertionService>,
        bindings: VariableBindings,
        tag: impl Into<String>,
    ) -> Self {
        AssertionProcessor { name: name.into(), service, bindings, tag: tag.into(), stats: None }
    }

    /// Attaches the shared observed-statistics sink.
    pub fn with_stats(mut self, stats: Arc<StatsCollector>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Runs the assertion directly (shared with the interpreter path, so
    /// classification counting covers both execution modes).
    pub fn assert_quality(&self, map: &mut AnnotationMap) -> Result<()> {
        let started = Instant::now();
        self.service
            .assert_quality(map, &self.bindings, &self.tag)
            .map_err(|e| QuratorError::Execution(e.to_string()))?;
        // Count what this pass assigned: per class label for
        // classifications, per tag for everything (numeric scores would
        // explode label cardinality if counted per value). Aggregated
        // locally first — one registry touch per label, not per item.
        let mut tagged = 0u64;
        let mut per_class: BTreeMap<String, u64> = BTreeMap::new();
        for item in map.items() {
            let row = map.item(item).expect("listed");
            match row.tag(&self.tag) {
                EvidenceValue::Null => {}
                EvidenceValue::Class(class) => {
                    tagged += 1;
                    *per_class.entry(class.local_name().to_string()).or_default() += 1;
                }
                _ => tagged += 1,
            }
        }
        let metrics = qurator_telemetry::metrics();
        if tagged > 0 {
            metrics.counter_with("qa.assert.count", &[("tag", &self.tag)]).add(tagged);
        }
        for (label, count) in &per_class {
            metrics.counter_with("qa.classify.count", &[("class", label)]).add(*count);
        }
        // feed the drift monitor the same aggregation (one call per
        // node×batch; a no-op when the monitor is disabled)
        if !per_class.is_empty() {
            let counts: Vec<(&str, u64)> =
                per_class.iter().map(|(label, count)| (label.as_str(), *count)).collect();
            qurator_telemetry::drift::global().observe_bulk(&self.tag, &counts);
        }
        if let Some(stats) = &self.stats {
            stats.record(
                &self.name,
                NodeStats {
                    calls: 1,
                    rows_in: map.len() as u64,
                    rows_out: map.len() as u64,
                    evidence: 0,
                    hits: tagged,
                    wall_ns: started.elapsed().as_nanos() as u64,
                },
            );
        }
        Ok(())
    }
}

impl Processor for AssertionProcessor {
    fn type_name(&self) -> &str {
        &self.name
    }

    fn input_ports(&self) -> Vec<(String, usize)> {
        vec![("map".to_string(), 0)]
    }

    fn output_ports(&self) -> Vec<String> {
        vec!["map".to_string()]
    }

    fn execute(
        &self,
        inputs: &Inputs,
        _ctx: &Context,
    ) -> std::result::Result<Outputs, WorkflowError> {
        let map_data = inputs.get("map").ok_or_else(|| exec_err(&self.name, "missing map"))?;
        let mut map = wf_result(&self.name, convert::data_to_map(map_data))?;
        wf_result(&self.name, self.assert_quality(&mut map))?;
        Ok(BTreeMap::from([("map".to_string(), convert::map_to_data(&map))]))
    }
}

/// The consolidation task: merges N annotation maps into one consistent
/// view (later inputs win conflicting entries; in a compiled view tags are
/// distinct so there are none).
pub struct ConsolidateProcessor {
    name: String,
    input_count: usize,
}

impl ConsolidateProcessor {
    /// Builds a consolidator with `input_count` map inputs
    /// (`map0 … map{n-1}`).
    pub fn new(name: impl Into<String>, input_count: usize) -> Self {
        ConsolidateProcessor { name: name.into(), input_count: input_count.max(1) }
    }
}

impl Processor for ConsolidateProcessor {
    fn type_name(&self) -> &str {
        &self.name
    }

    fn input_ports(&self) -> Vec<(String, usize)> {
        (0..self.input_count).map(|i| (format!("map{i}"), 0)).collect()
    }

    fn output_ports(&self) -> Vec<String> {
        vec!["map".to_string()]
    }

    fn execute(
        &self,
        inputs: &Inputs,
        _ctx: &Context,
    ) -> std::result::Result<Outputs, WorkflowError> {
        let mut combined = AnnotationMap::new();
        for i in 0..self.input_count {
            let port = format!("map{i}");
            let map_data =
                inputs.get(&port).ok_or_else(|| exec_err(&self.name, format!("missing {port}")))?;
            let map = wf_result(&self.name, convert::data_to_map(map_data))?;
            combined.merge(&map);
        }
        Ok(BTreeMap::from([("map".to_string(), convert::map_to_data(&combined))]))
    }
}

/// A compiled action: filter or splitter with condition *source text*.
#[derive(Debug, Clone)]
pub enum CompiledAction {
    Filter { condition: String },
    Split { groups: Vec<(String, String)> },
}

/// One output group of an action execution.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupResult {
    /// Group name (the action name for filters, `action/group` for
    /// splitter groups, `action/default` for the §4.1 default group).
    pub name: String,
    /// Surviving data items (input order preserved).
    pub dataset: DataSet,
    /// The restriction of the annotation map to those items
    /// (`(D_i, Amap_i)` in §4.1).
    pub map: AnnotationMap,
}

/// The Actions operator.
pub struct ActionProcessor {
    action_name: String,
    action: CompiledAction,
    iq: Arc<IqModel>,
    /// Conditions are re-parsed per execution; this caches the parse of
    /// the *current* source only, preserving edit-between-runs semantics
    /// while avoiding a re-parse per item.
    parse_cache: Mutex<BTreeMap<String, Expr>>,
    /// Plan-time constant-fold verdicts, index-aligned with the action's
    /// condition slots (`Some(true)` = always accepts, `Some(false)` =
    /// always rejects). A hinted slot skips per-item evaluation; the
    /// outcome is identical because the optimizer only hints conditions
    /// that reference no variables.
    short_circuit: Vec<Option<bool>>,
    stats: Option<Arc<StatsCollector>>,
}

impl ActionProcessor {
    /// Builds an action operator.
    pub fn new(action_name: impl Into<String>, action: CompiledAction, iq: Arc<IqModel>) -> Self {
        ActionProcessor {
            action_name: action_name.into(),
            action,
            iq,
            parse_cache: Mutex::new(BTreeMap::new()),
            short_circuit: Vec::new(),
            stats: None,
        }
    }

    /// Installs plan-time short-circuit verdicts (one slot per condition;
    /// `None` slots evaluate normally).
    pub fn with_short_circuit(mut self, hints: Vec<Option<bool>>) -> Self {
        self.short_circuit = hints;
        self
    }

    /// Attaches the shared observed-statistics sink.
    pub fn with_stats(mut self, stats: Arc<StatsCollector>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// The output group names this action produces, in port order.
    pub fn group_names(&self) -> Vec<String> {
        match &self.action {
            CompiledAction::Filter { .. } => vec![self.action_name.clone()],
            CompiledAction::Split { groups } => {
                let mut names: Vec<String> =
                    groups.iter().map(|(g, _)| format!("{}/{g}", self.action_name)).collect();
                names.push(format!("{}/default", self.action_name));
                names
            }
        }
    }

    fn condition(&self, source: &str) -> Result<Expr> {
        if let Some(found) = self.parse_cache.lock().get(source) {
            return Ok(found.clone());
        }
        let parsed = qurator_expr::parse(source)
            .map_err(|e| QuratorError::Execution(format!("condition {source:?}: {e}")))?;
        self.parse_cache.lock().insert(source.to_string(), parsed.clone());
        Ok(parsed)
    }

    /// Runs the action directly (shared with the interpreter path).
    pub fn apply(&self, dataset: &DataSet, map: &AnnotationMap) -> Result<Vec<GroupResult>> {
        let started = Instant::now();
        // A short-circuited slot needs no parse and no per-item evaluation
        enum Cond {
            Eval(Expr),
            Const(bool),
        }
        let slot_cond = |slot: usize, source: &str| -> Result<Cond> {
            match self.short_circuit.get(slot).copied().flatten() {
                Some(verdict) => Ok(Cond::Const(verdict)),
                None => Ok(Cond::Eval(self.condition(source)?)),
            }
        };
        let conditions: Vec<(String, Cond)> = match &self.action {
            CompiledAction::Filter { condition } => {
                vec![(self.action_name.clone(), slot_cond(0, condition)?)]
            }
            CompiledAction::Split { groups } => groups
                .iter()
                .enumerate()
                .map(|(slot, (group, condition))| {
                    Ok((format!("{}/{group}", self.action_name), slot_cond(slot, condition)?))
                })
                .collect::<Result<Vec<_>>>()?,
        };
        let is_split = matches!(self.action, CompiledAction::Split { .. });

        let needs_env = conditions.iter().any(|(_, c)| matches!(c, Cond::Eval(_)));
        let mut memberships: Vec<Vec<Term>> = vec![Vec::new(); conditions.len()];
        let mut default_group: Vec<Term> = Vec::new();
        for item in dataset.items() {
            let env = if needs_env { build_env(&self.iq, map, item) } else { Env::new() };
            let mut matched_any = false;
            for (slot, (_, cond)) in conditions.iter().enumerate() {
                let accepted = match cond {
                    Cond::Const(verdict) => *verdict,
                    Cond::Eval(expr) => expr.accepts(&env).map_err(|e| {
                        QuratorError::Execution(format!(
                            "evaluating action {:?}: {e}",
                            self.action_name
                        ))
                    })?,
                };
                if accepted {
                    memberships[slot].push(item.clone());
                    matched_any = true;
                }
            }
            if !matched_any {
                default_group.push(item.clone());
            }
        }

        let mut out = Vec::with_capacity(conditions.len() + 1);
        for ((name, _), members) in conditions.iter().zip(memberships) {
            out.push(GroupResult {
                name: name.clone(),
                dataset: dataset.restrict(&members),
                map: map.restrict(&members),
            });
        }
        if is_split {
            // §4.1: the k+1-th output is the default group.
            out.push(GroupResult {
                name: format!("{}/default", self.action_name),
                dataset: dataset.restrict(&default_group),
                map: map.restrict(&default_group),
            });
        }
        if let Some(stats) = &self.stats {
            stats.record(
                &self.action_name,
                NodeStats {
                    calls: 1,
                    rows_in: dataset.len() as u64,
                    rows_out: out.iter().map(|g| g.dataset.len() as u64).sum(),
                    evidence: 0,
                    // rows some condition accepted (for a filter, the
                    // default group holds exactly the rejected items)
                    hits: (dataset.len() - default_group.len()) as u64,
                    wall_ns: started.elapsed().as_nanos() as u64,
                },
            );
        }
        Ok(out)
    }
}

/// Builds the per-item evaluation environment: every QA tag under its tag
/// name, every evidence value under its evidence-type local name.
pub fn build_env(iq: &IqModel, map: &AnnotationMap, item: &Term) -> Env {
    let mut env = Env::new();
    if let Some(row) = map.item(item) {
        for (evidence_type, value) in row.evidence_entries() {
            env.bind(evidence_type.local_name(), evidence_to_value(iq, value));
        }
        for (tag, value) in row.tag_entries() {
            env.bind(tag, evidence_to_value(iq, value));
        }
    }
    env
}

/// Converts an annotation value into a condition-language value.
/// Classification labels become symbols in compact (`q:high`) form.
pub fn evidence_to_value(iq: &IqModel, value: &EvidenceValue) -> Value {
    match value {
        EvidenceValue::Number(n) => Value::Num(*n),
        EvidenceValue::Text(s) => Value::Str(s.clone()),
        EvidenceValue::Bool(b) => Value::Bool(*b),
        EvidenceValue::Class(iri) => Value::Symbol(iq.compact(iri)),
        EvidenceValue::Null => Value::Null,
    }
}

impl Processor for ActionProcessor {
    fn type_name(&self) -> &str {
        &self.action_name
    }

    fn input_ports(&self) -> Vec<(String, usize)> {
        vec![("dataset".to_string(), 0), ("map".to_string(), 0)]
    }

    fn output_ports(&self) -> Vec<String> {
        self.group_names()
    }

    fn execute(
        &self,
        inputs: &Inputs,
        _ctx: &Context,
    ) -> std::result::Result<Outputs, WorkflowError> {
        let dataset_data =
            inputs.get("dataset").ok_or_else(|| exec_err(&self.action_name, "missing dataset"))?;
        let map_data =
            inputs.get("map").ok_or_else(|| exec_err(&self.action_name, "missing map"))?;
        let dataset = wf_result(&self.action_name, convert::data_to_dataset(dataset_data))?;
        let map = wf_result(&self.action_name, convert::data_to_map(map_data))?;
        let groups = wf_result(&self.action_name, self.apply(&dataset, &map))?;
        Ok(groups
            .into_iter()
            .map(|g| {
                (
                    g.name.clone(),
                    Data::record([
                        ("dataset", convert::dataset_to_data(&g.dataset)),
                        ("map", convert::map_to_data(&g.map)),
                    ]),
                )
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_rdf::namespace::q;
    use qurator_services::stdlib::{FieldCaptureAnnotator, ZScoreAssertion};

    fn iq() -> Arc<IqModel> {
        Arc::new(IqModel::with_proteomics_extension().unwrap())
    }

    fn item(n: u32) -> Term {
        Term::iri(format!("urn:lsid:t:h:{n}"))
    }

    fn sample_dataset() -> DataSet {
        let mut ds = DataSet::new();
        ds.push(item(1), [("hitRatio", 0.9.into()), ("massCoverage", 40.0.into())]);
        ds.push(item(2), [("hitRatio", 0.5.into()), ("massCoverage", 25.0.into())]);
        ds.push(item(3), [("hitRatio", 0.1.into()), ("massCoverage", 5.0.into())]);
        ds
    }

    #[test]
    fn annotator_then_enrichment_pipeline() {
        let iq = iq();
        let repo = Arc::new(AnnotationRepository::new("cache", false, iq.clone()));
        let annotator = AnnotatorProcessor::new(
            "ImprintOutputAnnotator",
            Arc::new(FieldCaptureAnnotator::new(
                q::iri("ImprintOutputAnnotation"),
                &[("hitRatio", q::iri("HitRatio")), ("massCoverage", q::iri("MassCoverage"))],
            )),
            repo.clone(),
        );
        let ds = sample_dataset();
        let inputs = BTreeMap::from([("dataset".to_string(), convert::dataset_to_data(&ds))]);
        let out = annotator.execute(&inputs, &Context::new()).unwrap();
        assert_eq!(out["done"], Data::Number(6.0));

        let de = DataEnrichmentProcessor::new(
            "DataEnrichment",
            vec![(q::iri("HitRatio"), repo.clone()), (q::iri("MassCoverage"), repo)],
        );
        let out = de.execute(&inputs, &Context::new()).unwrap();
        let map = convert::data_to_map(&out["map"]).unwrap();
        assert_eq!(map.len(), 3);
        assert_eq!(
            map.item(&item(1)).unwrap().evidence(&q::iri("HitRatio")),
            EvidenceValue::Number(0.9)
        );
    }

    #[test]
    fn grouped_bulk_enrich_equals_per_entry_merge() {
        // Two repositories with overlapping evidence types: repo_a holds
        // HitRatio for all items and MassCoverage for item 1; repo_b holds
        // MassCoverage for items 2,3 plus a *conflicting* HitRatio for
        // item 1 (the plan must keep later entries winning on merge).
        let iq = iq();
        let repo_a = Arc::new(AnnotationRepository::new("a", false, iq.clone()));
        let repo_b = Arc::new(AnnotationRepository::new("b", false, iq.clone()));
        for (i, v) in [(1u32, 0.9), (2, 0.5), (3, 0.1)] {
            repo_a.annotate(&item(i), &q::iri("HitRatio"), v.into()).unwrap();
        }
        repo_a.annotate(&item(1), &q::iri("MassCoverage"), 40.0.into()).unwrap();
        repo_b.annotate(&item(1), &q::iri("HitRatio"), 0.111.into()).unwrap();
        repo_b.annotate(&item(2), &q::iri("MassCoverage"), 25.0.into()).unwrap();
        repo_b.annotate(&item(3), &q::iri("MassCoverage"), 5.0.into()).unwrap();

        let plan = vec![
            (q::iri("HitRatio"), repo_a.clone()),
            (q::iri("MassCoverage"), repo_b.clone()),
            (q::iri("MassCoverage"), repo_a.clone()),
            (q::iri("HitRatio"), repo_b.clone()),
        ];
        let items: Vec<Term> = (1..=3u32).map(item).collect();

        // The pre-bulk composition: one per-pair enrich per plan entry,
        // merged in plan order.
        let mut per_entry = AnnotationMap::for_items(items.iter().cloned());
        for (evidence_type, repository) in &plan {
            let partial = repository.enrich(&items, std::slice::from_ref(evidence_type)).unwrap();
            per_entry.merge(&partial);
        }

        let parallel = DataEnrichmentProcessor::new("de", plan.clone()).enrich(&items).unwrap();
        let sequential =
            DataEnrichmentProcessor::new("de", plan).with_parallel(false).enrich(&items).unwrap();

        assert_eq!(parallel, per_entry);
        assert_eq!(sequential, per_entry);
        // The later plan entry's HitRatio (repo_b) must have won for item 1.
        assert_eq!(
            per_entry.item(&item(1)).unwrap().evidence(&q::iri("HitRatio")),
            EvidenceValue::Number(0.111)
        );
    }

    #[test]
    fn assertion_processor_tags() {
        let qa = AssertionProcessor::new(
            "HRscore",
            Arc::new(ZScoreAssertion::new(q::iri("UniversalPIScore"), &["hr"])),
            VariableBindings::new().bind_evidence("hr", q::iri("HitRatio")),
            "HR",
        );
        let mut map = AnnotationMap::new();
        for (i, v) in [(1u32, 0.1), (2, 0.5), (3, 0.9)] {
            map.set_evidence(&item(i), q::iri("HitRatio"), v.into());
        }
        let inputs = BTreeMap::from([("map".to_string(), convert::map_to_data(&map))]);
        let out = qa.execute(&inputs, &Context::new()).unwrap();
        let tagged = convert::data_to_map(&out["map"]).unwrap();
        assert!(tagged.item(&item(3)).unwrap().tag("HR").as_number().unwrap() > 0.0);
    }

    #[test]
    fn consolidate_merges() {
        let mut a = AnnotationMap::new();
        a.set_tag(&item(1), "HR", 1.0.into());
        let mut b = AnnotationMap::new();
        b.set_tag(&item(1), "MC", 2.0.into());
        let c = ConsolidateProcessor::new("ConsolidateAssertions", 2);
        let inputs = BTreeMap::from([
            ("map0".to_string(), convert::map_to_data(&a)),
            ("map1".to_string(), convert::map_to_data(&b)),
        ]);
        let out = c.execute(&inputs, &Context::new()).unwrap();
        let merged = convert::data_to_map(&out["map"]).unwrap();
        let row = merged.item(&item(1)).unwrap();
        assert_eq!(row.tag("HR"), EvidenceValue::Number(1.0));
        assert_eq!(row.tag("MC"), EvidenceValue::Number(2.0));
    }

    #[test]
    fn filter_action_keeps_matching_items() {
        let iq = iq();
        let action = ActionProcessor::new(
            "keep",
            CompiledAction::Filter {
                condition: "ScoreClass in q:high, q:mid and HitRatio > 0.2".into(),
            },
            iq.clone(),
        );
        let ds = sample_dataset();
        let mut map = AnnotationMap::new();
        for (i, class) in [(1u32, "high"), (2, "mid"), (3, "high")] {
            map.set_evidence(&item(i), q::iri("HitRatio"), ds.field(&item(i), "hitRatio"));
            map.set_tag(&item(i), "ScoreClass", EvidenceValue::Class(q::iri(class)));
        }
        let groups = action.apply(&ds, &map).unwrap();
        assert_eq!(groups.len(), 1);
        // item 3 has HitRatio 0.1 → dropped despite class high
        assert_eq!(groups[0].dataset.items(), &[item(1), item(2)]);
        assert_eq!(groups[0].map.len(), 2);
    }

    #[test]
    fn splitter_groups_cover_everything_with_default() {
        let iq = iq();
        let action = ActionProcessor::new(
            "triage",
            CompiledAction::Split {
                groups: vec![
                    ("strong".into(), "HitRatio >= 0.5".into()),
                    ("reviewable".into(), "MassCoverage > 20".into()),
                ],
            },
            iq,
        );
        let ds = sample_dataset();
        let mut map = AnnotationMap::new();
        for i in 1..=3u32 {
            map.set_evidence(&item(i), q::iri("HitRatio"), ds.field(&item(i), "hitRatio"));
            map.set_evidence(&item(i), q::iri("MassCoverage"), ds.field(&item(i), "massCoverage"));
        }
        let groups = action.apply(&ds, &map).unwrap();
        assert_eq!(groups.len(), 3);
        let by_name: BTreeMap<&str, &GroupResult> =
            groups.iter().map(|g| (g.name.as_str(), g)).collect();
        // items 1,2 are strong; 1,2 reviewable (overlap allowed, §4.1);
        // item 3 matches nothing → default
        assert_eq!(by_name["triage/strong"].dataset.items(), &[item(1), item(2)]);
        assert_eq!(by_name["triage/reviewable"].dataset.items(), &[item(1), item(2)]);
        assert_eq!(by_name["triage/default"].dataset.items(), &[item(3)]);
    }

    #[test]
    fn missing_evidence_rejects_not_errors() {
        let action = ActionProcessor::new(
            "keep",
            CompiledAction::Filter { condition: "GhostEvidence > 1".into() },
            iq(),
        );
        let ds = sample_dataset();
        let map = AnnotationMap::for_items(ds.items().iter().cloned());
        let groups = action.apply(&ds, &map).unwrap();
        assert!(groups[0].dataset.is_empty());
    }

    #[test]
    fn bad_condition_source_is_reported() {
        let action =
            ActionProcessor::new("keep", CompiledAction::Filter { condition: "><><".into() }, iq());
        let ds = sample_dataset();
        let map = AnnotationMap::new();
        assert!(action.apply(&ds, &map).is_err());
    }

    #[test]
    fn env_binds_tags_and_evidence_locals() {
        let iq = iq();
        let mut map = AnnotationMap::new();
        map.set_evidence(&item(1), q::iri("MassCoverage"), 33.0.into());
        map.set_tag(&item(1), "ScoreClass", EvidenceValue::Class(q::iri("high")));
        let env = build_env(&iq, &map, &item(1));
        assert_eq!(env.lookup("MassCoverage"), Value::Num(33.0));
        assert_eq!(env.lookup("ScoreClass"), Value::Symbol("q:high".into()));
        assert_eq!(env.lookup("Absent"), Value::Null);
    }
}

/// Per-item explanation of an action decision — the observability the
/// paper's prototyping loop needs ("repeatedly observe the effect of
/// alternative criteria"). Produced by [`ActionProcessor::explain`].
#[derive(Debug, Clone, PartialEq)]
pub struct ItemExplanation {
    /// The data item.
    pub item: Term,
    /// Per condition (group name for splitters, action name for filters):
    /// the evaluated outcome.
    pub outcomes: Vec<(String, ConditionOutcome)>,
    /// The variable environment the conditions saw (tags + evidence).
    pub environment: Env,
}

/// The three-valued outcome of one condition on one item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConditionOutcome {
    Accepted,
    Rejected,
    /// The condition evaluated to Null (missing evidence) — rejected, but
    /// distinguishable from an explicit `false`.
    Unknown,
}

impl ActionProcessor {
    /// Evaluates the action's conditions per item *without* producing
    /// groups, returning a full explanation trace.
    pub fn explain(&self, dataset: &DataSet, map: &AnnotationMap) -> Result<Vec<ItemExplanation>> {
        let conditions: Vec<(String, Expr)> = match &self.action {
            CompiledAction::Filter { condition } => {
                vec![(self.action_name.clone(), self.condition(condition)?)]
            }
            CompiledAction::Split { groups } => groups
                .iter()
                .map(|(group, condition)| Ok((group.clone(), self.condition(condition)?)))
                .collect::<Result<Vec<_>>>()?,
        };
        let mut out = Vec::with_capacity(dataset.items().len());
        for item in dataset.items() {
            let env = build_env(&self.iq, map, item);
            let mut outcomes = Vec::with_capacity(conditions.len());
            for (name, expr) in &conditions {
                let value = expr.eval(&env).map_err(|e| {
                    QuratorError::Execution(format!("explaining {:?}: {e}", self.action_name))
                })?;
                let outcome = match value {
                    Value::Bool(true) => ConditionOutcome::Accepted,
                    Value::Null => ConditionOutcome::Unknown,
                    _ => ConditionOutcome::Rejected,
                };
                outcomes.push((name.clone(), outcome));
            }
            out.push(ItemExplanation { item: item.clone(), outcomes, environment: env });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod explain_tests {
    use super::*;
    use qurator_rdf::namespace::q;

    #[test]
    fn explanations_distinguish_rejected_from_unknown() {
        let iq = Arc::new(IqModel::with_proteomics_extension().unwrap());
        let action = ActionProcessor::new(
            "keep",
            CompiledAction::Filter { condition: "HR_MC > 10".into() },
            iq,
        );
        let a = Term::iri("urn:lsid:t:h:a");
        let b = Term::iri("urn:lsid:t:h:b");
        let c = Term::iri("urn:lsid:t:h:c");
        let mut dataset = DataSet::new();
        for item in [&a, &b, &c] {
            dataset.push((*item).clone(), [] as [(String, EvidenceValue); 0]);
        }
        let mut map = AnnotationMap::new();
        map.set_tag(&a, "HR_MC", 20.0.into());
        map.set_tag(&b, "HR_MC", 3.0.into());
        map.ensure_item(c.clone()); // no tag: Null outcome

        let explanations = action.explain(&dataset, &map).unwrap();
        assert_eq!(explanations.len(), 3);
        assert_eq!(explanations[0].outcomes[0].1, ConditionOutcome::Accepted);
        assert_eq!(explanations[1].outcomes[0].1, ConditionOutcome::Rejected);
        assert_eq!(explanations[2].outcomes[0].1, ConditionOutcome::Unknown);
        // the environment snapshot is available for display
        assert_eq!(explanations[0].environment.lookup("HR_MC"), Value::Num(20.0));
    }

    #[test]
    fn explanations_agree_with_apply() {
        let iq = Arc::new(IqModel::with_proteomics_extension().unwrap());
        let action = ActionProcessor::new(
            "triage",
            CompiledAction::Split {
                groups: vec![("hi".into(), "score > 1".into()), ("lo".into(), "score <= 1".into())],
            },
            iq,
        );
        let mut dataset = DataSet::new();
        let mut map = AnnotationMap::new();
        for i in 0..6u32 {
            let item = Term::iri(format!("urn:lsid:t:h:{i}"));
            dataset.push(item.clone(), [] as [(String, EvidenceValue); 0]);
            map.set_tag(&item, "score", (i as f64 / 2.0).into());
        }
        let groups = action.apply(&dataset, &map).unwrap();
        let explanations = action.explain(&dataset, &map).unwrap();
        let hi = groups.iter().find(|g| g.name == "triage/hi").unwrap();
        for explanation in &explanations {
            let accepted_hi = explanation
                .outcomes
                .iter()
                .any(|(n, o)| n == "hi" && *o == ConditionOutcome::Accepted);
            assert_eq!(hi.dataset.items().contains(&explanation.item), accepted_hi);
        }
        let _ = q::iri("HitRatio");
    }
}
