//! A shareable library of quality views — the paper's future-work item
//! (iv): "providing user-friendly interfaces for the reuse of quality
//! components \[and\] views defined by peers within a scientific community".
//!
//! Views are stored with authorship/description metadata, can be searched
//! by the evidence types they consume, the tags they produce, or free
//! text, and the whole library round-trips through one XML catalog
//! document (`<QualityViewLibrary>`), so communities can exchange it as a
//! single file.

use crate::spec::QualityViewSpec;
use crate::xmlio;
use crate::{QuratorError, Result};
use qurator_xml::Element;
use std::collections::BTreeMap;

/// Authorship and discovery metadata for a shared view.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ViewMetadata {
    pub author: String,
    pub description: String,
    /// Free-form keywords (e.g. quality dimensions: "accuracy").
    pub keywords: Vec<String>,
}

/// One library entry.
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryEntry {
    pub spec: QualityViewSpec,
    pub metadata: ViewMetadata,
}

/// The view library, keyed by view name.
#[derive(Debug, Clone, Default)]
pub struct ViewLibrary {
    entries: BTreeMap<String, LibraryEntry>,
}

impl ViewLibrary {
    /// An empty library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a view; re-publishing under the same name replaces it.
    pub fn publish(&mut self, spec: QualityViewSpec, metadata: ViewMetadata) -> Result<()> {
        if spec.name.trim().is_empty() {
            return Err(QuratorError::Spec("cannot publish a nameless view".into()));
        }
        self.entries.insert(spec.name.clone(), LibraryEntry { spec, metadata });
        Ok(())
    }

    /// Fetches a view by name.
    pub fn get(&self, name: &str) -> Option<&LibraryEntry> {
        self.entries.get(name)
    }

    /// Removes a view; returns whether it existed.
    pub fn retract(&mut self, name: &str) -> bool {
        self.entries.remove(name).is_some()
    }

    /// Number of published views.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no views are published.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = &LibraryEntry> {
        self.entries.values()
    }

    /// Views consuming the given evidence reference (e.g. `q:HitRatio`) —
    /// the run-time model makes such views applicable to any data set
    /// annotated with those types.
    pub fn find_by_evidence(&self, evidence: &str) -> Vec<&LibraryEntry> {
        self.entries.values().filter(|e| e.spec.referenced_evidence().contains(&evidence)).collect()
    }

    /// Views producing the given tag.
    pub fn find_by_tag(&self, tag: &str) -> Vec<&LibraryEntry> {
        self.entries.values().filter(|e| e.spec.tag_names().contains(&tag)).collect()
    }

    /// Case-insensitive free-text search over name, description, author
    /// and keywords.
    pub fn search(&self, text: &str) -> Vec<&LibraryEntry> {
        let needle = text.to_lowercase();
        self.entries
            .values()
            .filter(|e| {
                e.spec.name.to_lowercase().contains(&needle)
                    || e.metadata.description.to_lowercase().contains(&needle)
                    || e.metadata.author.to_lowercase().contains(&needle)
                    || e.metadata.keywords.iter().any(|k| k.to_lowercase().contains(&needle))
            })
            .collect()
    }

    /// Serializes the whole library as one XML catalog document.
    pub fn to_xml(&self) -> String {
        let mut root = Element::new("QualityViewLibrary");
        for entry in self.entries.values() {
            let mut meta = Element::new("metadata")
                .with_attr("author", &entry.metadata.author)
                .with_child(Element::new("description").with_text(&entry.metadata.description));
            for keyword in &entry.metadata.keywords {
                meta = meta.with_child(Element::new("keyword").with_text(keyword));
            }
            root = root.with_child(
                Element::new("entry")
                    .with_child(meta)
                    .with_child(xmlio::spec_to_element(&entry.spec)),
            );
        }
        qurator_xml::write_document(&root)
    }

    /// Loads a library from its XML catalog form.
    pub fn from_xml(text: &str) -> Result<Self> {
        let root = qurator_xml::parse(text)?;
        if root.name() != "QualityViewLibrary" {
            return Err(QuratorError::Spec(format!(
                "expected <QualityViewLibrary>, found <{}>",
                root.name()
            )));
        }
        let mut library = ViewLibrary::new();
        for entry in root.children_named("entry") {
            let view_el = entry.required_child("QualityView").map_err(QuratorError::Spec)?;
            let spec = xmlio::element_to_spec(view_el)?;
            let metadata = match entry.child("metadata") {
                None => ViewMetadata::default(),
                Some(m) => ViewMetadata {
                    author: m.attr("author").unwrap_or_default().to_string(),
                    description: m.child("description").map(|d| d.text()).unwrap_or_default(),
                    keywords: m.children_named("keyword").map(|k| k.text()).collect(),
                },
            };
            library.publish(spec, metadata)?;
        }
        Ok(library)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_library() -> ViewLibrary {
        let mut library = ViewLibrary::new();
        library
            .publish(
                QualityViewSpec::paper_example(),
                ViewMetadata {
                    author: "aberdeen-mcb".into(),
                    description: "PMF identification filtering via universal metrics".into(),
                    keywords: vec!["accuracy".into(), "proteomics".into()],
                },
            )
            .unwrap();
        let mut other = QualityViewSpec::paper_example();
        other.name = "lenient-variant".into();
        library
            .publish(
                other,
                ViewMetadata {
                    author: "manchester-cs".into(),
                    description: "keeps mid-class identifications too".into(),
                    keywords: vec!["recall".into()],
                },
            )
            .unwrap();
        library
    }

    #[test]
    fn publish_get_retract() {
        let mut library = sample_library();
        assert_eq!(library.len(), 2);
        assert!(library.get("ispider-pmf-quality").is_some());
        assert!(library.retract("lenient-variant"));
        assert!(!library.retract("lenient-variant"));
        assert_eq!(library.len(), 1);
        assert!(library.publish(QualityViewSpec::new("  "), ViewMetadata::default()).is_err());
    }

    #[test]
    fn discovery_queries() {
        let library = sample_library();
        assert_eq!(library.find_by_evidence("q:HitRatio").len(), 2);
        assert_eq!(library.find_by_evidence("q:Nothing").len(), 0);
        assert_eq!(library.find_by_tag("ScoreClass").len(), 2);
        assert_eq!(library.search("universal").len(), 1);
        assert_eq!(library.search("MANCHESTER").len(), 1);
        assert_eq!(library.search("accuracy").len(), 1);
    }

    #[test]
    fn xml_catalog_roundtrip() {
        let library = sample_library();
        let xml = library.to_xml();
        let back = ViewLibrary::from_xml(&xml).unwrap();
        assert_eq!(back.len(), library.len());
        for entry in library.iter() {
            let restored = back.get(&entry.spec.name).unwrap();
            assert_eq!(restored.spec, entry.spec);
            assert_eq!(restored.metadata, entry.metadata);
        }
    }

    #[test]
    fn malformed_catalogs_rejected() {
        assert!(ViewLibrary::from_xml("<NotALibrary/>").is_err());
        assert!(ViewLibrary::from_xml("<QualityViewLibrary><entry/></QualityViewLibrary>").is_err());
    }
}
