//! The top-level quality engine: IQ model + service registry + repository
//! catalog + binding registry, with two execution paths.
//!
//! * [`QualityEngine::execute_view`] — the direct interpreter: runs the
//!   abstract quality process in-process (the "rapid prototyping" loop the
//!   paper motivates — edit conditions, re-run, observe);
//! * [`QualityEngine::execute_compiled`] — the paper's §6 path: compile to
//!   a workflow, enact it, decode the action outputs. Both paths produce
//!   identical [`ActionOutcome`]s (covered by integration tests).
//!
//! Both paths start from the same [`qurator_plan::PhysicalPlan`]: the
//! interpreter walks the bound plan sequentially
//! ([`QualityEngine::execute_physical`]); the compiled path wires the
//! same bound operators into a workflow and enacts it wave-parallel.
//! [`QualityEngine::plan_with`] exposes the plan itself (the `qv plan`
//! EXPLAIN surface), and the `*_with` variants accept a
//! [`qurator_plan::PlanConfig`] to select the unoptimized baseline.

use crate::compile;
use crate::operators::GroupResult;
use crate::spec::{ActionDecl, ActionKind, QualityViewSpec};
use crate::validate::{self, ValidatedView};
use crate::{convert, exec, planner, QuratorError, Result};
use parking_lot::RwLock;
use qurator_annotations::RepositoryCatalog;
use qurator_ontology::binding::BindingRegistry;
use qurator_ontology::IqModel;
use qurator_plan::{ActKind, LogicalPlan, PhysicalPlan, PlanConfig};
use qurator_rdf::namespace::q;
use qurator_rdf::term::Term;
use qurator_services::stdlib::{FieldCaptureAnnotator, StatClassifierAssertion, ZScoreAssertion};
use qurator_services::{AnnotationService, AssertionService, DataSet, ServiceRegistry};
use qurator_telemetry::span::{SpanId, SpanKind, SpanRecorder, SpanTrace, TraceSession};
use qurator_telemetry::stats::{profile_file_name, view_key, RunStats, StatsProfile};
use qurator_telemetry::{
    ActionRecord, AssertionRecord, DecisionLedger, DecisionTrace, EvidenceRecord, LedgerEvent,
    LedgerValue, RunId, TelemetryConfig, TraceMeta, TraceRetainer,
};
use qurator_workflow::{Context, Data, EnactmentReport, Enactor, Workflow};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// How many recent per-run stats the engine keeps for `/runs/<id>` joins.
const RUN_STATS_CAPACITY: usize = 256;

/// The result of executing a quality view over a data set: one group per
/// action output (a single group for filters; per-group + default for
/// splitters).
#[derive(Debug, Clone, PartialEq)]
pub struct ActionOutcome {
    pub groups: Vec<GroupResult>,
}

impl ActionOutcome {
    /// The group with the given name.
    pub fn group(&self, name: &str) -> Option<&GroupResult> {
        self.groups.iter().find(|g| g.name == name)
    }

    /// Names of all groups, in declaration order.
    pub fn group_names(&self) -> Vec<&str> {
        self.groups.iter().map(|g| g.name.as_str()).collect()
    }
}

/// Correlation context for one finished execution: the [`RunId`] minted
/// at the entry point (a served request, a CLI invocation) plus the
/// outcome facts the retainer's tail-sampling policy keys on. Built
/// internally by the `execute_*` family and handed to the observability
/// sink so the retained trace, the ledger slice and any drift crossing
/// all reference the same id.
#[derive(Debug, Clone)]
struct RunContext {
    run_id: RunId,
    view: String,
    error: bool,
    rejected: u64,
}

/// The engine.
pub struct QualityEngine {
    iq: Arc<IqModel>,
    registry: Arc<ServiceRegistry>,
    catalog: Arc<RepositoryCatalog>,
    bindings: RwLock<BindingRegistry>,
    ledger: Arc<DecisionLedger>,
    last_trace: RwLock<Option<SpanTrace>>,
    /// Continuous-observability retention (None until
    /// [`QualityEngine::enable_observability`]).
    retainer: RwLock<Option<Arc<TraceRetainer>>>,
    /// This engine's cursor into the global drift monitor's event log.
    drift_cursor: RwLock<Option<u64>>,
    /// Observed-statistics collection switch (on by default; the
    /// paired-delta bench flips it off to price collection itself).
    stats_enabled: AtomicBool,
    /// Recent per-run observed statistics, newest last (bounded ring for
    /// `/runs/<id>` correlation joins).
    run_stats: RwLock<VecDeque<RunStats>>,
    /// Per-view decayed stats profiles, persisted under
    /// `<store root>/stats/` when a store root is set.
    stats_profiles: RwLock<BTreeMap<String, StatsProfile>>,
}

impl QualityEngine {
    /// Builds an engine over an IQ model with empty registry and catalog.
    pub fn new(iq: IqModel) -> Self {
        let iq = Arc::new(iq);
        QualityEngine {
            catalog: Arc::new(RepositoryCatalog::new(iq.clone())),
            registry: Arc::new(ServiceRegistry::new()),
            bindings: RwLock::new(BindingRegistry::new()),
            ledger: Arc::new(DecisionLedger::new()),
            last_trace: RwLock::new(None),
            retainer: RwLock::new(None),
            drift_cursor: RwLock::new(None),
            stats_enabled: AtomicBool::new(true),
            run_stats: RwLock::new(VecDeque::new()),
            stats_profiles: RwLock::new(BTreeMap::new()),
            iq,
        }
    }

    /// An engine preloaded with the running example's semantic model and
    /// services: the Imprint output annotator, the two universal-score QAs
    /// and the §5.1 three-way classifier.
    pub fn with_proteomics_defaults() -> Result<Self> {
        let iq = IqModel::with_proteomics_extension()
            .map_err(|e| QuratorError::Validation(e.to_string()))?;
        let engine = Self::new(iq);
        engine.register_annotation_service(Arc::new(FieldCaptureAnnotator::new(
            q::iri("ImprintOutputAnnotation"),
            &[
                ("hitRatio", q::iri("HitRatio")),
                ("massCoverage", q::iri("MassCoverage")),
                ("peptidesCount", q::iri("PeptidesCount")),
            ],
        )))?;
        engine.register_assertion_service(Arc::new(ZScoreAssertion::new(
            q::iri("UniversalPIScore2"),
            &["coverage", "hitratio", "peptidescount"],
        )))?;
        engine.register_assertion_service(Arc::new(ZScoreAssertion::new(
            q::iri("UniversalPIScore"),
            &["hitratio"],
        )))?;
        engine.register_assertion_service(Arc::new(StatClassifierAssertion::new(
            q::iri("PIScoreClassifier"),
            "score",
            q::iri("PIScoreClassification"),
            (q::iri("low"), q::iri("mid"), q::iri("high")),
        )))?;
        Ok(engine)
    }

    /// The IQ model.
    pub fn iq(&self) -> &Arc<IqModel> {
        &self.iq
    }

    /// The service registry.
    pub fn registry(&self) -> &Arc<ServiceRegistry> {
        &self.registry
    }

    /// The repository catalog.
    pub fn catalog(&self) -> &Arc<RepositoryCatalog> {
        &self.catalog
    }

    /// Roots persistent repositories at `dir` and reopens every store
    /// already present there (one subdirectory per repository). Returns
    /// the names of the reopened repositories; fails fast when a store is
    /// locked by a live process or corrupt.
    pub fn set_store_root(&self, dir: impl Into<std::path::PathBuf>) -> Result<Vec<String>> {
        self.catalog.set_store_root(dir).map_err(|e| QuratorError::Execution(e.to_string()))
    }

    /// Group-commits every repository store (disk-backed repositories
    /// fsync their journal). Hosts call this before acknowledging a run
    /// so annotations survive a crash immediately after the response.
    pub fn flush_stores(&self) -> Result<()> {
        self.catalog.flush_all().map_err(|e| QuratorError::Execution(e.to_string()))
    }

    /// Switches observed-statistics collection on or off (on by default).
    pub fn set_stats_enabled(&self, on: bool) {
        self.stats_enabled.store(on, Ordering::Relaxed);
    }

    /// Whether observed-statistics collection is on.
    pub fn stats_enabled(&self) -> bool {
        self.stats_enabled.load(Ordering::Relaxed)
    }

    /// Observed statistics of the most recent run, if any were recorded.
    pub fn last_run_stats(&self) -> Option<RunStats> {
        self.run_stats.read().back().cloned()
    }

    /// Observed statistics of a specific run still in the bounded ring.
    pub fn run_stats(&self, run: RunId) -> Option<RunStats> {
        self.run_stats.read().iter().rev().find(|s| s.run_id == Some(run)).cloned()
    }

    /// The decayed stats profile of a view: the in-memory aggregate when
    /// this engine has executed the view, else (when a store root is set)
    /// whatever a previous process persisted under `<root>/stats/`.
    pub fn stats_profile(&self, view: &str) -> Option<StatsProfile> {
        if let Some(profile) = self.stats_profiles.read().get(view).cloned() {
            return Some(profile);
        }
        let root = self.catalog.store_root()?;
        StatsProfile::load(&root.join("stats").join(profile_file_name(view))).ok()
    }

    /// Writes every in-memory stats profile under `dir` (one JSON file
    /// per view). Returns the paths written.
    pub fn save_stats_profiles(&self, dir: &std::path::Path) -> Result<Vec<std::path::PathBuf>> {
        let mut written = Vec::new();
        for (view, profile) in self.stats_profiles.read().iter() {
            let path = dir.join(profile_file_name(view));
            profile.save(&path).map_err(|e| {
                QuratorError::Execution(format!("writing stats profile {}: {e}", path.display()))
            })?;
            written.push(path);
        }
        Ok(written)
    }

    /// Folds one run's drained statistics into the ring and the view's
    /// decayed profile (persisting the profile when a store root is set).
    fn note_run_stats(&self, stats: RunStats) {
        if stats.nodes.is_empty() {
            return;
        }
        {
            let mut profiles = self.stats_profiles.write();
            let profile = profiles.entry(stats.view.clone()).or_insert_with(|| {
                let key = view_key(&stats.view, stats.nodes.keys().map(|s| s.as_str()));
                // continue a persisted profile's decay across restarts
                // (but only when the node set still matches — an edited
                // view starts a fresh profile under its new key)
                self.catalog
                    .store_root()
                    .and_then(|root| {
                        StatsProfile::load(
                            &root.join("stats").join(profile_file_name(&stats.view)),
                        )
                        .ok()
                    })
                    .filter(|persisted| persisted.key == key)
                    .unwrap_or_else(|| StatsProfile::new(stats.view.clone(), key))
            });
            profile.observe(&stats);
            if let Some(root) = self.catalog.store_root() {
                // best-effort persistence: a read-only store directory
                // must not fail the run itself
                let _ = profile.save(&root.join("stats").join(profile_file_name(&stats.view)));
            }
        }
        let mut ring = self.run_stats.write();
        if ring.len() >= RUN_STATS_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(stats);
    }

    /// Projects the repository catalog to the facts the static analyzer
    /// consumes: name, persistence, and the evidence-type inventory of
    /// each bound store (drives the QV024 availability domain).
    pub fn catalog_facts(&self) -> qurator_qvlint::dataflow::CatalogFacts {
        let mut repositories = Vec::new();
        for name in self.catalog.names() {
            let Some(repo) = self.catalog.get(&name) else { continue };
            repositories.push(qurator_qvlint::dataflow::RepoFacts {
                name,
                persistent: repo.is_persistent(),
                provides: repo
                    .annotated_evidence_types()
                    .into_iter()
                    .map(|e| e.to_string())
                    .collect(),
            });
        }
        qurator_qvlint::dataflow::CatalogFacts { repositories }
    }

    /// Snapshot of the binding registry (concept → resource locator).
    pub fn bindings(&self) -> Vec<qurator_ontology::binding::Binding> {
        self.bindings.read().iter().collect()
    }

    /// The per-item decision-provenance ledger. Disabled by default;
    /// enable with [`QualityEngine::set_provenance_enabled`] before an
    /// execution to capture evidence/assertion/action records.
    pub fn ledger(&self) -> &Arc<DecisionLedger> {
        &self.ledger
    }

    /// Turns decision-provenance recording on or off.
    pub fn set_provenance_enabled(&self, enabled: bool) {
        self.ledger.set_enabled(enabled);
    }

    /// The full decision trace for an item (exact id match), if the
    /// ledger recorded one: evidence fetched, quality tags assigned,
    /// actions taken.
    pub fn why(&self, item: &str) -> Option<DecisionTrace> {
        self.ledger.why(item)
    }

    /// Decision traces whose item id equals or ends with `needle`
    /// (convenient for short ids like `H3`).
    pub fn explain_item(&self, needle: &str) -> Vec<DecisionTrace> {
        self.ledger.find(needle)
    }

    /// The span trace of the most recent execution on this engine
    /// (either path), if any.
    pub fn last_trace(&self) -> Option<SpanTrace> {
        self.last_trace.read().clone()
    }

    /// Switches the engine into continuous-observability mode: every
    /// finished execution's trace is offered to a bounded, tail-sampled
    /// [`TraceRetainer`], and the process-global drift monitor is
    /// configured from `config.drift` (the QA operator path feeds it and
    /// threshold crossings are republished into this engine's ledger).
    /// Returns the retainer so hosts (`qv serve`) can export
    /// `/traces/recent`.
    pub fn enable_observability(&self, config: &TelemetryConfig) -> Arc<TraceRetainer> {
        let retainer = Arc::new(TraceRetainer::new(config));
        *self.retainer.write() = Some(retainer.clone());
        qurator_telemetry::drift::global().configure(config.drift.clone());
        retainer
    }

    /// The active trace retainer, if observability is enabled.
    pub fn retainer(&self) -> Option<Arc<TraceRetainer>> {
        self.retainer.read().clone()
    }

    /// Hands a finished trace to the retainer (when observability is
    /// on), republishes new drift crossings into the ledger, and stores
    /// the trace as `last_trace`. Everything downstream of here carries
    /// the context's run id.
    fn observe_trace(&self, trace: SpanTrace, ctx: RunContext) {
        if let Some(retainer) = self.retainer.read().clone() {
            retainer.offer(
                trace.clone(),
                TraceMeta {
                    view: ctx.view,
                    run_id: ctx.run_id,
                    error: ctx.error,
                    rejected: ctx.rejected,
                },
            );
        }
        self.publish_drift_events(ctx.run_id);
        *self.last_trace.write() = Some(trace);
    }

    /// Republishes drift threshold-crossings from the process-global
    /// monitor into this engine's ledger, stamped with the run that
    /// tripped them. Each engine keeps its own cursor: the monitor's
    /// event log has broadcast semantics, so several engines (or tests)
    /// consume it independently.
    fn publish_drift_events(&self, run: RunId) {
        let monitor = qurator_telemetry::drift::global();
        if !monitor.enabled() {
            return;
        }
        let mut cursor = self.drift_cursor.write();
        for event in monitor.events_since(*cursor) {
            *cursor = Some(event.seq);
            self.ledger.record_event(LedgerEvent {
                kind: Arc::from("qa.drift.threshold"),
                subject: Arc::from(event.assertion.as_str()),
                detail: format!(
                    "classification distribution drifted from reference: L1={:.3}, chi2={:.1}",
                    event.l1, event.chi2
                ),
                seq: event.seq,
                run_id: Some(run),
            });
        }
    }

    /// Registers an annotation service and binds its concept.
    pub fn register_annotation_service(&self, service: Arc<dyn AnnotationService>) -> Result<()> {
        let concept = service.service_type();
        self.registry
            .register_annotator(service)
            .map_err(|e| QuratorError::Validation(e.to_string()))?;
        self.bindings.write().bind_service(concept.clone(), format!("local:{concept}"));
        Ok(())
    }

    /// Registers an assertion service and binds its concept.
    pub fn register_assertion_service(&self, service: Arc<dyn AssertionService>) -> Result<()> {
        let concept = service.service_type();
        self.registry
            .register_assertion(service)
            .map_err(|e| QuratorError::Validation(e.to_string()))?;
        self.bindings.write().bind_service(concept.clone(), format!("local:{concept}"));
        Ok(())
    }

    /// Validates a spec against the IQ model and registry.
    pub fn validate(&self, spec: &QualityViewSpec) -> Result<ValidatedView> {
        let view = validate::validate(spec, &self.iq, &self.registry)?;
        // the binding step (§6): every abstract operator must have a
        // service binding before compilation can target an environment
        let bindings = self.bindings.read();
        for concept in view.annotator_types.iter().chain(&view.assertion_types) {
            bindings
                .service_locator(concept)
                .map_err(|e| QuratorError::Validation(e.to_string()))?;
        }
        Ok(view)
    }

    /// Compiles a spec into an executable quality workflow.
    pub fn compile(&self, spec: &QualityViewSpec) -> Result<Workflow> {
        self.compile_with(spec, &PlanConfig::default())
    }

    /// Compiles through an explicit plan configuration.
    pub fn compile_with(&self, spec: &QualityViewSpec, config: &PlanConfig) -> Result<Workflow> {
        let view = self.validate(spec)?;
        compile::compile_with(&view, &self.iq, &self.registry, &self.catalog, config)
    }

    /// The logical plan of a view: one typed node per operator, before
    /// any optimization.
    pub fn logical_plan(&self, spec: &QualityViewSpec) -> Result<LogicalPlan> {
        let view = self.validate(spec)?;
        Ok(planner::logical_plan(&view, &self.iq))
    }

    /// The optimized physical plan of a view — what both executors will
    /// run, and what `qv plan` renders.
    pub fn plan(&self, spec: &QualityViewSpec) -> Result<PhysicalPlan> {
        self.plan_with(spec, &PlanConfig::default())
    }

    /// The physical plan under an explicit configuration
    /// (`optimize: false` yields the `--no-opt` baseline).
    pub fn plan_with(&self, spec: &QualityViewSpec, config: &PlanConfig) -> Result<PhysicalPlan> {
        let view = self.validate(spec)?;
        planner::physical_plan(&view, &self.iq, config)
    }

    /// The physical plan lowered with the view's observed stats profile
    /// (when one exists — in memory or persisted under the store root):
    /// the `stats-profile` pass installs the decayed cardinalities as
    /// [`PhysicalPlan::observed_rows`], the cost-model input. Without a
    /// profile this is identical to [`QualityEngine::plan_with`].
    pub fn plan_with_stats(
        &self,
        spec: &QualityViewSpec,
        config: &PlanConfig,
    ) -> Result<PhysicalPlan> {
        let view = self.validate(spec)?;
        let logical = planner::logical_plan(&view, &self.iq);
        let profile = self.stats_profile(&spec.name);
        qurator_plan::lower_with_profile(&logical, config, profile.as_ref())
            .map_err(|e| QuratorError::Compile(e.to_string()))
    }

    /// Runs the full `qv check` analysis: every view-level lint pass, the
    /// binding layer, and — when the view is otherwise clean — the
    /// compiled-workflow pass. Unlike [`QualityEngine::validate`] this
    /// never fails early: all findings come back as diagnostics, and an
    /// empty error set means the view would validate, compile and deploy.
    /// Passing the parsed source `Element` anchors findings to
    /// line/column positions in the original document.
    pub fn check(
        &self,
        spec: &QualityViewSpec,
        source: Option<&qurator_xml::Element>,
    ) -> Vec<qurator_qvlint::Diagnostic> {
        use qurator_qvlint::Diagnostic;

        let report = crate::lint::analyze(spec, &self.iq, &self.registry, source);
        let mut diags = report.diagnostics;
        if let Some(view) = &report.resolved {
            {
                let bindings = self.bindings.read();
                for concept in view.annotator_types.iter().chain(&view.assertion_types) {
                    if let Err(e) = bindings.service_locator(concept) {
                        diags.push(
                            Diagnostic::error("QV009", e.to_string())
                                .at(source.and_then(|el| el.span()))
                                .help("bind a service locator for the concept before deployment"),
                        );
                    }
                }
            }
            if !qurator_qvlint::has_errors(&diags) {
                let started = std::time::Instant::now();
                let mark = diags.len();
                match compile::compile(view, &self.iq, &self.registry, &self.catalog) {
                    Err(e) => diags.push(
                        Diagnostic::error(
                            "WF005",
                            format!("view failed to compile into a workflow: {e}"),
                        )
                        .at(source.and_then(|el| el.span())),
                    ),
                    Ok(workflow) => {
                        let span = source.and_then(|el| el.span());
                        // graph-shape checks need the wired workflow …
                        diags.extend(qurator_qvlint::workflow::analyze_graph(&workflow, span));
                        // … while the usage findings (WF003/WF004) read
                        // the plan IR both executors consume
                        let logical = planner::logical_plan(view, &self.iq);
                        if let Ok(physical) =
                            planner::physical_plan(view, &self.iq, &PlanConfig::default())
                        {
                            diags.extend(qurator_qvlint::plan::analyze_plan(
                                &logical, &physical, span,
                            ));
                            // whole-plan dataflow: availability (QV024),
                            // path-lifted value domains (QV025/QV026),
                            // wave write conflicts (WF006)
                            let spans = crate::lint::span_index(source, spec, &self.iq);
                            diags.extend(qurator_qvlint::dataflow::analyze_dataflow(
                                &logical,
                                &physical,
                                &self.catalog_facts(),
                                &spans,
                            ));
                        }
                    }
                }
                qurator_qvlint::record_pass_telemetry(
                    "workflow",
                    started.elapsed(),
                    &diags[mark..],
                );
            }
        }
        qurator_qvlint::sort_diagnostics(&mut diags);
        diags
    }

    /// Direct interpretation of the quality process (§4's semantics
    /// without the workflow detour). Mints a fresh [`RunId`] for the
    /// execution; hosts that already minted one at their entry point
    /// (e.g. `qv serve` echoing `X-QV-Run-Id`) use
    /// [`QualityEngine::execute_view_run`] instead.
    pub fn execute_view(&self, spec: &QualityViewSpec, dataset: &DataSet) -> Result<ActionOutcome> {
        self.execute_view_with(spec, dataset, &PlanConfig::default())
    }

    /// Direct interpretation under a caller-minted run id.
    pub fn execute_view_run(
        &self,
        spec: &QualityViewSpec,
        dataset: &DataSet,
        run: RunId,
    ) -> Result<ActionOutcome> {
        self.execute_view_run_with(spec, dataset, &PlanConfig::default(), run)
    }

    /// Direct interpretation under an explicit plan configuration.
    pub fn execute_view_with(
        &self,
        spec: &QualityViewSpec,
        dataset: &DataSet,
        config: &PlanConfig,
    ) -> Result<ActionOutcome> {
        self.execute_view_run_with(spec, dataset, config, RunId::mint())
    }

    /// Direct interpretation under an explicit plan configuration and a
    /// caller-minted run id.
    pub fn execute_view_run_with(
        &self,
        spec: &QualityViewSpec,
        dataset: &DataSet,
        config: &PlanConfig,
        run: RunId,
    ) -> Result<ActionOutcome> {
        let view = self.validate(spec)?;
        self.execute_validated_run_with(&view, dataset, config, run)
    }

    /// Direct interpretation of an already-validated view.
    pub fn execute_validated(
        &self,
        view: &ValidatedView,
        dataset: &DataSet,
    ) -> Result<ActionOutcome> {
        self.execute_validated_with(view, dataset, &PlanConfig::default())
    }

    /// Direct interpretation of an already-validated view under an
    /// explicit plan configuration.
    pub fn execute_validated_with(
        &self,
        view: &ValidatedView,
        dataset: &DataSet,
        config: &PlanConfig,
    ) -> Result<ActionOutcome> {
        self.execute_validated_run_with(view, dataset, config, RunId::mint())
    }

    /// Direct interpretation of an already-validated view under an
    /// explicit plan configuration and a caller-minted run id.
    pub fn execute_validated_run_with(
        &self,
        view: &ValidatedView,
        dataset: &DataSet,
        config: &PlanConfig,
        run: RunId,
    ) -> Result<ActionOutcome> {
        let plan = planner::physical_plan(view, &self.iq, config)?;
        self.execute_physical_run(&plan, dataset, run)
    }

    /// The sequential plan walker: binds the physical plan to services
    /// and repositories, then runs the nodes in process order. Each plan
    /// node leaves a `node:<name>` span, so the interpreter's trace and
    /// the enactor's events name the same units of work.
    ///
    /// The trace is always finished: on an error the `view:` span is
    /// tagged with the error text, remaining open spans are closed at the
    /// failure instant, and the trace still reaches the retainer (error
    /// traces are always kept) and `last_trace`.
    pub fn execute_physical(
        &self,
        plan: &PhysicalPlan,
        dataset: &DataSet,
    ) -> Result<ActionOutcome> {
        self.execute_physical_run(plan, dataset, RunId::mint())
    }

    /// The sequential plan walker under a caller-minted run id: the root
    /// `view:` span, the retained trace, the ledger's decision traces and
    /// any drift crossing this run trips all carry `run`.
    pub fn execute_physical_run(
        &self,
        plan: &PhysicalPlan,
        dataset: &DataSet,
        run: RunId,
    ) -> Result<ActionOutcome> {
        qurator_telemetry::metrics()
            .counter_with("engine.execute.count", &[("path", "interpreted")])
            .inc();
        let bound = exec::bind(plan, &self.iq, &self.registry, &self.catalog)?;
        bound.stats.set_enabled(self.stats_enabled());
        let session = TraceSession::new();
        let mut rec = session.recorder();
        let view_span = rec.start(format!("view:{}", plan.view), SpanKind::View, None);
        rec.attr(view_span, "path", "interpreted");
        rec.attr(view_span, "run_id", run.to_string());
        rec.attr(view_span, "items", dataset.len());
        rec.attr(view_span, "mode", if plan.optimized { "optimized" } else { "baseline" });

        let result = self.run_physical(plan, &bound, dataset, &mut rec, view_span, run);
        let (error, rejected) = match &result {
            Ok((_, rejected)) => (false, *rejected),
            Err(e) => {
                rec.attr(view_span, "error", e.to_string());
                (true, 0)
            }
        };
        rec.attr(view_span, "rejected", rejected as usize);
        // closes the view span and, on the error path, whichever node or
        // phase span the failure interrupted
        rec.end_open();
        let trace = SpanTrace::from_spans(rec.finish());
        self.note_run_stats(bound.stats.drain(&plan.view, Some(run), dataset.len() as u64));
        self.observe_trace(
            trace,
            RunContext { run_id: run, view: plan.view.clone(), error, rejected },
        );
        result.map(|(groups, _)| ActionOutcome { groups })
    }

    /// The walker body: every node of the plan, in process order.
    /// Returns the action groups plus how many items filter actions
    /// rejected (a splitter's non-matches land in its default group — an
    /// output, not a rejection).
    fn run_physical(
        &self,
        plan: &PhysicalPlan,
        bound: &exec::BoundPlan,
        dataset: &DataSet,
        rec: &mut SpanRecorder,
        view_span: SpanId,
        run: RunId,
    ) -> Result<(Vec<GroupResult>, u64)> {
        // Annotate nodes
        for (name, processor) in &bound.annotators {
            let span = rec.start(format!("node:{name}"), SpanKind::Node, Some(view_span));
            processor.annotate(dataset)?;
            rec.end(span);
        }

        // the Enrich node
        let enrich_span = rec.start(
            format!("node:{}", qurator_plan::ENRICH_NODE),
            SpanKind::Node,
            Some(view_span),
        );
        let mut map = bound.enrichment.enrich(dataset.items())?;
        rec.attr(enrich_span, "evidence_types", plan.fetch_count());
        rec.attr(enrich_span, "groups", plan.enrich.len());
        rec.end(enrich_span);

        // Assert nodes, in plan order (tags accumulate in the one map)
        let mut tag_meta: Vec<(&str, &str, u64)> = Vec::with_capacity(plan.assertions.len());
        for (assert, bound_assert) in plan.assertions.iter().zip(&bound.assertions) {
            let span =
                rec.start(format!("node:{}", bound_assert.name), SpanKind::Node, Some(view_span));
            rec.attr(span, "tag", assert.node.tag.as_str());
            bound_assert.processor.assert_quality(&mut map)?;
            rec.end(span);
            tag_meta.push((&assert.node.tag, &bound_assert.name, span.0));
        }

        // the Consolidate node is implicit here — the walker accumulates
        // into a single map — but it is recorded so both executors leave
        // the same node names behind
        let consolidate_span = rec.start(
            format!("node:{}", qurator_plan::CONSOLIDATE_NODE),
            SpanKind::Node,
            Some(view_span),
        );
        rec.attr(consolidate_span, "assertions", plan.assertions.len());
        rec.end(consolidate_span);

        // Act nodes (remembering each action's slice of the group list
        // so provenance can attribute memberships per action)
        let mut groups: Vec<GroupResult> = Vec::new();
        let mut action_slices: Vec<(usize, usize)> = Vec::with_capacity(plan.actions.len());
        let mut action_spans: Vec<u64> = Vec::with_capacity(plan.actions.len());
        for (name, processor) in &bound.actions {
            let span = rec.start(format!("node:{name}"), SpanKind::Node, Some(view_span));
            let start = groups.len();
            groups.extend(processor.apply(dataset, &map)?);
            action_slices.push((start, groups.len()));
            rec.attr(span, "groups", groups.len() - start);
            rec.end(span);
            action_spans.push(span.0);
        }

        // decision provenance: one pass over the consolidated map, one
        // complete trace per item (no per-phase re-keying). The span is
        // recorded unconditionally — `qv explain --spans` and the
        // retained-trace exports rely on the interpreter's trace shape
        // being identical across runs, whether or not the ledger captured
        // records and whether or not any item survived an action; the
        // `recorded` attribute says which mode this run was in.
        let prov_span = rec.start("phase:provenance", SpanKind::Phase, Some(view_span));
        rec.attr(prov_span, "recorded", self.ledger.enabled());
        rec.attr(prov_span, "items", map.len());
        if self.ledger.enabled() {
            // intern every per-run-constant name once; per item only the
            // rendered values and the item key allocate
            let sources: BTreeMap<&str, (Arc<str>, Option<Arc<str>>)> = plan
                .enrich
                .iter()
                .flat_map(|group| {
                    group.evidence.iter().map(|e| {
                        (
                            e.local_name(),
                            (Arc::from(e.local_name()), Some(Arc::from(group.repository.as_str()))),
                        )
                    })
                })
                .collect();
            type InternedTag<'a> = (&'a str, Arc<str>, Option<Arc<str>>, u64);
            let tags: Vec<InternedTag> = tag_meta
                .iter()
                .map(|&(tag, service, span)| (tag, Arc::from(tag), Some(Arc::from(service)), span))
                .collect();
            let accepted: Arc<str> = Arc::from("accepted");
            let rejected: Arc<str> = Arc::from("rejected");
            enum ActionPlan {
                Filter { group: Arc<str>, condition: Option<Arc<str>>, members: usize, span: u64 },
                Split { targets: Vec<(Arc<str>, Option<Arc<str>>, usize)>, span: u64 },
            }
            // per-group membership sets, borrowed from the group datasets
            let memberships: Vec<HashSet<&Term>> =
                groups.iter().map(|g| g.dataset.items().iter().collect()).collect();
            let plans: Vec<ActionPlan> = plan
                .actions
                .iter()
                .zip(&action_slices)
                .zip(&action_spans)
                .map(|((act, &(start, end)), &span)| match &act.node.kind {
                    ActKind::Filter { condition } => ActionPlan::Filter {
                        group: Arc::from(act.node.name.as_str()),
                        condition: Some(Arc::from(condition.as_str())),
                        members: start,
                        span,
                    },
                    ActKind::Split { groups: conditions } => ActionPlan::Split {
                        targets: (start..end)
                            .map(|i| {
                                let result = &groups[i];
                                let condition = conditions
                                    .iter()
                                    .find(|(name, _)| result.name.ends_with(&format!("/{name}")))
                                    .map(|(_, c)| Arc::from(c.as_str()));
                                (Arc::from(result.name.as_str()), condition, i)
                            })
                            .collect(),
                        span,
                    },
                })
                .collect();
            let mut batch = Vec::with_capacity(map.len());
            let mut interned: HashMap<&str, Arc<str>> = HashMap::new();
            for (term, row) in map.rows() {
                let mut trace = DecisionTrace::new(item_key(term));
                trace.run_id = Some(run);
                trace.evidence = row
                    .evidence_entries()
                    .map(|(property, value)| {
                        let (property, source) = sources
                            .get(property.local_name())
                            .cloned()
                            .unwrap_or_else(|| (Arc::from(property.local_name()), None));
                        EvidenceRecord {
                            property,
                            value: capture_value(&mut interned, value),
                            source,
                            span: Some(enrich_span.0),
                        }
                    })
                    .collect();
                trace.assertions = tags
                    .iter()
                    .filter_map(|(tag, property, assertion, span)| {
                        let value = row.tag_ref(tag).filter(|v| !v.is_null())?;
                        Some(AssertionRecord {
                            property: property.clone(),
                            value: capture_value(&mut interned, value),
                            assertion: assertion.clone(),
                            span: Some(*span),
                        })
                    })
                    .collect();
                for action_plan in &plans {
                    match action_plan {
                        ActionPlan::Filter { group, condition, members, span } => {
                            let is_member =
                                memberships.get(*members).is_some_and(|m| m.contains(term));
                            trace.actions.push(ActionRecord {
                                group: group.clone(),
                                outcome: if is_member {
                                    accepted.clone()
                                } else {
                                    rejected.clone()
                                },
                                condition: condition.clone(),
                                span: Some(*span),
                            });
                        }
                        ActionPlan::Split { targets, span } => {
                            for (group, condition, index) in targets {
                                if !memberships[*index].contains(term) {
                                    continue;
                                }
                                trace.actions.push(ActionRecord {
                                    group: group.clone(),
                                    outcome: accepted.clone(),
                                    condition: condition.clone(),
                                    span: Some(*span),
                                });
                            }
                        }
                    }
                }
                batch.push(trace);
            }
            self.ledger.record_traces_bulk(batch);
        }
        rec.end(prov_span);

        // rejected tally for the retainer's tail-sampling policy
        let mut rejected = 0u64;
        for (act, &(start, _)) in plan.actions.iter().zip(&action_slices) {
            if matches!(act.node.kind, ActKind::Filter { .. }) {
                if let Some(group) = groups.get(start) {
                    rejected += dataset.len().saturating_sub(group.dataset.len()) as u64;
                }
            }
        }
        Ok((groups, rejected))
    }

    /// The full §6 path: compile, enact, decode.
    pub fn execute_compiled(
        &self,
        spec: &QualityViewSpec,
        dataset: &DataSet,
    ) -> Result<(ActionOutcome, EnactmentReport)> {
        self.execute_compiled_with(spec, dataset, &PlanConfig::default())
    }

    /// The §6 path under a caller-minted run id.
    pub fn execute_compiled_run(
        &self,
        spec: &QualityViewSpec,
        dataset: &DataSet,
        run: RunId,
    ) -> Result<(ActionOutcome, EnactmentReport)> {
        self.execute_compiled_run_with(spec, dataset, &PlanConfig::default(), run)
    }

    /// The §6 path under an explicit plan configuration.
    pub fn execute_compiled_with(
        &self,
        spec: &QualityViewSpec,
        dataset: &DataSet,
        config: &PlanConfig,
    ) -> Result<(ActionOutcome, EnactmentReport)> {
        self.execute_compiled_run_with(spec, dataset, config, RunId::mint())
    }

    /// The §6 path under an explicit plan configuration and a
    /// caller-minted run id.
    pub fn execute_compiled_run_with(
        &self,
        spec: &QualityViewSpec,
        dataset: &DataSet,
        config: &PlanConfig,
        run: RunId,
    ) -> Result<(ActionOutcome, EnactmentReport)> {
        qurator_telemetry::metrics()
            .counter_with("engine.execute.count", &[("path", "compiled")])
            .inc();
        let view = self.validate(spec)?;
        let (workflow, stats) =
            compile::compile_collecting(&view, &self.iq, &self.registry, &self.catalog, config)?;
        stats.set_enabled(self.stats_enabled());
        let inputs = BTreeMap::from([(
            compile::DATASET_INPUT.to_string(),
            convert::dataset_to_data(dataset),
        )]);
        let report = Enactor::new().with_run_id(run).run(&workflow, &inputs, &Context::new())?;
        self.note_run_stats(stats.drain(&spec.name, Some(run), dataset.len() as u64));
        let outcome = decode_outcome(spec, &report.outputs)?;
        if self.ledger.enabled() {
            self.record_compiled_provenance(spec, dataset, &outcome, &report, run);
        }
        let rejected = spec
            .actions
            .iter()
            .filter(|a| matches!(a.kind, ActionKind::Filter { .. }))
            .filter_map(|a| outcome.group(&a.name))
            .map(|g| dataset.len().saturating_sub(g.dataset.len()) as u64)
            .sum();
        self.observe_trace(
            report.trace().clone(),
            RunContext { run_id: run, view: spec.name.clone(), error: false, rejected },
        );
        Ok((outcome, report))
    }

    /// Reconstructs per-item provenance from a decoded enactment outcome.
    ///
    /// The compiled path runs inside the workflow engine, so the records
    /// are recovered from the surviving group maps rather than observed
    /// in-line; they link to the producing *node* spans of the enactment
    /// trace instead of interpreter phase spans.
    fn record_compiled_provenance(
        &self,
        spec: &QualityViewSpec,
        dataset: &DataSet,
        outcome: &ActionOutcome,
        report: &EnactmentReport,
        run: RunId,
    ) {
        let node_span = |node: &str| report.event(node).and_then(|e| e.span).map(|s| s.0);
        let enrich_span = node_span(compile::DATA_ENRICHMENT);
        // service name that produced each tag (declaration order; later
        // declarations with the same tag win, matching accumulation order)
        let tag_service: BTreeMap<&str, &str> = spec
            .assertions
            .iter()
            .map(|d| (d.tag_name.as_str(), d.service_name.as_str()))
            .collect();
        let mut evidence: Vec<(String, Vec<EvidenceRecord>)> = Vec::new();
        let mut assertions: Vec<(String, Vec<AssertionRecord>)> = Vec::new();
        let mut seen: HashSet<String> = HashSet::new();
        let mut interned: HashMap<&str, Arc<str>> = HashMap::new();
        for group in &outcome.groups {
            for it in group.map.items() {
                let key = item_key(it);
                if !seen.insert(key.clone()) {
                    continue;
                }
                let Some(row) = group.map.item(it) else { continue };
                evidence.push((
                    key.clone(),
                    row.evidence_entries()
                        .map(|(property, value)| EvidenceRecord {
                            property: Arc::from(property.local_name()),
                            value: capture_value(&mut interned, value),
                            source: None,
                            span: enrich_span,
                        })
                        .collect(),
                ));
                assertions.push((
                    key,
                    row.tag_entries()
                        .map(|(tag, value)| AssertionRecord {
                            property: Arc::from(tag),
                            value: capture_value(&mut interned, value),
                            assertion: tag_service.get(tag).map(|s| Arc::from(*s)),
                            span: tag_service.get(tag).and_then(|service| node_span(service)),
                        })
                        .collect(),
                ));
            }
        }
        self.ledger.record_evidence_bulk(Some(run), evidence);
        self.ledger.record_assertions_bulk(Some(run), assertions);
        for action in &spec.actions {
            let results: Vec<GroupResult> = outcome
                .groups
                .iter()
                .filter(|g| {
                    g.name == action.name || g.name.starts_with(&format!("{}/", action.name))
                })
                .cloned()
                .collect();
            self.ledger.record_actions_bulk(
                Some(run),
                action_records(action, &results, dataset, node_span(&action.name)),
            );
        }
    }

    /// Drops all cache-repository contents (between process executions).
    pub fn finish_execution(&self) -> usize {
        self.catalog.clear_caches()
    }
}

/// Ledger key for an item: the bare IRI when the term is one, else its
/// display form.
fn item_key(term: &Term) -> String {
    term.as_iri().map(|i| i.as_str().to_string()).unwrap_or_else(|| term.to_string())
}

/// One string interned per distinct value per run — classification
/// labels and repeated text pay one allocation instead of one per
/// record.
fn intern<'a>(cache: &mut HashMap<&'a str, Arc<str>>, s: &'a str) -> Arc<str> {
    if let Some(shared) = cache.get(s) {
        return shared.clone();
    }
    let shared: Arc<str> = Arc::from(s);
    cache.insert(s, shared.clone());
    shared
}

/// Converts an [`EvidenceValue`] into its captured ledger form without
/// rendering it: numbers and booleans copy, strings intern through
/// `cache`. Provenance capture sits on the serve hot path, so this
/// keeps the formatting machinery out of it (see
/// [`qurator_telemetry::LedgerValue`]).
fn capture_value<'a>(
    cache: &mut HashMap<&'a str, Arc<str>>,
    value: &'a qurator_annotations::EvidenceValue,
) -> LedgerValue {
    use qurator_annotations::EvidenceValue;
    match value {
        EvidenceValue::Number(n) => LedgerValue::Num(*n),
        EvidenceValue::Text(s) => LedgerValue::Text(intern(cache, s)),
        EvidenceValue::Bool(b) => LedgerValue::Bool(*b),
        EvidenceValue::Class(c) => LedgerValue::Raw(intern(cache, c.local_name())),
        EvidenceValue::Null => LedgerValue::Null,
    }
}

/// Builds the per-item action records for one action's group results:
/// group members are `accepted`; for filters, non-members are `rejected`
/// (a splitter's non-members land in its default group instead).
fn action_records(
    action: &ActionDecl,
    results: &[GroupResult],
    dataset: &DataSet,
    span: Option<u64>,
) -> Vec<(String, ActionRecord)> {
    let mut batch = Vec::new();
    match &action.kind {
        ActionKind::Filter { condition } => {
            let Some(group) = results.first() else { return batch };
            let members: HashSet<&Term> = group.dataset.items().iter().collect();
            let name: Arc<str> = Arc::from(group.name.as_str());
            let condition: Arc<str> = Arc::from(condition.as_str());
            let (accepted, rejected): (Arc<str>, Arc<str>) =
                (Arc::from("accepted"), Arc::from("rejected"));
            for it in dataset.items() {
                let is_member = members.contains(it);
                batch.push((
                    item_key(it),
                    ActionRecord {
                        group: name.clone(),
                        outcome: if is_member { accepted.clone() } else { rejected.clone() },
                        condition: Some(condition.clone()),
                        span,
                    },
                ));
            }
        }
        ActionKind::Split { groups } => {
            let accepted: Arc<str> = Arc::from("accepted");
            for result in results {
                let condition: Option<Arc<str>> = groups
                    .iter()
                    .find(|(name, _)| result.name.ends_with(&format!("/{name}")))
                    .map(|(_, c)| Arc::from(c.as_str()));
                let name: Arc<str> = Arc::from(result.name.as_str());
                for it in result.dataset.items() {
                    batch.push((
                        item_key(it),
                        ActionRecord {
                            group: name.clone(),
                            outcome: accepted.clone(),
                            condition: condition.clone(),
                            span,
                        },
                    ));
                }
            }
        }
    }
    batch
}

/// Decodes workflow outputs into an [`ActionOutcome`], preserving the
/// spec's action/group declaration order.
fn decode_outcome(
    spec: &QualityViewSpec,
    outputs: &BTreeMap<String, Data>,
) -> Result<ActionOutcome> {
    let mut expected: Vec<String> = Vec::new();
    for action in &spec.actions {
        match &action.kind {
            ActionKind::Filter { .. } => expected.push(action.name.clone()),
            ActionKind::Split { groups } => {
                for (group, _) in groups {
                    expected.push(format!("{}/{group}", action.name));
                }
                expected.push(format!("{}/default", action.name));
            }
        }
    }
    let mut result = Vec::with_capacity(expected.len());
    for name in expected {
        let data = outputs.get(&name).ok_or_else(|| {
            QuratorError::Execution(format!("workflow produced no output {name:?}"))
        })?;
        let dataset =
            convert::data_to_dataset(data.field("dataset").ok_or_else(|| {
                QuratorError::Execution(format!("group {name:?} lacks dataset"))
            })?)?;
        let map = convert::data_to_map(
            data.field("map")
                .ok_or_else(|| QuratorError::Execution(format!("group {name:?} lacks map")))?,
        )?;
        result.push(GroupResult { name, dataset, map });
    }
    Ok(ActionOutcome { groups: result })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_annotations::EvidenceValue;
    use qurator_rdf::term::Term;

    fn item(n: u32) -> Term {
        Term::iri(format!("urn:lsid:pedro.man.ac.uk:hit:H{n}"))
    }

    /// Imprint-shaped data: hitRatio/massCoverage/peptidesCount payloads.
    fn imprint_dataset() -> DataSet {
        let rows: [(u32, f64, f64, i64); 5] = [
            (1, 0.90, 45.0, 12),
            (2, 0.70, 30.0, 9),
            (3, 0.40, 22.0, 6),
            (4, 0.20, 10.0, 3),
            (5, 0.05, 4.0, 1),
        ];
        let mut ds = DataSet::new();
        for (i, hr, mc, pc) in rows {
            ds.push(
                item(i),
                [
                    ("hitRatio", EvidenceValue::from(hr)),
                    ("massCoverage", EvidenceValue::from(mc)),
                    ("peptidesCount", EvidenceValue::from(pc)),
                ],
            );
        }
        ds
    }

    #[test]
    fn paper_view_interpreted() {
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        let spec = QualityViewSpec::paper_example();
        // the paper condition uses HR_MC > 20, but our z-score scale is
        // centred on 0; use the classifier alone
        let mut spec = spec;
        spec.actions[0].kind =
            ActionKind::Filter { condition: "ScoreClass in q:high, q:mid and HR_MC > 0".into() };
        let outcome = engine.execute_view(&spec, &imprint_dataset()).unwrap();
        let kept = outcome.group("filter top k score").unwrap();
        assert!(!kept.dataset.is_empty());
        assert!(kept.dataset.len() < 5, "filtering must drop something");
        // survivors carry their tags in the restricted map
        let first = &kept.dataset.items()[0];
        assert!(kept.map.item(first).unwrap().tag("HR_MC").as_number().is_some());
    }

    #[test]
    fn compiled_path_agrees_with_interpreter() {
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        let mut spec = QualityViewSpec::paper_example();
        spec.actions[0].kind =
            ActionKind::Filter { condition: "ScoreClass in q:high, q:mid and HR_MC > 0".into() };
        let dataset = imprint_dataset();
        let interpreted = engine.execute_view(&spec, &dataset).unwrap();
        engine.finish_execution();
        let (compiled, report) = engine.execute_compiled(&spec, &dataset).unwrap();
        assert_eq!(interpreted, compiled);
        assert!(report.events.len() >= 6);
    }

    #[test]
    fn splitter_outcome_groups() {
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        let mut spec = QualityViewSpec::paper_example();
        spec.actions[0].kind = ActionKind::Split {
            groups: vec![
                ("strong".into(), "ScoreClass in q:high".into()),
                ("weak".into(), "ScoreClass in q:low".into()),
            ],
        };
        let outcome = engine.execute_view(&spec, &imprint_dataset()).unwrap();
        assert_eq!(
            outcome.group_names(),
            vec![
                "filter top k score/strong",
                "filter top k score/weak",
                "filter top k score/default"
            ]
        );
        let total: usize = outcome.groups.iter().map(|g| g.dataset.len()).sum();
        // disjoint conditions here: groups + default cover the input
        assert_eq!(total, 5);
    }

    #[test]
    fn unbound_concept_fails_validation() {
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        // a concept in the IQ model but with no service binding
        let mut iq = (**engine.iq()).clone();
        iq.register_assertion_type("Orphan").unwrap();
        let engine2 = QualityEngine::new(iq);
        let mut spec = QualityViewSpec::new("v");
        spec.assertions.push(crate::spec::AssertionDecl {
            service_name: "o".into(),
            service_type: "q:Orphan".into(),
            tag_name: "T".into(),
            tag_kind: crate::spec::TagKind::Score,
            tag_sem_type: None,
            repository_ref: "cache".into(),
            variables: vec![crate::spec::VarDecl::named("x", "q:HitRatio")],
        });
        spec.actions.push(crate::spec::ActionDecl {
            name: "a".into(),
            kind: ActionKind::Filter { condition: "T > 0".into() },
        });
        assert!(engine2.execute_view(&spec, &DataSet::new()).is_err());
    }

    #[test]
    fn check_runs_all_layers_on_the_paper_view() {
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        let diags = engine.check(&QualityViewSpec::paper_example(), None);
        assert!(!qurator_qvlint::has_errors(&diags), "{diags:?}");
        // the only finding across lint + binding + workflow layers is the
        // paper view's dead HR tag
        let codes: Vec<&str> = diags.iter().map(|d| d.code).collect();
        assert_eq!(codes, vec!["QV019"], "{diags:?}");
    }

    #[test]
    fn check_surfaces_missing_bindings_as_diagnostics() {
        let mut iq = (**QualityEngine::with_proteomics_defaults().unwrap().iq()).clone();
        iq.register_assertion_type("Orphan").unwrap();
        let engine = QualityEngine::new(iq);
        let mut spec = QualityViewSpec::new("v");
        spec.assertions.push(crate::spec::AssertionDecl {
            service_name: "o".into(),
            service_type: "q:Orphan".into(),
            tag_name: "T".into(),
            tag_kind: crate::spec::TagKind::Score,
            tag_sem_type: None,
            repository_ref: "cache".into(),
            variables: vec![crate::spec::VarDecl::named("x", "q:HitRatio")],
        });
        spec.actions.push(crate::spec::ActionDecl {
            name: "a".into(),
            kind: ActionKind::Filter { condition: "T > 0".into() },
        });
        let diags = engine.check(&spec, None);
        assert!(
            diags.iter().any(|d| d.code == "QV009"),
            "missing-service finding expected: {diags:?}"
        );
    }

    #[test]
    fn editing_conditions_between_runs_changes_outcome() {
        // the §4 point: actions are cheap to edit and re-run
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        let dataset = imprint_dataset();
        let mut spec = QualityViewSpec::paper_example();

        spec.actions[0].kind = ActionKind::Filter { condition: "ScoreClass in q:high".into() };
        let strict = engine
            .execute_view(&spec, &dataset)
            .unwrap()
            .group("filter top k score")
            .unwrap()
            .dataset
            .len();

        spec.actions[0].kind =
            ActionKind::Filter { condition: "ScoreClass in q:high, q:mid, q:low".into() };
        let lenient = engine
            .execute_view(&spec, &dataset)
            .unwrap()
            .group("filter top k score")
            .unwrap()
            .dataset
            .len();
        assert!(strict < lenient, "strict {strict} vs lenient {lenient}");
        assert_eq!(lenient, 5);
    }

    #[test]
    fn ledger_records_decision_provenance_on_interpreted_path() {
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        engine.set_provenance_enabled(true);
        let mut spec = QualityViewSpec::paper_example();
        spec.actions[0].kind =
            ActionKind::Filter { condition: "ScoreClass in q:high, q:mid and HR_MC > 0".into() };
        let outcome = engine.execute_view(&spec, &imprint_dataset()).unwrap();
        let kept = outcome.group("filter top k score").unwrap();

        for n in 1..=5 {
            let key = format!("urn:lsid:pedro.man.ac.uk:hit:H{n}");
            let trace = engine.why(&key).expect("trace for every input item");
            assert!(!trace.evidence.is_empty(), "evidence recorded for {key}");
            assert!(
                trace.evidence.iter().any(|e| e.property.as_ref() == "HitRatio"),
                "hit ratio evidence fetched for {key}"
            );
            assert!(
                trace.assertions.iter().any(|a| a.property.as_ref() == "ScoreClass"),
                "classifier tag recorded for {key}"
            );
            let accepted = kept.dataset.items().iter().any(|it| item_key(it) == key);
            let action = trace
                .actions
                .iter()
                .find(|a| a.group.as_ref() == "filter top k score")
                .expect("action recorded");
            assert_eq!(action.outcome.as_ref(), if accepted { "accepted" } else { "rejected" });
            assert!(action.condition.as_deref().unwrap().contains("ScoreClass"));
        }

        // short-suffix lookup resolves the same traces
        assert_eq!(engine.explain_item("H3").len(), 1);
        // the interpreter leaves a well-formed span trace behind
        let trace = engine.last_trace().expect("trace recorded");
        trace.validate().expect("interpreter span tree is well-formed");
        assert!(trace.roots().any(|s| s.name.starts_with("view:")));
    }

    #[test]
    fn ledger_records_provenance_on_compiled_path() {
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        engine.set_provenance_enabled(true);
        let mut spec = QualityViewSpec::paper_example();
        spec.actions[0].kind =
            ActionKind::Filter { condition: "ScoreClass in q:high, q:mid and HR_MC > 0".into() };
        let (outcome, _report) = engine.execute_compiled(&spec, &imprint_dataset()).unwrap();
        let kept = outcome.group("filter top k score").unwrap();
        assert!(!kept.dataset.is_empty());
        // survivors carry full provenance reconstructed from the group maps
        let key = item_key(&kept.dataset.items()[0]);
        let trace = engine.why(&key).expect("trace for surviving item");
        assert!(trace.evidence.iter().any(|e| e.property.as_ref() == "HitRatio"));
        assert!(trace.assertions.iter().any(|a| a.property.as_ref() == "ScoreClass"));
        assert!(trace
            .actions
            .iter()
            .any(|a| a.group.as_ref() == "filter top k score" && a.outcome.as_ref() == "accepted"));
    }

    #[test]
    fn provenance_span_is_recorded_even_without_ledger_or_survivors() {
        use qurator_telemetry::AttrValue;
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        // ledger disabled AND a condition no item satisfies: the
        // interpreted trace must still carry the phase:provenance span
        let mut spec = QualityViewSpec::paper_example();
        spec.actions[0].kind = ActionKind::Filter { condition: "HR_MC > 1000000".into() };
        let outcome = engine.execute_view(&spec, &imprint_dataset()).unwrap();
        assert!(outcome.group("filter top k score").unwrap().dataset.is_empty());
        let trace = engine.last_trace().unwrap();
        trace.validate().unwrap();
        let prov = trace
            .spans()
            .iter()
            .find(|s| s.name == "phase:provenance")
            .expect("provenance span recorded with the ledger off");
        assert_eq!(prov.attr("recorded"), Some(&AttrValue::Bool(false)));

        // ledger on: same shape, and rejected-everywhere items still get
        // their action records
        engine.set_provenance_enabled(true);
        engine.execute_view(&spec, &imprint_dataset()).unwrap();
        let trace = engine.last_trace().unwrap();
        let prov = trace.spans().iter().find(|s| s.name == "phase:provenance").unwrap();
        assert_eq!(prov.attr("recorded"), Some(&AttrValue::Bool(true)));
        for n in 1..=5 {
            let why = engine.why(&format!("urn:lsid:pedro.man.ac.uk:hit:H{n}")).unwrap();
            assert!(
                why.actions.iter().any(|a| a.outcome.as_ref() == "rejected"),
                "item H{n} should carry a rejected action record"
            );
        }
    }

    #[test]
    fn rejecting_runs_are_always_retained() {
        use qurator_telemetry::KeepReason;
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        let retainer = engine.enable_observability(&TelemetryConfig {
            sample_rate: 0.0,
            ..TelemetryConfig::default()
        });
        let mut spec = QualityViewSpec::paper_example();
        spec.actions[0].kind = ActionKind::Filter { condition: "ScoreClass in q:high".into() };
        engine.execute_view(&spec, &imprint_dataset()).unwrap();
        assert_eq!(retainer.resident(), 1);
        let kept = &retainer.recent(1)[0];
        assert_eq!(kept.reason, KeepReason::Rejected);
        assert!(kept.rejected > 0);
        assert_eq!(kept.view, "ispider-pmf-quality");
        kept.trace.validate().unwrap();
        // a run that rejects nothing is dropped at sample_rate 0
        spec.actions[0].kind =
            ActionKind::Filter { condition: "ScoreClass in q:high, q:mid, q:low".into() };
        engine.execute_view(&spec, &imprint_dataset()).unwrap();
        assert_eq!(retainer.resident(), 1);
    }

    struct FailingAssertion;
    impl qurator_services::AssertionService for FailingAssertion {
        fn service_type(&self) -> qurator_rdf::term::Iri {
            q::iri("FailingQA")
        }
        fn expected_variables(&self) -> Vec<String> {
            vec!["x".into()]
        }
        fn assert_quality(
            &self,
            _map: &mut qurator_annotations::AnnotationMap,
            _bindings: &qurator_services::VariableBindings,
            _tag: &str,
        ) -> qurator_services::Result<()> {
            Err(qurator_services::ServiceError::Internal("injected failure".into()))
        }
    }

    #[test]
    fn failed_execution_leaves_a_closed_error_trace_and_is_retained() {
        let mut iq = IqModel::with_proteomics_extension().unwrap();
        iq.register_assertion_type("FailingQA").unwrap();
        let engine = QualityEngine::new(iq);
        engine.register_assertion_service(Arc::new(FailingAssertion)).unwrap();
        let mut spec = QualityViewSpec::new("doomed");
        spec.assertions.push(crate::spec::AssertionDecl {
            service_name: "failing".into(),
            service_type: "q:FailingQA".into(),
            tag_name: "T".into(),
            tag_kind: crate::spec::TagKind::Score,
            tag_sem_type: None,
            repository_ref: "cache".into(),
            variables: vec![crate::spec::VarDecl::named("x", "q:HitRatio")],
        });
        spec.actions.push(ActionDecl {
            name: "keep".into(),
            kind: ActionKind::Filter { condition: "T > 0".into() },
        });
        let retainer = engine.enable_observability(&TelemetryConfig {
            sample_rate: 0.0,
            ..TelemetryConfig::default()
        });
        let err = engine.execute_view(&spec, &imprint_dataset()).unwrap_err();
        assert!(err.to_string().contains("injected failure"), "{err}");
        // the interrupted trace is closed, tagged, and always retained
        let trace = engine.last_trace().expect("trace survives the failure");
        trace.validate().expect("every span closed on the error path");
        let root = trace.roots().next().unwrap();
        assert!(root.attr("error").is_some(), "view span carries the error");
        assert_eq!(retainer.resident(), 1);
        assert_eq!(retainer.recent(1)[0].reason, qurator_telemetry::KeepReason::Error);
    }

    #[test]
    fn bindings_are_recorded() {
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        let bindings = engine.bindings();
        assert_eq!(bindings.len(), 4); // 1 annotator + 3 QAs
        assert!(bindings
            .iter()
            .all(|b| b.resource.kind == qurator_ontology::binding::ResourceKind::Service));
    }
}
