//! The top-level quality engine: IQ model + service registry + repository
//! catalog + binding registry, with two execution paths.
//!
//! * [`QualityEngine::execute_view`] — the direct interpreter: runs the
//!   abstract quality process in-process (the "rapid prototyping" loop the
//!   paper motivates — edit conditions, re-run, observe);
//! * [`QualityEngine::execute_compiled`] — the paper's §6 path: compile to
//!   a workflow, enact it, decode the action outputs. Both paths produce
//!   identical [`ActionOutcome`]s (covered by integration tests).

use crate::compile;
use crate::operators::{
    ActionProcessor, AssertionProcessor, CompiledAction, DataEnrichmentProcessor, GroupResult,
};
use crate::spec::{ActionKind, QualityViewSpec};
use crate::validate::{self, BindingTarget, ValidatedView};
use crate::{convert, QuratorError, Result};
use parking_lot::RwLock;
use qurator_annotations::RepositoryCatalog;
use qurator_ontology::binding::BindingRegistry;
use qurator_ontology::IqModel;
use qurator_rdf::namespace::q;
use qurator_services::stdlib::{FieldCaptureAnnotator, StatClassifierAssertion, ZScoreAssertion};
use qurator_services::{
    AnnotationService, AssertionService, DataSet, ServiceRegistry, VariableBindings,
};
use qurator_workflow::{Context, Data, EnactmentReport, Enactor, Workflow};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The result of executing a quality view over a data set: one group per
/// action output (a single group for filters; per-group + default for
/// splitters).
#[derive(Debug, Clone, PartialEq)]
pub struct ActionOutcome {
    pub groups: Vec<GroupResult>,
}

impl ActionOutcome {
    /// The group with the given name.
    pub fn group(&self, name: &str) -> Option<&GroupResult> {
        self.groups.iter().find(|g| g.name == name)
    }

    /// Names of all groups, in declaration order.
    pub fn group_names(&self) -> Vec<&str> {
        self.groups.iter().map(|g| g.name.as_str()).collect()
    }
}

/// The engine.
pub struct QualityEngine {
    iq: Arc<IqModel>,
    registry: Arc<ServiceRegistry>,
    catalog: Arc<RepositoryCatalog>,
    bindings: RwLock<BindingRegistry>,
}

impl QualityEngine {
    /// Builds an engine over an IQ model with empty registry and catalog.
    pub fn new(iq: IqModel) -> Self {
        let iq = Arc::new(iq);
        QualityEngine {
            catalog: Arc::new(RepositoryCatalog::new(iq.clone())),
            registry: Arc::new(ServiceRegistry::new()),
            bindings: RwLock::new(BindingRegistry::new()),
            iq,
        }
    }

    /// An engine preloaded with the running example's semantic model and
    /// services: the Imprint output annotator, the two universal-score QAs
    /// and the §5.1 three-way classifier.
    pub fn with_proteomics_defaults() -> Result<Self> {
        let iq = IqModel::with_proteomics_extension()
            .map_err(|e| QuratorError::Validation(e.to_string()))?;
        let engine = Self::new(iq);
        engine.register_annotation_service(Arc::new(FieldCaptureAnnotator::new(
            q::iri("ImprintOutputAnnotation"),
            &[
                ("hitRatio", q::iri("HitRatio")),
                ("massCoverage", q::iri("MassCoverage")),
                ("peptidesCount", q::iri("PeptidesCount")),
            ],
        )))?;
        engine.register_assertion_service(Arc::new(ZScoreAssertion::new(
            q::iri("UniversalPIScore2"),
            &["coverage", "hitratio", "peptidescount"],
        )))?;
        engine.register_assertion_service(Arc::new(ZScoreAssertion::new(
            q::iri("UniversalPIScore"),
            &["hitratio"],
        )))?;
        engine.register_assertion_service(Arc::new(StatClassifierAssertion::new(
            q::iri("PIScoreClassifier"),
            "score",
            q::iri("PIScoreClassification"),
            (q::iri("low"), q::iri("mid"), q::iri("high")),
        )))?;
        Ok(engine)
    }

    /// The IQ model.
    pub fn iq(&self) -> &Arc<IqModel> {
        &self.iq
    }

    /// The service registry.
    pub fn registry(&self) -> &Arc<ServiceRegistry> {
        &self.registry
    }

    /// The repository catalog.
    pub fn catalog(&self) -> &Arc<RepositoryCatalog> {
        &self.catalog
    }

    /// Snapshot of the binding registry (concept → resource locator).
    pub fn bindings(&self) -> Vec<qurator_ontology::binding::Binding> {
        self.bindings.read().iter().collect()
    }

    /// Registers an annotation service and binds its concept.
    pub fn register_annotation_service(&self, service: Arc<dyn AnnotationService>) -> Result<()> {
        let concept = service.service_type();
        self.registry
            .register_annotator(service)
            .map_err(|e| QuratorError::Validation(e.to_string()))?;
        self.bindings.write().bind_service(concept.clone(), format!("local:{concept}"));
        Ok(())
    }

    /// Registers an assertion service and binds its concept.
    pub fn register_assertion_service(&self, service: Arc<dyn AssertionService>) -> Result<()> {
        let concept = service.service_type();
        self.registry
            .register_assertion(service)
            .map_err(|e| QuratorError::Validation(e.to_string()))?;
        self.bindings.write().bind_service(concept.clone(), format!("local:{concept}"));
        Ok(())
    }

    /// Validates a spec against the IQ model and registry.
    pub fn validate(&self, spec: &QualityViewSpec) -> Result<ValidatedView> {
        let view = validate::validate(spec, &self.iq, &self.registry)?;
        // the binding step (§6): every abstract operator must have a
        // service binding before compilation can target an environment
        let bindings = self.bindings.read();
        for concept in view.annotator_types.iter().chain(&view.assertion_types) {
            bindings
                .service_locator(concept)
                .map_err(|e| QuratorError::Validation(e.to_string()))?;
        }
        Ok(view)
    }

    /// Compiles a spec into an executable quality workflow.
    pub fn compile(&self, spec: &QualityViewSpec) -> Result<Workflow> {
        let view = self.validate(spec)?;
        compile::compile(&view, &self.iq, &self.registry, &self.catalog)
    }

    /// Direct interpretation of the quality process (§4's semantics
    /// without the workflow detour).
    pub fn execute_view(&self, spec: &QualityViewSpec, dataset: &DataSet) -> Result<ActionOutcome> {
        let view = self.validate(spec)?;
        self.execute_validated(&view, dataset)
    }

    /// Direct interpretation of an already-validated view.
    pub fn execute_validated(
        &self,
        view: &ValidatedView,
        dataset: &DataSet,
    ) -> Result<ActionOutcome> {
        let spec = &view.spec;
        // repositories (honouring annotator persistence flags)
        let mut persistence: BTreeMap<&str, bool> = BTreeMap::new();
        for a in &spec.annotators {
            persistence.insert(&a.repository_ref, a.persistent);
        }
        let resolve_repo = |name: &str| {
            if let Some(repo) = self.catalog.get(name) {
                return repo;
            }
            let persistent = persistence.get(name).copied().unwrap_or(false);
            self.catalog
                .create(name, persistent)
                .unwrap_or_else(|_| self.catalog.get(name).expect("created concurrently"))
        };

        // 1. annotation
        for (decl, service_type) in spec.annotators.iter().zip(&view.annotator_types) {
            let service = self
                .registry
                .annotator(service_type)
                .map_err(|e| QuratorError::Execution(e.to_string()))?;
            let repo = resolve_repo(&decl.repository_ref);
            service.annotate(dataset, &repo).map_err(|e| QuratorError::Execution(e.to_string()))?;
        }

        // 2. enrichment
        let plan = view
            .enrichment_plan
            .iter()
            .map(|(evidence, repo)| (evidence.clone(), resolve_repo(repo)))
            .collect();
        let enrichment = DataEnrichmentProcessor::new(compile::DATA_ENRICHMENT, plan);
        let mut map = enrichment.enrich(dataset.items())?;

        // 3. assertions, in declaration order (tags accumulate)
        for (index, decl) in spec.assertions.iter().enumerate() {
            let service = self
                .registry
                .assertion(&view.assertion_types[index])
                .map_err(|e| QuratorError::Execution(e.to_string()))?;
            let mut bindings = VariableBindings::new();
            for (variable, target) in &view.assertion_bindings[index] {
                bindings = match target {
                    BindingTarget::Evidence(e) => {
                        bindings.bind_evidence(variable.clone(), e.clone())
                    }
                    BindingTarget::Tag(t) => bindings.bind_tag(variable.clone(), t.clone()),
                };
            }
            AssertionProcessor::new(
                decl.service_name.clone(),
                service,
                bindings,
                decl.tag_name.clone(),
            )
            .assert_quality(&mut map)?;
        }

        // 4. actions
        let mut groups = Vec::new();
        for action in &spec.actions {
            let compiled = match &action.kind {
                ActionKind::Filter { condition } => {
                    CompiledAction::Filter { condition: condition.clone() }
                }
                ActionKind::Split { groups } => CompiledAction::Split { groups: groups.clone() },
            };
            let processor = ActionProcessor::new(action.name.clone(), compiled, self.iq.clone());
            groups.extend(processor.apply(dataset, &map)?);
        }
        Ok(ActionOutcome { groups })
    }

    /// The full §6 path: compile, enact, decode.
    pub fn execute_compiled(
        &self,
        spec: &QualityViewSpec,
        dataset: &DataSet,
    ) -> Result<(ActionOutcome, EnactmentReport)> {
        let workflow = self.compile(spec)?;
        let inputs = BTreeMap::from([(
            compile::DATASET_INPUT.to_string(),
            convert::dataset_to_data(dataset),
        )]);
        let report = Enactor::new().run(&workflow, &inputs, &Context::new())?;
        let outcome = decode_outcome(spec, &report.outputs)?;
        Ok((outcome, report))
    }

    /// Drops all cache-repository contents (between process executions).
    pub fn finish_execution(&self) -> usize {
        self.catalog.clear_caches()
    }
}

/// Decodes workflow outputs into an [`ActionOutcome`], preserving the
/// spec's action/group declaration order.
fn decode_outcome(
    spec: &QualityViewSpec,
    outputs: &BTreeMap<String, Data>,
) -> Result<ActionOutcome> {
    let mut expected: Vec<String> = Vec::new();
    for action in &spec.actions {
        match &action.kind {
            ActionKind::Filter { .. } => expected.push(action.name.clone()),
            ActionKind::Split { groups } => {
                for (group, _) in groups {
                    expected.push(format!("{}/{group}", action.name));
                }
                expected.push(format!("{}/default", action.name));
            }
        }
    }
    let mut result = Vec::with_capacity(expected.len());
    for name in expected {
        let data = outputs.get(&name).ok_or_else(|| {
            QuratorError::Execution(format!("workflow produced no output {name:?}"))
        })?;
        let dataset =
            convert::data_to_dataset(data.field("dataset").ok_or_else(|| {
                QuratorError::Execution(format!("group {name:?} lacks dataset"))
            })?)?;
        let map = convert::data_to_map(
            data.field("map")
                .ok_or_else(|| QuratorError::Execution(format!("group {name:?} lacks map")))?,
        )?;
        result.push(GroupResult { name, dataset, map });
    }
    Ok(ActionOutcome { groups: result })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_annotations::EvidenceValue;
    use qurator_rdf::term::Term;

    fn item(n: u32) -> Term {
        Term::iri(format!("urn:lsid:pedro.man.ac.uk:hit:H{n}"))
    }

    /// Imprint-shaped data: hitRatio/massCoverage/peptidesCount payloads.
    fn imprint_dataset() -> DataSet {
        let rows: [(u32, f64, f64, i64); 5] = [
            (1, 0.90, 45.0, 12),
            (2, 0.70, 30.0, 9),
            (3, 0.40, 22.0, 6),
            (4, 0.20, 10.0, 3),
            (5, 0.05, 4.0, 1),
        ];
        let mut ds = DataSet::new();
        for (i, hr, mc, pc) in rows {
            ds.push(
                item(i),
                [
                    ("hitRatio", EvidenceValue::from(hr)),
                    ("massCoverage", EvidenceValue::from(mc)),
                    ("peptidesCount", EvidenceValue::from(pc)),
                ],
            );
        }
        ds
    }

    #[test]
    fn paper_view_interpreted() {
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        let spec = QualityViewSpec::paper_example();
        // the paper condition uses HR_MC > 20, but our z-score scale is
        // centred on 0; use the classifier alone
        let mut spec = spec;
        spec.actions[0].kind =
            ActionKind::Filter { condition: "ScoreClass in q:high, q:mid and HR_MC > 0".into() };
        let outcome = engine.execute_view(&spec, &imprint_dataset()).unwrap();
        let kept = outcome.group("filter top k score").unwrap();
        assert!(!kept.dataset.is_empty());
        assert!(kept.dataset.len() < 5, "filtering must drop something");
        // survivors carry their tags in the restricted map
        let first = &kept.dataset.items()[0];
        assert!(kept.map.item(first).unwrap().tag("HR_MC").as_number().is_some());
    }

    #[test]
    fn compiled_path_agrees_with_interpreter() {
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        let mut spec = QualityViewSpec::paper_example();
        spec.actions[0].kind =
            ActionKind::Filter { condition: "ScoreClass in q:high, q:mid and HR_MC > 0".into() };
        let dataset = imprint_dataset();
        let interpreted = engine.execute_view(&spec, &dataset).unwrap();
        engine.finish_execution();
        let (compiled, report) = engine.execute_compiled(&spec, &dataset).unwrap();
        assert_eq!(interpreted, compiled);
        assert!(report.events.len() >= 6);
    }

    #[test]
    fn splitter_outcome_groups() {
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        let mut spec = QualityViewSpec::paper_example();
        spec.actions[0].kind = ActionKind::Split {
            groups: vec![
                ("strong".into(), "ScoreClass in q:high".into()),
                ("weak".into(), "ScoreClass in q:low".into()),
            ],
        };
        let outcome = engine.execute_view(&spec, &imprint_dataset()).unwrap();
        assert_eq!(
            outcome.group_names(),
            vec![
                "filter top k score/strong",
                "filter top k score/weak",
                "filter top k score/default"
            ]
        );
        let total: usize = outcome.groups.iter().map(|g| g.dataset.len()).sum();
        // disjoint conditions here: groups + default cover the input
        assert_eq!(total, 5);
    }

    #[test]
    fn unbound_concept_fails_validation() {
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        // a concept in the IQ model but with no service binding
        let mut iq = (**engine.iq()).clone();
        iq.register_assertion_type("Orphan").unwrap();
        let engine2 = QualityEngine::new(iq);
        let mut spec = QualityViewSpec::new("v");
        spec.assertions.push(crate::spec::AssertionDecl {
            service_name: "o".into(),
            service_type: "q:Orphan".into(),
            tag_name: "T".into(),
            tag_kind: crate::spec::TagKind::Score,
            tag_sem_type: None,
            repository_ref: "cache".into(),
            variables: vec![crate::spec::VarDecl::named("x", "q:HitRatio")],
        });
        spec.actions.push(crate::spec::ActionDecl {
            name: "a".into(),
            kind: ActionKind::Filter { condition: "T > 0".into() },
        });
        assert!(engine2.execute_view(&spec, &DataSet::new()).is_err());
    }

    #[test]
    fn editing_conditions_between_runs_changes_outcome() {
        // the §4 point: actions are cheap to edit and re-run
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        let dataset = imprint_dataset();
        let mut spec = QualityViewSpec::paper_example();

        spec.actions[0].kind = ActionKind::Filter { condition: "ScoreClass in q:high".into() };
        let strict = engine
            .execute_view(&spec, &dataset)
            .unwrap()
            .group("filter top k score")
            .unwrap()
            .dataset
            .len();

        spec.actions[0].kind =
            ActionKind::Filter { condition: "ScoreClass in q:high, q:mid, q:low".into() };
        let lenient = engine
            .execute_view(&spec, &dataset)
            .unwrap()
            .group("filter top k score")
            .unwrap()
            .dataset
            .len();
        assert!(strict < lenient, "strict {strict} vs lenient {lenient}");
        assert_eq!(lenient, 5);
    }

    #[test]
    fn bindings_are_recorded() {
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        let bindings = engine.bindings();
        assert_eq!(bindings.len(), 4); // 1 annotator + 3 QAs
        assert!(bindings
            .iter()
            .all(|b| b.resource.kind == qurator_ontology::binding::ResourceKind::Service));
    }
}
