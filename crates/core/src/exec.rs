//! Binding physical plans to executable operators — the **single** place
//! where plan nodes become processors. The direct interpreter walks the
//! bound operators sequentially; [`BoundPlan::into_workflow`] wires the
//! same operators into a workflow graph for the wave-parallel enactor
//! (§6.1 rules 1–5). One lowering, two execution engines.

use crate::operators::{
    ActionProcessor, AnnotatorProcessor, AssertionProcessor, CompiledAction, ConsolidateProcessor,
    DataEnrichmentProcessor,
};
use crate::{QuratorError, Result};
use qurator_annotations::{AnnotationRepository, RepositoryCatalog};
use qurator_ontology::IqModel;
use qurator_plan::{ActKind, PhysicalPlan, ShortCircuit, CONSOLIDATE_NODE, ENRICH_NODE};
use qurator_rdf::term::Iri;
use qurator_services::{ServiceRegistry, VariableBindings};
use qurator_telemetry::stats::StatsCollector;
use qurator_workflow::{PortRef, Workflow};
use std::sync::Arc;

/// Name of the workflow input carrying the data set.
pub const DATASET_INPUT: &str = "dataset";

/// A physical plan bound to concrete services and repositories.
pub struct BoundPlan {
    /// Annotation operators, in plan order.
    pub annotators: Vec<(String, Arc<AnnotatorProcessor>)>,
    /// The single Data-Enrichment operator, configured with the plan's
    /// fused repository groups.
    pub enrichment: Arc<DataEnrichmentProcessor>,
    /// QA operators with their tag-dependency facts, in plan order.
    pub assertions: Vec<BoundAssert>,
    /// Action operators (with plan-time short-circuit hints installed),
    /// in plan order.
    pub actions: Vec<(String, Arc<ActionProcessor>)>,
    /// The shared observed-statistics sink every operator above records
    /// into. Both execution engines drain it after a run, so EXPLAIN
    /// ANALYZE sees identical counters on the interpreted and compiled
    /// paths.
    pub stats: Arc<StatsCollector>,
}

/// One bound Assert node.
pub struct BoundAssert {
    pub name: String,
    pub processor: Arc<AssertionProcessor>,
    /// Names of earlier Assert nodes whose tags this one consumes.
    pub depends_on: Vec<String>,
}

/// Binds a physical plan: resolves repositories by name (honouring the
/// plan's persistence facts), looks up services in the registry, and
/// instantiates one processor per plan node.
pub fn bind(
    plan: &PhysicalPlan,
    iq: &Arc<IqModel>,
    registry: &ServiceRegistry,
    catalog: &RepositoryCatalog,
) -> Result<BoundPlan> {
    let stats = Arc::new(StatsCollector::new());
    let resolve_repo = |name: &str| -> Arc<AnnotationRepository> {
        if let Some(repo) = catalog.get(name) {
            return repo;
        }
        catalog
            .create(name, plan.repository_persistent(name))
            .unwrap_or_else(|_| catalog.get(name).expect("created concurrently"))
    };

    let mut annotators = Vec::with_capacity(plan.annotators.len());
    for node in &plan.annotators {
        let service = registry
            .annotator(&node.service_type)
            .map_err(|e| QuratorError::Compile(e.to_string()))?;
        let repo = resolve_repo(&node.repository);
        annotators.push((
            node.name.clone(),
            Arc::new(
                AnnotatorProcessor::new(node.name.clone(), service, repo)
                    .with_stats(stats.clone()),
            ),
        ));
    }

    // The fetch plan is laid out group-contiguously, so the operator's
    // repository grouping answers each plan group with one bulk lookup.
    let mut fetches: Vec<(Iri, Arc<AnnotationRepository>)> = Vec::with_capacity(plan.fetch_count());
    for group in &plan.enrich {
        let repo = resolve_repo(&group.repository);
        for evidence in &group.evidence {
            fetches.push((evidence.clone(), repo.clone()));
        }
    }
    let enrichment =
        Arc::new(DataEnrichmentProcessor::new(ENRICH_NODE, fetches).with_stats(stats.clone()));

    let mut assertions = Vec::with_capacity(plan.assertions.len());
    for assert in &plan.assertions {
        let service = registry
            .assertion(&assert.node.service_type)
            .map_err(|e| QuratorError::Compile(e.to_string()))?;
        let mut bindings = VariableBindings::new();
        for (variable, binding) in &assert.node.bindings {
            bindings = match binding {
                qurator_plan::Binding::Evidence(e) => {
                    bindings.bind_evidence(variable.clone(), e.clone())
                }
                qurator_plan::Binding::Tag(t) => bindings.bind_tag(variable.clone(), t.clone()),
            };
        }
        assertions.push(BoundAssert {
            name: assert.node.name.clone(),
            processor: Arc::new(
                AssertionProcessor::new(
                    assert.node.name.clone(),
                    service,
                    bindings,
                    assert.node.tag.clone(),
                )
                .with_stats(stats.clone()),
            ),
            depends_on: assert.depends_on.clone(),
        });
    }

    let mut actions = Vec::with_capacity(plan.actions.len());
    for act in &plan.actions {
        let compiled = match &act.node.kind {
            ActKind::Filter { condition } => {
                CompiledAction::Filter { condition: condition.clone() }
            }
            ActKind::Split { groups } => CompiledAction::Split { groups: groups.clone() },
        };
        let hints: Vec<Option<bool>> =
            act.short_circuit.iter().map(|s| s.map(|v| v == ShortCircuit::AlwaysAccept)).collect();
        actions.push((
            act.node.name.clone(),
            Arc::new(
                ActionProcessor::new(act.node.name.clone(), compiled, iq.clone())
                    .with_short_circuit(hints)
                    .with_stats(stats.clone()),
            ),
        ));
    }

    Ok(BoundPlan { annotators, enrichment, assertions, actions, stats })
}

impl BoundPlan {
    /// Wires the bound operators into a workflow for the wave-parallel
    /// enactor, following the §6.1 compilation rules: annotators first
    /// (control-linked to the single Data-Enrichment node), QAs chained
    /// by tag dependency (with a dedicated merge node when one QA needs
    /// several producers), a `ConsolidateAssertions` task, and action
    /// processors whose group ports become the workflow outputs.
    pub fn into_workflow(&self, plan: &PhysicalPlan) -> Result<Workflow> {
        let compile_err = |m: String| QuratorError::Compile(m);
        let mut workflow = Workflow::new(format!("qv:{}", plan.view));

        // rule 1: annotators first
        for (name, processor) in &self.annotators {
            workflow
                .add(name.clone(), processor.clone())
                .map_err(|e| compile_err(e.to_string()))?;
            workflow
                .declare_input(DATASET_INPUT, PortRef::new(name, "dataset"))
                .map_err(|e| compile_err(e.to_string()))?;
        }

        // rule 2: one DE, control-linked behind every annotator
        workflow
            .add(ENRICH_NODE, self.enrichment.clone())
            .map_err(|e| compile_err(e.to_string()))?;
        workflow
            .declare_input(DATASET_INPUT, PortRef::new(ENRICH_NODE, "dataset"))
            .map_err(|e| compile_err(e.to_string()))?;
        for (name, _) in &self.annotators {
            workflow.control_link(name, ENRICH_NODE).map_err(|e| compile_err(e.to_string()))?;
        }

        // rule 3 (+ tag-dependency chaining): QAs
        for assert in &self.assertions {
            workflow
                .add(assert.name.clone(), assert.processor.clone())
                .map_err(|e| compile_err(e.to_string()))?;
            match assert.depends_on.as_slice() {
                [] => {
                    workflow
                        .link(ENRICH_NODE, "map", &assert.name, "map")
                        .map_err(|e| compile_err(e.to_string()))?;
                }
                [producer] => {
                    workflow
                        .link(producer, "map", &assert.name, "map")
                        .map_err(|e| compile_err(e.to_string()))?;
                }
                producers => {
                    let merge_node = format!("consolidate-for-{}", assert.name);
                    workflow
                        .add(
                            merge_node.clone(),
                            Arc::new(ConsolidateProcessor::new(
                                merge_node.clone(),
                                producers.len(),
                            )),
                        )
                        .map_err(|e| compile_err(e.to_string()))?;
                    for (slot, producer) in producers.iter().enumerate() {
                        workflow
                            .link(producer, "map", &merge_node, &format!("map{slot}"))
                            .map_err(|e| compile_err(e.to_string()))?;
                    }
                    workflow
                        .link(&merge_node, "map", &assert.name, "map")
                        .map_err(|e| compile_err(e.to_string()))?;
                }
            }
        }

        // rule 4: ConsolidateAssertions over every QA output (or the DE
        // map when the view declares no QAs)
        let consolidate_inputs = self.assertions.len().max(1);
        workflow
            .add(
                CONSOLIDATE_NODE,
                Arc::new(ConsolidateProcessor::new(CONSOLIDATE_NODE, consolidate_inputs)),
            )
            .map_err(|e| compile_err(e.to_string()))?;
        if self.assertions.is_empty() {
            workflow
                .link(ENRICH_NODE, "map", CONSOLIDATE_NODE, "map0")
                .map_err(|e| compile_err(e.to_string()))?;
        } else {
            for (slot, assert) in self.assertions.iter().enumerate() {
                workflow
                    .link(&assert.name, "map", CONSOLIDATE_NODE, &format!("map{slot}"))
                    .map_err(|e| compile_err(e.to_string()))?;
            }
        }

        // rule 5: actions
        for (name, processor) in &self.actions {
            let group_names = processor.group_names();
            workflow
                .add(name.clone(), processor.clone())
                .map_err(|e| compile_err(e.to_string()))?;
            workflow
                .declare_input(DATASET_INPUT, PortRef::new(name, "dataset"))
                .map_err(|e| compile_err(e.to_string()))?;
            workflow
                .link(CONSOLIDATE_NODE, "map", name, "map")
                .map_err(|e| compile_err(e.to_string()))?;
            for group in group_names {
                workflow
                    .declare_output(group.clone(), PortRef::new(name, group.clone()))
                    .map_err(|e| compile_err(e.to_string()))?;
            }
        }

        workflow
            .validate()
            .map_err(|e| compile_err(format!("compiled workflow is invalid: {e}")))?;
        Ok(workflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner;
    use crate::spec::QualityViewSpec;
    use crate::validate::validate;
    use qurator_plan::PlanConfig;
    use qurator_rdf::namespace::q;
    use qurator_services::stdlib::{
        FieldCaptureAnnotator, StatClassifierAssertion, ZScoreAssertion,
    };

    fn setup() -> (Arc<IqModel>, ServiceRegistry, RepositoryCatalog) {
        let iq = Arc::new(IqModel::with_proteomics_extension().unwrap());
        let registry = ServiceRegistry::new();
        registry
            .register_annotator(Arc::new(FieldCaptureAnnotator::new(
                q::iri("ImprintOutputAnnotation"),
                &[
                    ("hitRatio", q::iri("HitRatio")),
                    ("massCoverage", q::iri("MassCoverage")),
                    ("peptidesCount", q::iri("PeptidesCount")),
                ],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(ZScoreAssertion::new(
                q::iri("UniversalPIScore2"),
                &["coverage", "hitratio", "peptidescount"],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(ZScoreAssertion::new(
                q::iri("UniversalPIScore"),
                &["hitratio"],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(StatClassifierAssertion::new(
                q::iri("PIScoreClassifier"),
                "score",
                q::iri("PIScoreClassification"),
                (q::iri("low"), q::iri("mid"), q::iri("high")),
            )))
            .unwrap();
        let catalog = RepositoryCatalog::new(iq.clone());
        (iq, registry, catalog)
    }

    /// The satellite regression: a repository listed under several
    /// evidence IRIs must be answered by ONE grouped bulk access, not one
    /// per IRI — visible both in the plan (one fused group) and in the
    /// bound operator (one fetch group with the deduplicated types).
    #[test]
    fn same_repository_under_multiple_iris_binds_to_one_bulk_group() {
        let (iq, registry, catalog) = setup();
        let view = validate(&QualityViewSpec::paper_example(), &iq, &registry).unwrap();
        let plan = planner::physical_plan(&view, &iq, &PlanConfig::default()).unwrap();
        assert_eq!(plan.enrich.len(), 1, "three cache fetches fuse into one group");

        let bound = bind(&plan, &iq, &registry, &catalog).unwrap();
        let groups = bound.enrichment.fetch_groups();
        assert_eq!(groups.len(), 1, "one grouped enrich_bulk call: {groups:?}");
        assert_eq!(groups[0].0, "cache");
        let mut locals: Vec<&str> = groups[0].1.iter().map(|e| e.local_name()).collect();
        locals.sort_unstable();
        assert_eq!(locals, vec!["HitRatio", "MassCoverage", "PeptidesCount"]);
    }

    #[test]
    fn unoptimized_plan_still_groups_per_repository_at_bind_time() {
        // --no-opt keeps one plan group per fetch entry; the operator's
        // own Arc-identity grouping still answers them with one bulk call
        // per repository, preserving the pre-plan execution profile.
        let (iq, registry, catalog) = setup();
        let view = validate(&QualityViewSpec::paper_example(), &iq, &registry).unwrap();
        let plan = planner::physical_plan(&view, &iq, &PlanConfig { optimize: false }).unwrap();
        assert_eq!(plan.enrich.len(), 3);
        let bound = bind(&plan, &iq, &registry, &catalog).unwrap();
        assert_eq!(bound.enrichment.fetch_groups().len(), 1);
    }

    #[test]
    fn bound_workflow_matches_figure6_structure() {
        let (iq, registry, catalog) = setup();
        let view = validate(&QualityViewSpec::paper_example(), &iq, &registry).unwrap();
        let plan = planner::physical_plan(&view, &iq, &PlanConfig::default()).unwrap();
        let wf = bind(&plan, &iq, &registry, &catalog).unwrap().into_workflow(&plan).unwrap();
        assert_eq!(wf.len(), 7);
        assert!(wf.nodes().any(|n| n == ENRICH_NODE));
        assert!(wf.nodes().any(|n| n == CONSOLIDATE_NODE));
        // the workflow's own wave schedule agrees with the plan's
        let waves = wf.waves().unwrap();
        assert_eq!(waves, plan.waves);
    }
}
