//! The abstract quality-view model.
//!
//! A spec is "defined purely in terms of our abstract model … not tied to
//! any implementation of the operator set" (§5.1). Input data sets are
//! deliberately absent: "view specifications do not include any reference
//! to input data sets … a view is applicable to any data set for which
//! evidence values are available for the required evidence types".

/// One variable declaration inside an annotator or QA block.
///
/// For annotators, `evidence` names the evidence type the operator writes;
/// `variable_name` is unused. For QAs, `variable_name` is the name the
/// decision model expects and `evidence` the evidence type it binds to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VarDecl {
    /// Model-facing variable name (QAs only).
    pub variable_name: Option<String>,
    /// Evidence-type reference (`q:coverage`) — or, when prefixed with
    /// `tag:`, a reference to an earlier QA's tag.
    pub evidence: String,
}

impl VarDecl {
    /// Declares an annotator-provided evidence type.
    pub fn evidence(evidence: impl Into<String>) -> Self {
        VarDecl { variable_name: None, evidence: evidence.into() }
    }

    /// Declares a named QA input variable.
    pub fn named(variable_name: impl Into<String>, evidence: impl Into<String>) -> Self {
        VarDecl { variable_name: Some(variable_name.into()), evidence: evidence.into() }
    }

    /// The effective variable name (defaults to the evidence local name:
    /// the segment after the last `#`, `/` or `:`, so both `q:coverage`
    /// and `http://example.org/ont#Coverage` yield a usable name).
    pub fn effective_name(&self) -> &str {
        match &self.variable_name {
            Some(name) => name,
            None => match self.evidence.rfind(['#', '/', ':']) {
                Some(i) => &self.evidence[i + 1..],
                None => &self.evidence,
            },
        }
    }

    /// When the declaration references an earlier QA's tag (`tag:HR_MC`),
    /// the tag name.
    pub fn tag_reference(&self) -> Option<&str> {
        self.evidence.strip_prefix("tag:")
    }
}

/// An annotator declaration (§5.1 `<Annotator>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotatorDecl {
    /// Local service name (instance label within the view).
    pub service_name: String,
    /// The `q:AnnotationFunction` subclass to bind.
    pub service_type: String,
    /// Repository the computed evidence is written to.
    pub repository_ref: String,
    /// Whether those annotations outlive one process execution.
    pub persistent: bool,
    /// Evidence types this annotator provides values for.
    pub variables: Vec<VarDecl>,
}

/// Whether a QA emits a numeric score or a classification label
/// (`tagSynType` in the XML: `q:score` / `q:class`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagKind {
    Score,
    Class,
}

/// A quality-assertion declaration (§5.1 `<QualityAssertion>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssertionDecl {
    /// Local service name.
    pub service_name: String,
    /// The `q:QualityAssertion` subclass to bind.
    pub service_type: String,
    /// Tag variable the QA writes (usable in action conditions).
    pub tag_name: String,
    /// Score vs classification output.
    pub tag_kind: TagKind,
    /// For classifications: the `q:ClassificationModel` subclass
    /// (`tagSemType`).
    pub tag_sem_type: Option<String>,
    /// Repository the input evidence is fetched from.
    pub repository_ref: String,
    /// Input variable bindings.
    pub variables: Vec<VarDecl>,
}

/// What an action does with the items satisfying its condition(s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionKind {
    /// Keep items satisfying the condition, drop the rest (§4.1 data
    /// filtering action).
    Filter { condition: String },
    /// Partition into named groups — first matching condition wins the
    /// item for ordering purposes but groups are "not necessarily
    /// disjoint" (§4.1), so an item joins *every* group whose condition it
    /// satisfies, plus the default group when it satisfies none.
    Split { groups: Vec<(String, String)> },
}

/// An action declaration (§5.1 `<action>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionDecl {
    /// Action (and output group) name.
    pub name: String,
    /// Filter or splitter.
    pub kind: ActionKind,
}

/// A complete quality view.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QualityViewSpec {
    /// View name.
    pub name: String,
    /// Annotation operators, in declaration order.
    pub annotators: Vec<AnnotatorDecl>,
    /// Quality assertions, in declaration order.
    pub assertions: Vec<AssertionDecl>,
    /// Actions, in declaration order.
    pub actions: Vec<ActionDecl>,
}

impl QualityViewSpec {
    /// An empty view with a name.
    pub fn new(name: impl Into<String>) -> Self {
        QualityViewSpec { name: name.into(), ..Default::default() }
    }

    /// All evidence-type references mentioned anywhere (deduplicated).
    pub fn referenced_evidence(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        let annotator_vars = self.annotators.iter().flat_map(|a| a.variables.iter());
        let qa_vars = self
            .assertions
            .iter()
            .flat_map(|qa| qa.variables.iter())
            .filter(|v| v.tag_reference().is_none());
        for v in annotator_vars.chain(qa_vars) {
            if !out.contains(&v.evidence.as_str()) {
                out.push(&v.evidence);
            }
        }
        out
    }

    /// All repository names referenced (deduplicated, declaration order).
    pub fn referenced_repositories(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for r in self
            .annotators
            .iter()
            .map(|a| a.repository_ref.as_str())
            .chain(self.assertions.iter().map(|q| q.repository_ref.as_str()))
        {
            if !out.contains(&r) {
                out.push(r);
            }
        }
        out
    }

    /// All tag names produced by QAs, in declaration order.
    pub fn tag_names(&self) -> Vec<&str> {
        self.assertions.iter().map(|q| q.tag_name.as_str()).collect()
    }

    /// Builds the §5.1 example view programmatically (the same view
    /// shipped as XML in the docs/tests): two score QAs, a three-way
    /// classifier, and the `filter top k score` action.
    pub fn paper_example() -> Self {
        QualityViewSpec {
            name: "ispider-pmf-quality".to_string(),
            annotators: vec![AnnotatorDecl {
                service_name: "ImprintOutputAnnotator".to_string(),
                service_type: "q:ImprintOutputAnnotation".to_string(),
                repository_ref: "cache".to_string(),
                persistent: false,
                variables: vec![
                    VarDecl::evidence("q:HitRatio"),
                    VarDecl::evidence("q:MassCoverage"),
                    VarDecl::evidence("q:PeptidesCount"),
                ],
            }],
            assertions: vec![
                AssertionDecl {
                    service_name: "HR_MC_score".to_string(),
                    service_type: "q:UniversalPIScore2".to_string(),
                    tag_name: "HR_MC".to_string(),
                    tag_kind: TagKind::Score,
                    tag_sem_type: None,
                    repository_ref: "cache".to_string(),
                    variables: vec![
                        VarDecl::named("coverage", "q:MassCoverage"),
                        VarDecl::named("hitratio", "q:HitRatio"),
                        VarDecl::named("peptidescount", "q:PeptidesCount"),
                    ],
                },
                AssertionDecl {
                    service_name: "HR_score".to_string(),
                    service_type: "q:UniversalPIScore".to_string(),
                    tag_name: "HR".to_string(),
                    tag_kind: TagKind::Score,
                    tag_sem_type: None,
                    repository_ref: "cache".to_string(),
                    variables: vec![VarDecl::named("hitratio", "q:HitRatio")],
                },
                AssertionDecl {
                    service_name: "PIScoreClassifier".to_string(),
                    service_type: "q:PIScoreClassifier".to_string(),
                    tag_name: "ScoreClass".to_string(),
                    tag_kind: TagKind::Class,
                    tag_sem_type: Some("q:PIScoreClassification".to_string()),
                    repository_ref: "cache".to_string(),
                    variables: vec![VarDecl::named("score", "tag:HR_MC")],
                },
            ],
            actions: vec![ActionDecl {
                name: "filter top k score".to_string(),
                kind: ActionKind::Filter {
                    condition: "ScoreClass in q:high, q:mid and HR_MC > 20".to_string(),
                },
            }],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_decl_names() {
        assert_eq!(VarDecl::evidence("q:coverage").effective_name(), "coverage");
        assert_eq!(VarDecl::named("mc", "q:coverage").effective_name(), "mc");
        assert_eq!(VarDecl::named("s", "tag:HR_MC").tag_reference(), Some("HR_MC"));
        assert_eq!(VarDecl::evidence("q:coverage").tag_reference(), None);
    }

    #[test]
    fn paper_example_shape() {
        let spec = QualityViewSpec::paper_example();
        assert_eq!(spec.annotators.len(), 1);
        assert_eq!(spec.assertions.len(), 3);
        assert_eq!(spec.actions.len(), 1);
        assert_eq!(spec.tag_names(), vec!["HR_MC", "HR", "ScoreClass"]);
        let evidence = spec.referenced_evidence();
        assert!(evidence.contains(&"q:HitRatio"));
        assert!(evidence.contains(&"q:MassCoverage"));
        assert!(!evidence.contains(&"tag:HR_MC"), "tag refs are not evidence");
        assert_eq!(spec.referenced_repositories(), vec!["cache"]);
    }

    #[test]
    fn referenced_evidence_dedups() {
        let mut spec = QualityViewSpec::new("t");
        spec.annotators.push(AnnotatorDecl {
            service_name: "a".into(),
            service_type: "q:A".into(),
            repository_ref: "cache".into(),
            persistent: false,
            variables: vec![VarDecl::evidence("q:X"), VarDecl::evidence("q:X")],
        });
        assert_eq!(spec.referenced_evidence(), vec!["q:X"]);
    }

    /// The enrichment planner and the lint passes both key off these
    /// lists, so dedup must preserve first-occurrence order exactly —
    /// a set-based implementation would silently reorder repositories
    /// and change which one becomes the view default.
    #[test]
    fn referenced_lists_are_deduped_in_first_occurrence_order() {
        let mut spec = QualityViewSpec::new("t");
        for (repo, evidence) in
            [("beta", "q:X"), ("alpha", "q:Y"), ("beta", "q:X"), ("gamma", "q:Y")]
        {
            spec.annotators.push(AnnotatorDecl {
                service_name: "a".into(),
                service_type: "q:A".into(),
                repository_ref: repo.into(),
                persistent: false,
                variables: vec![VarDecl::evidence(evidence)],
            });
        }
        spec.assertions.push(AssertionDecl {
            service_name: "qa".into(),
            service_type: "q:QA".into(),
            tag_name: "t".into(),
            tag_kind: TagKind::Score,
            tag_sem_type: None,
            repository_ref: "alpha".into(),
            variables: vec![VarDecl::evidence("q:Z"), VarDecl::named("s", "tag:t")],
        });
        assert_eq!(spec.referenced_repositories(), vec!["beta", "alpha", "gamma"]);
        assert_eq!(spec.referenced_evidence(), vec!["q:X", "q:Y", "q:Z"]);
        // determinism: repeated calls agree
        assert_eq!(spec.referenced_repositories(), spec.referenced_repositories());
        assert_eq!(spec.referenced_evidence(), spec.referenced_evidence());
    }
}
