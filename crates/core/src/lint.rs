//! Collect-all static analysis of quality-view specs (the QV0xx passes).
//!
//! [`analyze`] runs every check the old fail-fast validator performed plus
//! the view-level lints that need whole-spec context (dead evidence, dead
//! tags, shadowing, label misuse, unsatisfiable and subsumed conditions),
//! and returns *all* findings as [`Diagnostic`]s instead of stopping at
//! the first. When the spec was parsed from XML, passing the source
//! [`Element`] anchors each finding to a line/column in the document.
//!
//! `validate()` is a thin adapter over this module: it succeeds exactly
//! when no error-severity diagnostic is produced, and its `ValidatedView`
//! is assembled from the same resolution state the passes build.

use crate::spec::*;
use crate::validate::{BindingTarget, ValidatedView};
use qurator_expr::{check, BinaryOp, Expr, ExprType, TypeEnv, Value};
use qurator_ontology::IqModel;
use qurator_qvlint::{intervals, Diagnostic, Span};
use qurator_rdf::term::Iri;
use qurator_services::ServiceRegistry;
use qurator_xml::Element;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Instant;

/// The outcome of a full analysis run.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Every finding, sorted by source position.
    pub diagnostics: Vec<Diagnostic>,
    /// The resolved view — present exactly when no finding is an error.
    pub resolved: Option<ValidatedView>,
}

impl LintReport {
    /// True when any finding is an error.
    pub fn has_errors(&self) -> bool {
        qurator_qvlint::has_errors(&self.diagnostics)
    }
}

/// Source-position lookup over the parsed XML document. Every accessor
/// degrades to `None` when the spec was built programmatically.
struct Spans<'a> {
    root: Option<&'a Element>,
}

impl<'a> Spans<'a> {
    fn root_span(&self) -> Option<Span> {
        self.root.and_then(|r| r.span())
    }

    fn root_attr(&self, attr: &str) -> Option<Span> {
        self.root.and_then(|r| r.attr_span(attr)).or_else(|| self.root_span())
    }

    fn annotator(&self, i: usize) -> Option<&'a Element> {
        self.root?.children_named("Annotator").nth(i)
    }

    fn assertion(&self, i: usize) -> Option<&'a Element> {
        self.root?.children_named("QualityAssertion").nth(i)
    }

    fn action(&self, i: usize) -> Option<&'a Element> {
        self.root?.children_named("action").nth(i)
    }

    fn attr_of(el: Option<&Element>, attr: &str) -> Option<Span> {
        el.and_then(|e| e.attr_span(attr).or_else(|| e.span()))
    }

    fn annotator_attr(&self, i: usize, attr: &str) -> Option<Span> {
        Self::attr_of(self.annotator(i), attr)
    }

    fn assertion_attr(&self, i: usize, attr: &str) -> Option<Span> {
        Self::attr_of(self.assertion(i), attr)
    }

    fn action_attr(&self, i: usize, attr: &str) -> Option<Span> {
        Self::attr_of(self.action(i), attr)
    }

    fn var(el: Option<&Element>, j: usize) -> Option<Span> {
        let var = el?.child("variables")?.children_named("var").nth(j)?;
        var.attr_span("evidence").or_else(|| var.span())
    }

    fn annotator_var(&self, i: usize, j: usize) -> Option<Span> {
        Self::var(self.annotator(i), j).or_else(|| self.annotator(i).and_then(|e| e.span()))
    }

    fn assertion_var(&self, i: usize, j: usize) -> Option<Span> {
        Self::var(self.assertion(i), j).or_else(|| self.assertion(i).and_then(|e| e.span()))
    }

    /// The condition text of a filter action.
    fn filter_condition(&self, i: usize) -> Option<Span> {
        let condition = self.action(i)?.child("filter")?.child("condition")?;
        condition.text_span().or_else(|| condition.span())
    }

    fn group(&self, i: usize, g: usize) -> Option<&'a Element> {
        self.action(i)?.child("splitter")?.children_named("group").nth(g)
    }

    fn group_attr(&self, i: usize, g: usize, attr: &str) -> Option<Span> {
        Self::attr_of(self.group(i, g), attr)
    }

    /// The condition text of a splitter group.
    fn group_condition(&self, i: usize, g: usize) -> Option<Span> {
        let condition = self.group(i, g)?.child("condition")?;
        condition.text_span().or_else(|| condition.span())
    }
}

/// The local name of a symbol (`q:high` → `high`), matching the
/// evaluator's `symbol_text_eq` semantics.
fn local(symbol: &str) -> &str {
    symbol.rsplit(':').next().unwrap_or(symbol)
}

/// Harvests the spans the whole-plan dataflow pass needs, keyed the way
/// the plan IR names things. Every lookup degrades gracefully when the
/// spec was built programmatically (empty index → spanless findings, no
/// machine fixes).
pub(crate) fn span_index(
    source: Option<&Element>,
    spec: &QualityViewSpec,
    iq: &IqModel,
) -> qurator_qvlint::dataflow::SpanIndex {
    use qurator_qvlint::dataflow::{ConditionSpans, FetchSite};
    let mut index = qurator_qvlint::dataflow::SpanIndex::default();
    let Some(root) = source else { return index };
    index.root = root.span();

    for (decl, el) in spec.annotators.iter().zip(root.children_named("Annotator")) {
        if let Some(span) = el.span() {
            index.annotators.entry(decl.service_name.clone()).or_insert(span);
        }
    }

    for (decl, el) in spec.assertions.iter().zip(root.children_named("QualityAssertion")) {
        let Some(variables) = el.child("variables") else { continue };
        let repo = match variables.attr("repositoryRef") {
            Some(r) => r.to_string(),
            None => continue,
        };
        let repo_span = variables.attr_span("repositoryRef");
        for (var, vel) in decl.variables.iter().zip(variables.children_named("var")) {
            if var.evidence.starts_with("tag:") {
                continue;
            }
            let Ok(evidence) = iq.resolve(&var.evidence) else { continue };
            index.fetches.entry((evidence.to_string(), repo.clone())).or_insert(FetchSite {
                site: vel.attr_span("evidence").or_else(|| vel.span()),
                repository_attr: repo_span,
            });
        }
    }

    for (decl, el) in spec.actions.iter().zip(root.children_named("action")) {
        match &decl.kind {
            ActionKind::Filter { .. } => {
                let condition = el.child("filter").and_then(|f| f.child("condition"));
                index.conditions.insert(
                    (decl.name.clone(), decl.name.clone()),
                    ConditionSpans {
                        condition: condition.and_then(|c| c.text_span().or_else(|| c.span())),
                        element: None,
                    },
                );
            }
            ActionKind::Split { groups } => {
                let elements: Vec<&Element> = el
                    .child("splitter")
                    .map(|s| s.children_named("group").collect())
                    .unwrap_or_default();
                for ((group, _), gel) in groups.iter().zip(elements) {
                    let condition = gel.child("condition");
                    index.conditions.insert(
                        (decl.name.clone(), group.clone()),
                        ConditionSpans {
                            condition: condition.and_then(|c| c.text_span().or_else(|| c.span())),
                            element: gel.span(),
                        },
                    );
                }
            }
        }
    }
    index
}

/// Collects `(variable, symbol)` pairs where a classification tag is
/// compared against a label outside its model (QV021).
fn collect_label_misuse(
    expr: &Expr,
    models: &BTreeMap<String, Vec<String>>,
    out: &mut Vec<(String, String)>,
) {
    let check_pair = |a: &Expr, b: &Expr, out: &mut Vec<(String, String)>| {
        if let (Expr::Var(var), Expr::Const(Value::Symbol(s) | Value::Str(s))) = (a, b) {
            if let Some(labels) = models.get(var) {
                if !labels.iter().any(|l| l == local(s)) {
                    out.push((var.clone(), s.clone()));
                }
            }
        }
    };
    match expr {
        Expr::In(target, items) => {
            for item in items {
                check_pair(target, item, out);
                collect_label_misuse(item, models, out);
            }
            collect_label_misuse(target, models, out);
        }
        Expr::Binary(op, a, b) => {
            if matches!(op, BinaryOp::Eq | BinaryOp::Ne) {
                check_pair(a, b, out);
                check_pair(b, a, out);
            }
            collect_label_misuse(a, models, out);
            collect_label_misuse(b, models, out);
        }
        Expr::Unary(_, a) => collect_label_misuse(a, models, out),
        Expr::Const(_) | Expr::Var(_) => {}
    }
}

/// Rebuilds the expression with foreign labels dropped from `in` lists
/// over classified tags. Returns `None` when the prune would empty a
/// list, when nothing changed, or when misuse survives outside prunable
/// positions (`=`/`!=` comparisons) — those need a human.
fn prune_foreign_labels(expr: &Expr, models: &BTreeMap<String, Vec<String>>) -> Option<Expr> {
    fn walk(e: &Expr, models: &BTreeMap<String, Vec<String>>) -> Option<Expr> {
        match e {
            Expr::In(lhs, items) => {
                if let Expr::Var(var) = &**lhs {
                    if let Some(labels) = models.get(var) {
                        let kept: Vec<Expr> = items
                            .iter()
                            .filter(|item| match item {
                                Expr::Const(Value::Symbol(s) | Value::Str(s)) => {
                                    labels.iter().any(|l| l == local(s))
                                }
                                _ => true,
                            })
                            .cloned()
                            .collect();
                        if kept.is_empty() {
                            return None;
                        }
                        return Some(Expr::In(lhs.clone(), kept));
                    }
                }
                Some(e.clone())
            }
            Expr::Unary(op, a) => Some(Expr::Unary(*op, Box::new(walk(a, models)?))),
            Expr::Binary(op, a, b) => {
                Some(Expr::Binary(*op, Box::new(walk(a, models)?), Box::new(walk(b, models)?)))
            }
            Expr::Const(_) | Expr::Var(_) => Some(e.clone()),
        }
    }
    let pruned = walk(expr, models)?;
    let mut left_over = Vec::new();
    collect_label_misuse(&pruned, models, &mut left_over);
    (left_over.is_empty() && pruned != *expr).then_some(pruned)
}

/// Escapes a replacement expression for splicing into XML character
/// data (`qv check --fix` patches source text, not the DOM).
fn xml_escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c => out.push(c),
        }
    }
    out
}

/// Runs every view-level pass over the spec and collects all findings.
pub fn analyze(
    spec: &QualityViewSpec,
    iq: &IqModel,
    registry: &ServiceRegistry,
    source: Option<&Element>,
) -> LintReport {
    let spans = Spans { root: source };
    let mut d: Vec<Diagnostic> = Vec::new();

    // ---- pass: view shape + repository flags --------------------------
    let started = Instant::now();
    let mark = d.len();
    if spec.name.trim().is_empty() {
        d.push(
            Diagnostic::error("QV001", "quality view has an empty name")
                .at(spans.root_attr("name"))
                .help("give the view a non-empty name attribute"),
        );
    }
    if spec.actions.is_empty() {
        d.push(
            Diagnostic::error(
                "QV002",
                format!(
                    "view {:?} declares no actions — it would have no observable effect",
                    spec.name
                ),
            )
            .at(spans.root_span())
            .help("add an <action> with a <filter> or <splitter>"),
        );
    }
    let mut persistence: BTreeMap<&str, bool> = BTreeMap::new();
    for (i, a) in spec.annotators.iter().enumerate() {
        if let Some(previous) = persistence.insert(&a.repository_ref, a.persistent) {
            if previous != a.persistent {
                d.push(
                    Diagnostic::error(
                        "QV003",
                        format!(
                            "repository {:?} declared both persistent and non-persistent",
                            a.repository_ref
                        ),
                    )
                    .at(spans.annotator(i).and_then(|e| e.span()))
                    .help("use one persistence flag per repository"),
                );
            }
        }
    }
    qurator_qvlint::record_pass_telemetry("view", started.elapsed(), &d[mark..]);

    // ---- pass: annotators ---------------------------------------------
    let started = Instant::now();
    let mark = d.len();
    let mut annotator_types: Vec<Iri> = Vec::new();
    // (evidence, annotator index, variable index) for span-accurate QV017
    let mut provided_evidence: Vec<(Iri, usize, usize)> = Vec::new();
    let mut provider_repo: BTreeMap<Iri, String> = BTreeMap::new();
    for (i, a) in spec.annotators.iter().enumerate() {
        let service = match iq.resolve(&a.service_type) {
            Err(e) => {
                d.push(
                    Diagnostic::error("QV004", format!("annotator {:?}: {e}", a.service_name))
                        .at(spans.annotator_attr(i, "serviceType")),
                );
                None
            }
            Ok(service_type) if !iq.is_annotation_function(&service_type) => {
                d.push(
                    Diagnostic::error(
                        "QV004",
                        format!(
                            "annotator {:?}: <{service_type}> is not an AnnotationFunction class",
                            a.service_name
                        ),
                    )
                    .at(spans.annotator_attr(i, "serviceType"))
                    .help("serviceType must name a q:AnnotationFunction subclass"),
                );
                None
            }
            Ok(service_type) => {
                let service = match registry.annotator(&service_type) {
                    Err(e) => {
                        d.push(
                            Diagnostic::error(
                                "QV009",
                                format!("annotator {:?}: {e}", a.service_name),
                            )
                            .at(spans.annotator_attr(i, "serviceType"))
                            .help("register an implementation for the concept"),
                        );
                        None
                    }
                    Ok(s) => Some(s),
                };
                annotator_types.push(service_type);
                service
            }
        };
        for (j, v) in a.variables.iter().enumerate() {
            let v_span = spans.annotator_var(i, j);
            if v.tag_reference().is_some() {
                d.push(
                    Diagnostic::error(
                        "QV008",
                        format!("annotator {:?} cannot declare tag references", a.service_name),
                    )
                    .at(v_span)
                    .help("annotators provide evidence; tags exist only after assertions"),
                );
                continue;
            }
            match iq.resolve(&v.evidence) {
                Err(e) => d.push(
                    Diagnostic::error("QV006", format!("annotator {:?}: {e}", a.service_name))
                        .at(v_span),
                ),
                Ok(evidence) if !iq.is_evidence_type(&evidence) => d.push(
                    Diagnostic::error(
                        "QV006",
                        format!(
                            "annotator {:?}: <{evidence}> is not a QualityEvidence class",
                            a.service_name
                        ),
                    )
                    .at(v_span)
                    .help("evidence must name a q:QualityEvidence subclass"),
                ),
                Ok(evidence) => {
                    if let Some(service) = &service {
                        if !service.provides().contains(&evidence) {
                            d.push(
                                Diagnostic::error(
                                    "QV007",
                                    format!(
                                        "annotator {:?}: bound service does not provide \
                                         <{evidence}>",
                                        a.service_name
                                    ),
                                )
                                .at(v_span),
                            );
                        }
                    }
                    provider_repo.insert(evidence.clone(), a.repository_ref.clone());
                    provided_evidence.push((evidence, i, j));
                }
            }
        }
    }
    qurator_qvlint::record_pass_telemetry("annotators", started.elapsed(), &d[mark..]);

    // ---- pass: assertions ---------------------------------------------
    let started = Instant::now();
    let mark = d.len();
    let mut assertion_types: Vec<Iri> = Vec::new();
    let mut assertion_bindings: Vec<Vec<(String, BindingTarget)>> = Vec::new();
    let mut enrichment_plan: Vec<(Iri, String)> = Vec::new();
    let mut known_tags: Vec<(String, usize)> = Vec::new();
    // tags consumed by later assertions or action conditions (QV019)
    let mut tags_read: BTreeSet<String> = BTreeSet::new();
    // classification tag -> its model's label local names (QV021)
    let mut class_models: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut type_env = TypeEnv::new().strict();

    for (qi, qa) in spec.assertions.iter().enumerate() {
        let service = match iq.resolve(&qa.service_type) {
            Err(e) => {
                d.push(
                    Diagnostic::error("QV005", format!("assertion {:?}: {e}", qa.service_name))
                        .at(spans.assertion_attr(qi, "serviceType")),
                );
                None
            }
            Ok(service_type) if !iq.is_assertion_type(&service_type) => {
                d.push(
                    Diagnostic::error(
                        "QV005",
                        format!(
                            "assertion {:?}: <{service_type}> is not a QualityAssertion class",
                            qa.service_name
                        ),
                    )
                    .at(spans.assertion_attr(qi, "serviceType"))
                    .help("serviceType must name a q:QualityAssertion subclass"),
                );
                None
            }
            Ok(service_type) => {
                let service = match registry.assertion(&service_type) {
                    Err(e) => {
                        d.push(
                            Diagnostic::error(
                                "QV009",
                                format!("assertion {:?}: {e}", qa.service_name),
                            )
                            .at(spans.assertion_attr(qi, "serviceType"))
                            .help("register an implementation for the concept"),
                        );
                        None
                    }
                    Ok(s) => Some(s),
                };
                assertion_types.push(service_type);
                service
            }
        };

        let duplicate_tag = known_tags.iter().any(|(t, _)| t == &qa.tag_name);
        if duplicate_tag {
            d.push(
                Diagnostic::error("QV010", format!("duplicate tag name {:?}", qa.tag_name))
                    .at(spans.assertion_attr(qi, "tagName")),
            );
        }

        if qa.tag_kind == TagKind::Class {
            match qa.tag_sem_type.as_deref() {
                None => d.push(
                    Diagnostic::error(
                        "QV011",
                        format!(
                            "assertion {:?} produces a class but declares no tagSemType",
                            qa.service_name
                        ),
                    )
                    .at(spans.assertion_attr(qi, "tagSynType"))
                    .help("declare tagSemType naming a q:ClassificationModel subclass"),
                ),
                Some(sem) => match iq.resolve(sem) {
                    Err(e) => d.push(
                        Diagnostic::error("QV011", format!("assertion {:?}: {e}", qa.service_name))
                            .at(spans.assertion_attr(qi, "tagSemType")),
                    ),
                    Ok(model) => {
                        let labels = iq.classification_labels(&model);
                        if labels.is_empty() {
                            d.push(
                                Diagnostic::error(
                                    "QV011",
                                    format!(
                                        "assertion {:?}: <{model}> is not a ClassificationModel \
                                         with labels",
                                        qa.service_name
                                    ),
                                )
                                .at(spans.assertion_attr(qi, "tagSemType")),
                            );
                        } else {
                            class_models.insert(
                                qa.tag_name.clone(),
                                labels.iter().map(|l| l.local_name().to_string()).collect(),
                            );
                        }
                    }
                },
            }
        }

        let mut bindings: Vec<(String, BindingTarget)> = Vec::new();
        let mut bound: Vec<&str> = Vec::new();
        for (j, v) in qa.variables.iter().enumerate() {
            let variable = v.effective_name();
            let v_span = spans.assertion_var(qi, j);
            if bound.contains(&variable) {
                d.push(
                    Diagnostic::warning(
                        "QV020",
                        format!(
                            "assertion {:?}: variable {variable:?} is declared twice; the later \
                             binding shadows the earlier one",
                            qa.service_name
                        ),
                    )
                    .at(v_span),
                );
            }
            bound.push(variable);
            if let Some(tag) = v.tag_reference() {
                if !known_tags.iter().any(|(t, _)| t == tag) {
                    d.push(
                        Diagnostic::error(
                            "QV012",
                            format!(
                                "assertion {:?}: variable {variable:?} references tag {tag:?}, \
                                 which no earlier assertion produces",
                                qa.service_name
                            ),
                        )
                        .at(v_span)
                        .help("tags are visible only to assertions declared after them"),
                    );
                } else {
                    tags_read.insert(tag.to_string());
                    bindings.push((variable.to_string(), BindingTarget::Tag(tag.to_string())));
                }
            } else {
                match iq.resolve(&v.evidence) {
                    Err(e) => d.push(
                        Diagnostic::error("QV006", format!("assertion {:?}: {e}", qa.service_name))
                            .at(v_span),
                    ),
                    Ok(evidence) if !iq.is_evidence_type(&evidence) => d.push(
                        Diagnostic::error(
                            "QV006",
                            format!(
                                "assertion {:?}: <{evidence}> is not a QualityEvidence class",
                                qa.service_name
                            ),
                        )
                        .at(v_span),
                    ),
                    Ok(evidence) => {
                        if !enrichment_plan
                            .iter()
                            .any(|(e, r)| *e == evidence && *r == qa.repository_ref)
                        {
                            enrichment_plan.push((evidence.clone(), qa.repository_ref.clone()));
                        }
                        bindings.push((variable.to_string(), BindingTarget::Evidence(evidence)));
                    }
                }
            }
        }

        if let Some(service) = &service {
            for expected in service.expected_variables() {
                if !bound.contains(&expected.as_str()) {
                    d.push(
                        Diagnostic::error(
                            "QV013",
                            format!(
                                "assertion {:?}: service expects variable {expected:?}, not bound \
                                 (bound: {bound:?})",
                                qa.service_name
                            ),
                        )
                        .at(spans.assertion(qi).and_then(|e| e.span()))
                        .help("add a <var> declaration for the expected variable"),
                    );
                }
            }
        }

        type_env.declare(
            qa.tag_name.clone(),
            match qa.tag_kind {
                TagKind::Score => ExprType::Number,
                TagKind::Class => ExprType::Symbol,
            },
        );
        if !duplicate_tag {
            known_tags.push((qa.tag_name.clone(), qi));
        }
        assertion_bindings.push(bindings);
    }

    // Evidence types become visible to conditions under their local names
    // — declared after the tags, exactly as the evaluator resolves them,
    // which is also why a tag sharing an evidence local name is shadowed.
    let evidence_root = qurator_ontology::iq::vocab::quality_evidence();
    let mut evidence_locals: BTreeMap<String, Iri> = BTreeMap::new();
    for class in iq.ontology().subclasses_of(&evidence_root) {
        if class != evidence_root {
            if let Some((tag, qi)) = known_tags.iter().find(|(t, _)| *t == class.local_name()) {
                d.push(
                    Diagnostic::warning(
                        "QV020",
                        format!(
                            "tag {tag:?} shares its name with evidence type <{class}>; \
                             conditions referring to {tag:?} read the evidence value, not the tag"
                        ),
                    )
                    .at(spans.assertion_attr(*qi, "tagName"))
                    .help("rename the tag so the condition namespace stays unambiguous"),
                );
            }
            type_env.declare(class.local_name().to_string(), ExprType::Unknown);
            evidence_locals.insert(class.local_name().to_string(), class);
        }
    }
    qurator_qvlint::record_pass_telemetry("assertions", started.elapsed(), &d[mark..]);

    // ---- pass: actions -------------------------------------------------
    let started = Instant::now();
    let mark = d.len();
    let default_repository = spec
        .referenced_repositories()
        .first()
        .map(|r| r.to_string())
        .unwrap_or_else(|| "cache".to_string());
    let mut action_names: Vec<&str> = Vec::new();
    for (ai, action) in spec.actions.iter().enumerate() {
        if action_names.contains(&action.name.as_str()) {
            d.push(
                Diagnostic::error("QV014", format!("duplicate action name {:?}", action.name))
                    .at(spans.action_attr(ai, "name")),
            );
        }
        action_names.push(&action.name);

        // (group name, condition text, condition span, group-name span)
        type ConditionRow<'a> = (Option<&'a str>, &'a str, Option<Span>, Option<Span>);
        let conditions: Vec<ConditionRow> = match &action.kind {
            ActionKind::Filter { condition } => {
                vec![(None, condition.as_str(), spans.filter_condition(ai), None)]
            }
            ActionKind::Split { groups } => {
                let mut group_names: Vec<&str> = Vec::new();
                for (gi, (group, _)) in groups.iter().enumerate() {
                    if group == "default" {
                        d.push(
                            Diagnostic::error(
                                "QV014",
                                format!(
                                    "action {:?}: group name \"default\" is reserved for the \
                                         implicit k+1-th output (§4.1)",
                                    action.name
                                ),
                            )
                            .at(spans.group_attr(ai, gi, "name")),
                        );
                    } else if group_names.contains(&group.as_str()) {
                        d.push(
                            Diagnostic::error(
                                "QV014",
                                format!("action {:?}: duplicate group {group:?}", action.name),
                            )
                            .at(spans.group_attr(ai, gi, "name")),
                        );
                    }
                    group_names.push(group);
                }
                groups
                    .iter()
                    .enumerate()
                    .map(|(gi, (group, condition))| {
                        (
                            Some(group.as_str()),
                            condition.as_str(),
                            spans.group_condition(ai, gi),
                            spans.group_attr(ai, gi, "name"),
                        )
                    })
                    .collect()
            }
        };

        // parse + typecheck + per-condition analyses
        let mut parsed: Vec<(Option<&str>, Expr, Option<Span>)> = Vec::new();
        for (group, condition, c_span, _) in &conditions {
            let expr = match qurator_expr::parse(condition) {
                Err(e) => {
                    d.push(
                        Diagnostic::error(
                            "QV015",
                            format!("action {:?}: {e} (in {condition:?})", action.name),
                        )
                        .at(*c_span),
                    );
                    continue;
                }
                Ok(expr) => expr,
            };
            if let Err(e) = check(&expr, &type_env) {
                d.push(
                    Diagnostic::error(
                        "QV016",
                        format!("action {:?}: {e} (in {condition:?})", action.name),
                    )
                    .at(*c_span)
                    .help("conditions may use QA tags and evidence local names"),
                );
                continue;
            }
            // condition-only evidence joins the enrichment plan, fetched
            // from its provider's repository (or the view default)
            for variable in expr.variables() {
                if known_tags.iter().any(|(t, _)| *t == variable) {
                    tags_read.insert(variable.clone());
                    continue;
                }
                if let Some(evidence) = evidence_locals.get(&variable) {
                    if !enrichment_plan.iter().any(|(e, _)| e == evidence) {
                        let repo = provider_repo
                            .get(evidence)
                            .cloned()
                            .unwrap_or_else(|| default_repository.clone());
                        enrichment_plan.push((evidence.clone(), repo));
                    }
                }
            }
            // QV021 — labels outside the tag's classification model. When
            // every misuse sits in an `in` list that stays non-empty after
            // dropping the foreign labels, the pruned condition is a
            // machine-applicable replacement for the whole text run.
            let mut misuse: Vec<(String, String)> = Vec::new();
            collect_label_misuse(&expr, &class_models, &mut misuse);
            let mut fix = (!misuse.is_empty())
                .then(|| prune_foreign_labels(&expr, &class_models))
                .flatten()
                .zip(c_span.filter(|s| s.byte_range().is_some()));
            for (var, symbol) in misuse {
                let labels = class_models.get(&var).cloned().unwrap_or_default();
                let mut diag = Diagnostic::error(
                    "QV021",
                    format!(
                        "action {:?}: label {symbol:?} is not in the classification model \
                         of tag {var:?}",
                        action.name
                    ),
                )
                .at(*c_span)
                .help(format!("valid labels: {labels:?}"));
                if let Some((pruned, span)) = fix.take() {
                    let replacement = pruned.to_source();
                    diag = diag.suggest(
                        format!("drop the foreign label(s): {replacement}"),
                        span,
                        xml_escape_text(&replacement),
                        qurator_qvlint::Applicability::MachineApplicable,
                    );
                }
                d.push(diag);
            }
            // QV022 — the condition can never hold
            if intervals::definitely_unsat(&expr) {
                d.push(
                    Diagnostic::error(
                        "QV022",
                        format!(
                            "action {:?}: condition {condition:?} is unsatisfiable — it can \
                             never accept an item",
                            action.name
                        ),
                    )
                    .at(*c_span)
                    .help("the predicate's ranges/label sets have an empty intersection"),
                );
            }
            parsed.push((*group, expr, *c_span));
        }

        // QV023 — a splitter group whose condition implies another group's
        // adds no discrimination (items join every matching group).
        for x in 0..parsed.len() {
            for y in (x + 1)..parsed.len() {
                let (Some(ga), ea, sa) = (&parsed[x].0, &parsed[x].1, parsed[x].2) else {
                    continue;
                };
                let (Some(gb), eb, _) = (&parsed[y].0, &parsed[y].1, parsed[y].2) else {
                    continue;
                };
                let a_implies_b = intervals::implies(ea, eb);
                let b_implies_a = intervals::implies(eb, ea);
                let message = if a_implies_b && b_implies_a {
                    format!(
                        "action {:?}: groups {ga:?} and {gb:?} accept exactly the same items",
                        action.name
                    )
                } else if a_implies_b {
                    format!(
                        "action {:?}: group {ga:?} is subsumed by group {gb:?} — every item it \
                         accepts also joins {gb:?}",
                        action.name
                    )
                } else if b_implies_a {
                    format!(
                        "action {:?}: group {gb:?} is subsumed by group {ga:?} — every item it \
                         accepts also joins {ga:?}",
                        action.name
                    )
                } else {
                    continue;
                };
                d.push(
                    Diagnostic::warning("QV023", message)
                        .at(sa)
                        .help("tighten one of the conditions, or merge the groups"),
                );
            }
        }
    }
    qurator_qvlint::record_pass_telemetry("actions", started.elapsed(), &d[mark..]);

    // ---- pass: dataflow (dead evidence / dead tags) ---------------------
    let started = Instant::now();
    let mark = d.len();
    // QV017 — an annotator that computes evidence nobody reads is dead
    // weight in every execution of the view.
    for (evidence, i, j) in &provided_evidence {
        if !enrichment_plan.iter().any(|(e, _)| e == evidence) {
            d.push(
                Diagnostic::error(
                    "QV017",
                    format!(
                        "evidence <{evidence}> is provided by an annotator but consumed by no \
                         assertion"
                    ),
                )
                .at(spans.annotator_var(*i, *j))
                .help("bind the evidence in an assertion or condition, or drop the annotator"),
            );
        }
    }
    // QV018 — evidence fetched from a repository this view itself creates
    // as non-persistent, with no annotator filling it: the lookup can only
    // come back empty.
    let provided: BTreeSet<&Iri> = provided_evidence.iter().map(|(e, _, _)| e).collect();
    for (evidence, repo) in &enrichment_plan {
        if provided.contains(evidence) {
            continue;
        }
        if persistence.get(repo.as_str()) == Some(&false) {
            d.push(
                Diagnostic::warning(
                    "QV018",
                    format!(
                        "evidence <{evidence}> is consumed from repository {repo:?}, which this \
                         view declares non-persistent, but no annotator provides it"
                    ),
                )
                .at(spans.root_span())
                .help("add an annotator for the evidence, or mark the repository persistent"),
            );
        }
    }
    // QV019 — a tag no action condition or later assertion ever reads.
    for (tag, qi) in &known_tags {
        if !tags_read.contains(tag) {
            d.push(
                Diagnostic::warning(
                    "QV019",
                    format!(
                        "tag {tag:?} is produced by assertion {:?} but read by no action or \
                         later assertion",
                        spec.assertions[*qi].service_name
                    ),
                )
                .at(spans.assertion_attr(*qi, "tagName"))
                .help("use the tag in a condition, reference it as tag:…, or drop the assertion"),
            );
        }
    }
    qurator_qvlint::record_pass_telemetry("dataflow", started.elapsed(), &d[mark..]);

    qurator_qvlint::sort_diagnostics(&mut d);
    let resolved = (!qurator_qvlint::has_errors(&d)
        && annotator_types.len() == spec.annotators.len()
        && assertion_types.len() == spec.assertions.len())
    .then(|| ValidatedView {
        spec: spec.clone(),
        annotator_types,
        assertion_types,
        enrichment_plan,
        assertion_bindings,
    });
    LintReport { diagnostics: d, resolved }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_rdf::namespace::q;
    use qurator_services::stdlib::{
        FieldCaptureAnnotator, StatClassifierAssertion, ZScoreAssertion,
    };
    use std::sync::Arc;

    fn setup() -> (IqModel, ServiceRegistry) {
        let iq = IqModel::with_proteomics_extension().unwrap();
        let registry = ServiceRegistry::new();
        registry
            .register_annotator(Arc::new(FieldCaptureAnnotator::new(
                q::iri("ImprintOutputAnnotation"),
                &[
                    ("hitRatio", q::iri("HitRatio")),
                    ("massCoverage", q::iri("MassCoverage")),
                    ("peptidesCount", q::iri("PeptidesCount")),
                ],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(ZScoreAssertion::new(
                q::iri("UniversalPIScore2"),
                &["coverage", "hitratio", "peptidescount"],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(ZScoreAssertion::new(
                q::iri("UniversalPIScore"),
                &["hitratio"],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(StatClassifierAssertion::new(
                q::iri("PIScoreClassifier"),
                "score",
                q::iri("PIScoreClassification"),
                (q::iri("low"), q::iri("mid"), q::iri("high")),
            )))
            .unwrap();
        (iq, registry)
    }

    fn run(spec: &QualityViewSpec) -> LintReport {
        let (iq, registry) = setup();
        analyze(spec, &iq, &registry, None)
    }

    fn codes(report: &LintReport) -> Vec<&str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn paper_example_is_clean_except_the_unused_hr_tag() {
        let report = run(&QualityViewSpec::paper_example());
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        assert!(report.resolved.is_some());
        // HR is produced by HR_score but never read — the one finding
        assert_eq!(codes(&report), vec!["QV019"]);
        assert!(report.diagnostics[0].message.contains("\"HR\""));
    }

    #[test]
    fn resolution_matches_the_validator() {
        let report = run(&QualityViewSpec::paper_example());
        let view = report.resolved.unwrap();
        assert_eq!(view.enrichment_plan.len(), 3);
        assert!(view.enrichment_plan.iter().all(|(_, repo)| repo == "cache"));
        assert_eq!(
            view.assertion_bindings[2],
            vec![("score".to_string(), BindingTarget::Tag("HR_MC".into()))]
        );
    }

    #[test]
    fn collects_every_fault_in_one_pass() {
        let mut spec = QualityViewSpec::paper_example();
        // fault 1: non-evidence concept on the annotator
        spec.annotators[0].variables[0].evidence = "q:UniversalPIScore".into();
        // fault 2: duplicate tag
        spec.assertions[1].tag_name = "HR_MC".into();
        // fault 3: type error in the condition
        spec.actions[0].kind = ActionKind::Filter { condition: "ScoreClass > 3".into() };
        let report = run(&spec);
        let got = codes(&report);
        for expected in ["QV006", "QV010", "QV016"] {
            assert!(got.contains(&expected), "missing {expected} in {got:?}");
        }
        assert!(report.resolved.is_none());
    }

    #[test]
    fn unsatisfiable_condition_is_an_error() {
        let mut spec = QualityViewSpec::paper_example();
        spec.actions[0].kind = ActionKind::Filter { condition: "HR_MC > 20 and HR_MC < 10".into() };
        let report = run(&spec);
        assert!(codes(&report).contains(&"QV022"), "{:?}", report.diagnostics);
    }

    #[test]
    fn subsumed_splitter_group_is_warned() {
        let mut spec = QualityViewSpec::paper_example();
        spec.actions[0].kind = ActionKind::Split {
            groups: vec![
                ("strict".into(), "HR_MC > 20".into()),
                ("loose".into(), "HR_MC > 10".into()),
            ],
        };
        let report = run(&spec);
        assert!(!report.has_errors(), "{:?}", report.diagnostics);
        let qv023 = report.diagnostics.iter().find(|d| d.code == "QV023").unwrap();
        assert!(qv023.message.contains("\"strict\" is subsumed by group \"loose\""));
    }

    #[test]
    fn equivalent_groups_are_called_out() {
        let mut spec = QualityViewSpec::paper_example();
        spec.actions[0].kind = ActionKind::Split {
            groups: vec![
                ("a".into(), "HR_MC > 20".into()),
                ("b".into(), "not (HR_MC <= 20)".into()),
            ],
        };
        let report = run(&spec);
        let qv023 = report.diagnostics.iter().find(|d| d.code == "QV023").unwrap();
        assert!(qv023.message.contains("exactly the same items"));
    }

    #[test]
    fn label_outside_classification_model_is_an_error() {
        let mut spec = QualityViewSpec::paper_example();
        spec.actions[0].kind =
            ActionKind::Filter { condition: "ScoreClass in q:high, q:banana".into() };
        let report = run(&spec);
        let qv021 = report.diagnostics.iter().find(|d| d.code == "QV021").unwrap();
        assert!(qv021.message.contains("banana"));
        assert!(qv021.help.as_deref().unwrap().contains("high"));
    }

    #[test]
    fn equality_against_foreign_label_is_flagged_too() {
        let mut spec = QualityViewSpec::paper_example();
        spec.actions[0].kind =
            ActionKind::Filter { condition: "ScoreClass = q:banana or HR_MC > 0".into() };
        let report = run(&spec);
        assert!(codes(&report).contains(&"QV021"), "{:?}", report.diagnostics);
    }

    #[test]
    fn duplicate_qa_variable_is_shadowing() {
        let mut spec = QualityViewSpec::paper_example();
        spec.assertions[1].variables.push(VarDecl::named("hitratio", "q:MassCoverage"));
        let report = run(&spec);
        let qv020 = report.diagnostics.iter().find(|d| d.code == "QV020").unwrap();
        assert!(qv020.message.contains("hitratio"));
    }

    #[test]
    fn consumed_but_never_annotated_from_fresh_repository_warns() {
        let mut spec = QualityViewSpec::paper_example();
        // q:Masses is consumed from the non-persistent cache but no
        // annotator provides it
        spec.assertions[1].variables.push(VarDecl::named("extra", "q:Masses"));
        let report = run(&spec);
        let qv018 = report.diagnostics.iter().find(|d| d.code == "QV018").unwrap();
        assert!(qv018.message.contains("Masses"));
        // pre-existing persistent repositories stay silent
        let mut spec2 = QualityViewSpec::paper_example();
        spec2.annotators.clear();
        let report2 = run(&spec2);
        assert!(
            !report2.diagnostics.iter().any(|d| d.code == "QV018"),
            "{:?}",
            report2.diagnostics
        );
    }

    #[test]
    fn spans_resolve_into_the_source_document() {
        let (iq, registry) = setup();
        let xml = crate::xmlio::tests::PAPER_VIEW_XML;
        let root = qurator_xml::parse(xml).unwrap();
        let spec = crate::xmlio::element_to_spec(&root).unwrap();
        let report = analyze(&spec, &iq, &registry, Some(&root));
        let qv019 = report.diagnostics.iter().find(|d| d.code == "QV019").unwrap();
        let span = qv019.span.expect("span from source");
        // the span must point at the HR tagName attribute value
        let line = xml.lines().nth(span.line as usize - 1).unwrap();
        assert!(
            line[span.col as usize - 1..].starts_with("HR\""),
            "span {span} points at {line:?}"
        );
    }
}
