//! Semantic validation of quality views against the IQ model, the service
//! registry and the condition type checker.
//!
//! Validation happens at composition time, before compilation: the paper's
//! cost-effectiveness argument rests on users being told about unknown
//! concepts, unbound variables and ill-typed conditions *before* anything
//! is deployed.

use crate::spec::*;
use crate::{QuratorError, Result};
use qurator_expr::{check, ExprType, TypeEnv};
use qurator_ontology::IqModel;
use qurator_rdf::term::Iri;
use qurator_services::ServiceRegistry;
use std::collections::BTreeMap;

/// The resolved, validated form of a view (what the compiler consumes).
#[derive(Debug, Clone)]
pub struct ValidatedView {
    pub spec: QualityViewSpec,
    /// Annotator service-type IRIs, by declaration order.
    pub annotator_types: Vec<Iri>,
    /// QA service-type IRIs, by declaration order.
    pub assertion_types: Vec<Iri>,
    /// evidence type → repository name (the §6.1 association used to
    /// configure the single Data-Enrichment operator).
    pub enrichment_plan: Vec<(Iri, String)>,
    /// For each QA (by index): resolved evidence IRIs per variable name.
    pub assertion_bindings: Vec<Vec<(String, BindingTarget)>>,
}

/// Where a validated QA variable gets its value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindingTarget {
    Evidence(Iri),
    Tag(String),
}

/// Validates a spec. On success, returns the resolved view.
pub fn validate(
    spec: &QualityViewSpec,
    iq: &IqModel,
    registry: &ServiceRegistry,
) -> Result<ValidatedView> {
    let err = |m: String| QuratorError::Validation(m);

    if spec.name.trim().is_empty() {
        return Err(err("quality view has an empty name".into()));
    }
    if spec.actions.is_empty() {
        return Err(err(format!(
            "view {:?} declares no actions — it would have no observable effect",
            spec.name
        )));
    }

    // ---- repositories: consistent persistence flags
    let mut persistence: BTreeMap<&str, bool> = BTreeMap::new();
    for a in &spec.annotators {
        if let Some(previous) = persistence.insert(&a.repository_ref, a.persistent) {
            if previous != a.persistent {
                return Err(err(format!(
                    "repository {:?} declared both persistent and non-persistent",
                    a.repository_ref
                )));
            }
        }
    }

    // ---- annotators
    let mut annotator_types = Vec::with_capacity(spec.annotators.len());
    let mut provided_evidence: Vec<Iri> = Vec::new();
    // evidence type -> repository its annotator writes to (used to route
    // condition-only evidence to the right store)
    let mut provider_repo: BTreeMap<Iri, String> = BTreeMap::new();
    for a in &spec.annotators {
        let service_type = iq.resolve(&a.service_type).map_err(|e| err(e.to_string()))?;
        if !iq.is_annotation_function(&service_type) {
            return Err(err(format!(
                "annotator {:?}: <{service_type}> is not an AnnotationFunction class",
                a.service_name
            )));
        }
        let service = registry.annotator(&service_type).map_err(|e| err(e.to_string()))?;
        let provides = service.provides();
        for v in &a.variables {
            if v.tag_reference().is_some() {
                return Err(err(format!(
                    "annotator {:?} cannot declare tag references",
                    a.service_name
                )));
            }
            let evidence = iq.resolve(&v.evidence).map_err(|e| err(e.to_string()))?;
            if !iq.is_evidence_type(&evidence) {
                return Err(err(format!(
                    "annotator {:?}: <{evidence}> is not a QualityEvidence class",
                    a.service_name
                )));
            }
            if !provides.contains(&evidence) {
                return Err(err(format!(
                    "annotator {:?}: bound service does not provide <{evidence}>",
                    a.service_name
                )));
            }
            provider_repo.insert(evidence.clone(), a.repository_ref.clone());
            provided_evidence.push(evidence);
        }
        annotator_types.push(service_type);
    }

    // ---- assertions
    let mut assertion_types = Vec::with_capacity(spec.assertions.len());
    let mut assertion_bindings = Vec::with_capacity(spec.assertions.len());
    let mut enrichment_plan: Vec<(Iri, String)> = Vec::new();
    let mut known_tags: Vec<&str> = Vec::new();
    let mut type_env = TypeEnv::new().strict();

    for qa in &spec.assertions {
        let service_type = iq.resolve(&qa.service_type).map_err(|e| err(e.to_string()))?;
        if !iq.is_assertion_type(&service_type) {
            return Err(err(format!(
                "assertion {:?}: <{service_type}> is not a QualityAssertion class",
                qa.service_name
            )));
        }
        let service = registry.assertion(&service_type).map_err(|e| err(e.to_string()))?;

        if known_tags.contains(&qa.tag_name.as_str()) {
            return Err(err(format!("duplicate tag name {:?}", qa.tag_name)));
        }

        // classification metadata
        if qa.tag_kind == TagKind::Class {
            let sem = qa.tag_sem_type.as_deref().ok_or_else(|| {
                err(format!(
                    "assertion {:?} produces a class but declares no tagSemType",
                    qa.service_name
                ))
            })?;
            let model = iq.resolve(sem).map_err(|e| err(e.to_string()))?;
            if iq.classification_labels(&model).is_empty() {
                return Err(err(format!(
                    "assertion {:?}: <{model}> is not a ClassificationModel with labels",
                    qa.service_name
                )));
            }
        }

        // variable bindings
        let mut bindings: Vec<(String, BindingTarget)> = Vec::new();
        for v in &qa.variables {
            let variable = v.effective_name().to_string();
            if let Some(tag) = v.tag_reference() {
                if !known_tags.contains(&tag) {
                    return Err(err(format!(
                        "assertion {:?}: variable {variable:?} references tag {tag:?}, \
                         which no earlier assertion produces",
                        qa.service_name
                    )));
                }
                bindings.push((variable, BindingTarget::Tag(tag.to_string())));
            } else {
                let evidence = iq.resolve(&v.evidence).map_err(|e| err(e.to_string()))?;
                if !iq.is_evidence_type(&evidence) {
                    return Err(err(format!(
                        "assertion {:?}: <{evidence}> is not a QualityEvidence class",
                        qa.service_name
                    )));
                }
                if !enrichment_plan.iter().any(|(e, r)| *e == evidence && *r == qa.repository_ref) {
                    enrichment_plan.push((evidence.clone(), qa.repository_ref.clone()));
                }
                bindings.push((variable, BindingTarget::Evidence(evidence)));
            }
        }

        // every variable the service expects must be bound
        let bound: Vec<&str> = bindings.iter().map(|(v, _)| v.as_str()).collect();
        for expected in service.expected_variables() {
            if !bound.contains(&expected.as_str()) {
                return Err(err(format!(
                    "assertion {:?}: service expects variable {expected:?}, not bound \
                     (bound: {bound:?})",
                    qa.service_name
                )));
            }
        }

        // condition-language type of the produced tag
        type_env.declare(
            qa.tag_name.clone(),
            match qa.tag_kind {
                TagKind::Score => ExprType::Number,
                TagKind::Class => ExprType::Symbol,
            },
        );
        known_tags.push(&qa.tag_name);
        assertion_types.push(service_type);
        assertion_bindings.push(bindings);
    }

    // Every registered evidence type is visible to conditions under its
    // local name (the paper's filters mix tags with raw evidence:
    // "select the high and mid IDs for which the Mass Coverage is also
    // greater than X"). Evidence referenced *only* by a condition is added
    // to the enrichment plan against the view's default repository.
    let evidence_root = qurator_ontology::iq::vocab::quality_evidence();
    let mut evidence_locals: BTreeMap<String, Iri> = BTreeMap::new();
    for class in iq.ontology().subclasses_of(&evidence_root) {
        if class != evidence_root {
            type_env.declare(class.local_name().to_string(), ExprType::Unknown);
            evidence_locals.insert(class.local_name().to_string(), class);
        }
    }
    let default_repository = spec
        .referenced_repositories()
        .first()
        .map(|r| r.to_string())
        .unwrap_or_else(|| "cache".to_string());

    // ---- actions
    let mut action_names: Vec<&str> = Vec::new();
    for action in &spec.actions {
        if action_names.contains(&action.name.as_str()) {
            return Err(err(format!("duplicate action name {:?}", action.name)));
        }
        action_names.push(&action.name);
        let conditions: Vec<&str> = match &action.kind {
            ActionKind::Filter { condition } => vec![condition.as_str()],
            ActionKind::Split { groups } => {
                let mut group_names: Vec<&str> = Vec::new();
                for (group, _) in groups {
                    if group == "default" {
                        return Err(err(format!(
                            "action {:?}: group name \"default\" is reserved for the \
                             implicit k+1-th output (§4.1)",
                            action.name
                        )));
                    }
                    if group_names.contains(&group.as_str()) {
                        return Err(err(format!(
                            "action {:?}: duplicate group {group:?}",
                            action.name
                        )));
                    }
                    group_names.push(group);
                }
                groups.iter().map(|(_, c)| c.as_str()).collect()
            }
        };
        for condition in conditions {
            let expr = qurator_expr::parse(condition)
                .map_err(|e| err(format!("action {:?}: {e} (in {condition:?})", action.name)))?;
            check(&expr, &type_env)
                .map_err(|e| err(format!("action {:?}: {e} (in {condition:?})", action.name)))?;
            // condition-only evidence joins the enrichment plan
            for variable in expr.variables() {
                if known_tags.contains(&variable.as_str()) {
                    continue;
                }
                if let Some(evidence) = evidence_locals.get(&variable) {
                    if !enrichment_plan.iter().any(|(e, _)| e == evidence) {
                        // fetch from the repository whose annotator provides
                        // this evidence; fall back to the view's default
                        let repo = provider_repo
                            .get(evidence)
                            .cloned()
                            .unwrap_or_else(|| default_repository.clone());
                        enrichment_plan.push((evidence.clone(), repo));
                    }
                }
            }
        }
    }

    // evidence consumed but not provided by any annotator: allowed (it may
    // pre-exist in a persistent repository), but evidence provided and
    // never consumed deserves an error — the annotator is dead weight.
    for provided in &provided_evidence {
        let consumed = enrichment_plan.iter().any(|(e, _)| e == provided);
        if !consumed {
            return Err(err(format!(
                "evidence <{provided}> is provided by an annotator but consumed by no assertion"
            )));
        }
    }

    Ok(ValidatedView {
        spec: spec.clone(),
        annotator_types,
        assertion_types,
        enrichment_plan,
        assertion_bindings,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_rdf::namespace::q;
    use qurator_services::stdlib::{
        FieldCaptureAnnotator, StatClassifierAssertion, ZScoreAssertion,
    };
    use std::sync::Arc;

    fn setup() -> (IqModel, ServiceRegistry) {
        let iq = IqModel::with_proteomics_extension().unwrap();
        let registry = ServiceRegistry::new();
        registry
            .register_annotator(Arc::new(FieldCaptureAnnotator::new(
                q::iri("ImprintOutputAnnotation"),
                &[
                    ("hitRatio", q::iri("HitRatio")),
                    ("massCoverage", q::iri("MassCoverage")),
                    ("peptidesCount", q::iri("PeptidesCount")),
                ],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(ZScoreAssertion::new(
                q::iri("UniversalPIScore2"),
                &["coverage", "hitratio", "peptidescount"],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(ZScoreAssertion::new(
                q::iri("UniversalPIScore"),
                &["hitratio"],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(StatClassifierAssertion::new(
                q::iri("PIScoreClassifier"),
                "score",
                q::iri("PIScoreClassification"),
                (q::iri("low"), q::iri("mid"), q::iri("high")),
            )))
            .unwrap();
        (iq, registry)
    }

    #[test]
    fn paper_view_validates() {
        let (iq, registry) = setup();
        let view = validate(&QualityViewSpec::paper_example(), &iq, &registry).unwrap();
        assert_eq!(view.annotator_types, vec![q::iri("ImprintOutputAnnotation")]);
        assert_eq!(view.assertion_types.len(), 3);
        // all three evidence types fetched from the cache
        assert_eq!(view.enrichment_plan.len(), 3);
        assert!(view.enrichment_plan.iter().all(|(_, repo)| repo == "cache"));
        // classifier bound to the HR_MC tag
        assert_eq!(
            view.assertion_bindings[2],
            vec![("score".to_string(), BindingTarget::Tag("HR_MC".into()))]
        );
    }

    fn break_spec(mutate: impl FnOnce(&mut QualityViewSpec)) -> QuratorError {
        let (iq, registry) = setup();
        let mut spec = QualityViewSpec::paper_example();
        mutate(&mut spec);
        validate(&spec, &iq, &registry).unwrap_err()
    }

    #[test]
    fn rejects_unknown_service_type() {
        let e = break_spec(|s| s.annotators[0].service_type = "q:NoSuchAnnotator".into());
        assert!(e.to_string().contains("not an AnnotationFunction"));
    }

    #[test]
    fn rejects_unregistered_service() {
        let (iq, registry) = setup();
        let mut spec = QualityViewSpec::paper_example();
        // a valid IQ concept with no registered implementation
        spec.assertions[1].service_type = "q:SomeNewQA".into();
        let mut iq = iq;
        iq.register_assertion_type("SomeNewQA").unwrap();
        let e = validate(&spec, &iq, &registry).unwrap_err();
        assert!(e.to_string().contains("no service registered"));
    }

    #[test]
    fn rejects_non_evidence_variable() {
        let e = break_spec(|s| s.annotators[0].variables[0].evidence = "q:UniversalPIScore".into());
        assert!(e.to_string().contains("not a QualityEvidence"));
    }

    #[test]
    fn rejects_unprovided_evidence() {
        let e = break_spec(|s| s.annotators[0].variables.push(VarDecl::evidence("q:Masses")));
        // the Imprint capture service does not provide q:Masses
        assert!(e.to_string().contains("does not provide"));
    }

    #[test]
    fn rejects_forward_tag_reference() {
        let e = break_spec(|s| {
            s.assertions[0].variables[0] = VarDecl::named("coverage", "tag:ScoreClass")
        });
        assert!(e.to_string().contains("no earlier assertion"));
    }

    #[test]
    fn rejects_missing_expected_variable() {
        let e = break_spec(|s| {
            s.assertions[0].variables.remove(0); // drop "coverage"
        });
        assert!(e.to_string().contains("expects variable"));
    }

    #[test]
    fn rejects_duplicate_tags_and_actions() {
        let e = break_spec(|s| s.assertions[1].tag_name = "HR_MC".into());
        assert!(e.to_string().contains("duplicate tag"));
        let e = break_spec(|s| {
            let a = s.actions[0].clone();
            s.actions.push(a);
        });
        assert!(e.to_string().contains("duplicate action"));
    }

    #[test]
    fn rejects_bad_conditions() {
        // syntax
        let e = break_spec(|s| s.actions[0].kind = ActionKind::Filter { condition: ")".into() });
        assert!(e.to_string().contains("syntax"));
        // undeclared variable (typo in tag)
        let e = break_spec(|s| {
            s.actions[0].kind = ActionKind::Filter { condition: "ScoerClass in q:high".into() }
        });
        assert!(e.to_string().contains("ScoerClass"));
        // type error: ordering a classification
        let e = break_spec(|s| {
            s.actions[0].kind = ActionKind::Filter { condition: "ScoreClass > 3".into() }
        });
        assert!(e.to_string().contains("type error"));
    }

    #[test]
    fn rejects_class_qa_without_model() {
        let e = break_spec(|s| s.assertions[2].tag_sem_type = None);
        assert!(e.to_string().contains("tagSemType"));
    }

    #[test]
    fn rejects_actionless_view() {
        let e = break_spec(|s| s.actions.clear());
        assert!(e.to_string().contains("no actions"));
    }

    #[test]
    fn rejects_conflicting_persistence() {
        let e = break_spec(|s| {
            let mut second = s.annotators[0].clone();
            second.service_name = "again".into();
            second.persistent = true;
            s.annotators.push(second);
        });
        assert!(e.to_string().contains("persistent"));
    }

    #[test]
    fn rejects_unconsumed_annotator_evidence() {
        let (iq, registry) = setup();
        let mut spec = QualityViewSpec::paper_example();
        // consume only HitRatio: drop the HR_MC QA and classifier
        spec.assertions.truncate(2);
        spec.assertions.remove(0);
        spec.actions[0].kind = ActionKind::Filter { condition: "HR > 0".into() };
        let e = validate(&spec, &iq, &registry).unwrap_err();
        assert!(e.to_string().contains("consumed by no assertion"), "{e}");
    }

    #[test]
    fn evidence_may_come_from_persistent_repositories() {
        // a view with no annotators at all is fine: evidence pre-exists
        let (iq, registry) = setup();
        let mut spec = QualityViewSpec::paper_example();
        spec.annotators.clear();
        validate(&spec, &iq, &registry).unwrap();
    }
}

#[cfg(test)]
mod provider_routing_tests {
    use super::*;
    use crate::spec::{ActionDecl, ActionKind, AnnotatorDecl, QualityViewSpec, VarDecl};
    use qurator_rdf::namespace::q;
    use qurator_services::stdlib::FieldCaptureAnnotator;
    use qurator_services::ServiceRegistry;
    use std::sync::Arc;

    /// Condition-only evidence must be fetched from the repository of the
    /// annotator that provides it, not the first repository mentioned.
    #[test]
    fn condition_evidence_routes_to_providing_repository() {
        let iq = IqModel::with_proteomics_extension().unwrap();
        let registry = ServiceRegistry::new();
        registry
            .register_annotator(Arc::new(FieldCaptureAnnotator::new(
                q::iri("ImprintOutputAnnotation"),
                &[("hitRatio", q::iri("HitRatio")), ("massCoverage", q::iri("MassCoverage"))],
            )))
            .unwrap();

        let mut spec = QualityViewSpec::new("routing");
        // annotator 1 writes HitRatio into "alpha"
        spec.annotators.push(AnnotatorDecl {
            service_name: "a1".into(),
            service_type: "q:ImprintOutputAnnotation".into(),
            repository_ref: "alpha".into(),
            persistent: false,
            variables: vec![VarDecl::evidence("q:HitRatio")],
        });
        // the condition references both HitRatio (provided into "alpha")
        // and PeptidesCount (provided by no annotator -> default repo).
        spec.actions.push(ActionDecl {
            name: "keep".into(),
            kind: ActionKind::Filter { condition: "HitRatio > 0.5 or PeptidesCount > 3".into() },
        });
        let view = validate(&spec, &iq, &registry).unwrap();
        let repo_of = |local: &str| {
            view.enrichment_plan
                .iter()
                .find(|(e, _)| e.local_name() == local)
                .map(|(_, r)| r.clone())
                .unwrap()
        };
        assert_eq!(repo_of("HitRatio"), "alpha");
        assert_eq!(repo_of("PeptidesCount"), "alpha", "falls back to the view default");
    }
}
