//! Semantic validation of quality views against the IQ model, the service
//! registry and the condition type checker.
//!
//! Validation happens at composition time, before compilation: the paper's
//! cost-effectiveness argument rests on users being told about unknown
//! concepts, unbound variables and ill-typed conditions *before* anything
//! is deployed.

use crate::spec::*;
use crate::{QuratorError, Result};
use qurator_ontology::IqModel;
use qurator_rdf::term::Iri;
use qurator_services::ServiceRegistry;

/// The resolved, validated form of a view (what the compiler consumes).
#[derive(Debug, Clone)]
pub struct ValidatedView {
    pub spec: QualityViewSpec,
    /// Annotator service-type IRIs, by declaration order.
    pub annotator_types: Vec<Iri>,
    /// QA service-type IRIs, by declaration order.
    pub assertion_types: Vec<Iri>,
    /// evidence type → repository name (the §6.1 association used to
    /// configure the single Data-Enrichment operator).
    pub enrichment_plan: Vec<(Iri, String)>,
    /// For each QA (by index): resolved evidence IRIs per variable name.
    pub assertion_bindings: Vec<Vec<(String, BindingTarget)>>,
}

/// Where a validated QA variable gets its value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindingTarget {
    Evidence(Iri),
    Tag(String),
}

/// Validates a spec. On success, returns the resolved view.
///
/// This is a thin adapter over the collect-all analyzer in
/// [`crate::lint`]: it succeeds exactly when no pass reports an error,
/// and on failure the returned [`QuratorError::Diagnostics`] carries the
/// *complete* finding list — every fault in the spec, not just the first.
pub fn validate(
    spec: &QualityViewSpec,
    iq: &IqModel,
    registry: &ServiceRegistry,
) -> Result<ValidatedView> {
    let report = crate::lint::analyze(spec, iq, registry, None);
    match report.resolved {
        Some(view) => Ok(view),
        None => Err(QuratorError::Diagnostics(report.diagnostics)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_rdf::namespace::q;
    use qurator_services::stdlib::{
        FieldCaptureAnnotator, StatClassifierAssertion, ZScoreAssertion,
    };
    use std::sync::Arc;

    fn setup() -> (IqModel, ServiceRegistry) {
        let iq = IqModel::with_proteomics_extension().unwrap();
        let registry = ServiceRegistry::new();
        registry
            .register_annotator(Arc::new(FieldCaptureAnnotator::new(
                q::iri("ImprintOutputAnnotation"),
                &[
                    ("hitRatio", q::iri("HitRatio")),
                    ("massCoverage", q::iri("MassCoverage")),
                    ("peptidesCount", q::iri("PeptidesCount")),
                ],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(ZScoreAssertion::new(
                q::iri("UniversalPIScore2"),
                &["coverage", "hitratio", "peptidescount"],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(ZScoreAssertion::new(
                q::iri("UniversalPIScore"),
                &["hitratio"],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(StatClassifierAssertion::new(
                q::iri("PIScoreClassifier"),
                "score",
                q::iri("PIScoreClassification"),
                (q::iri("low"), q::iri("mid"), q::iri("high")),
            )))
            .unwrap();
        (iq, registry)
    }

    #[test]
    fn paper_view_validates() {
        let (iq, registry) = setup();
        let view = validate(&QualityViewSpec::paper_example(), &iq, &registry).unwrap();
        assert_eq!(view.annotator_types, vec![q::iri("ImprintOutputAnnotation")]);
        assert_eq!(view.assertion_types.len(), 3);
        // all three evidence types fetched from the cache
        assert_eq!(view.enrichment_plan.len(), 3);
        assert!(view.enrichment_plan.iter().all(|(_, repo)| repo == "cache"));
        // classifier bound to the HR_MC tag
        assert_eq!(
            view.assertion_bindings[2],
            vec![("score".to_string(), BindingTarget::Tag("HR_MC".into()))]
        );
    }

    fn break_spec(mutate: impl FnOnce(&mut QualityViewSpec)) -> QuratorError {
        let (iq, registry) = setup();
        let mut spec = QualityViewSpec::paper_example();
        mutate(&mut spec);
        validate(&spec, &iq, &registry).unwrap_err()
    }

    #[test]
    fn rejects_unknown_service_type() {
        let e = break_spec(|s| s.annotators[0].service_type = "q:NoSuchAnnotator".into());
        assert!(e.to_string().contains("not an AnnotationFunction"));
    }

    #[test]
    fn rejects_unregistered_service() {
        let (iq, registry) = setup();
        let mut spec = QualityViewSpec::paper_example();
        // a valid IQ concept with no registered implementation
        spec.assertions[1].service_type = "q:SomeNewQA".into();
        let mut iq = iq;
        iq.register_assertion_type("SomeNewQA").unwrap();
        let e = validate(&spec, &iq, &registry).unwrap_err();
        assert!(e.to_string().contains("no service registered"));
    }

    #[test]
    fn rejects_non_evidence_variable() {
        let e = break_spec(|s| s.annotators[0].variables[0].evidence = "q:UniversalPIScore".into());
        assert!(e.to_string().contains("not a QualityEvidence"));
    }

    #[test]
    fn rejects_unprovided_evidence() {
        let e = break_spec(|s| s.annotators[0].variables.push(VarDecl::evidence("q:Masses")));
        // the Imprint capture service does not provide q:Masses
        assert!(e.to_string().contains("does not provide"));
    }

    #[test]
    fn rejects_forward_tag_reference() {
        let e = break_spec(|s| {
            s.assertions[0].variables[0] = VarDecl::named("coverage", "tag:ScoreClass")
        });
        assert!(e.to_string().contains("no earlier assertion"));
    }

    #[test]
    fn rejects_missing_expected_variable() {
        let e = break_spec(|s| {
            s.assertions[0].variables.remove(0); // drop "coverage"
        });
        assert!(e.to_string().contains("expects variable"));
    }

    #[test]
    fn rejects_duplicate_tags_and_actions() {
        let e = break_spec(|s| s.assertions[1].tag_name = "HR_MC".into());
        assert!(e.to_string().contains("duplicate tag"));
        let e = break_spec(|s| {
            let a = s.actions[0].clone();
            s.actions.push(a);
        });
        assert!(e.to_string().contains("duplicate action"));
    }

    #[test]
    fn rejects_bad_conditions() {
        // syntax
        let e = break_spec(|s| s.actions[0].kind = ActionKind::Filter { condition: ")".into() });
        assert!(e.to_string().contains("syntax"));
        // undeclared variable (typo in tag)
        let e = break_spec(|s| {
            s.actions[0].kind = ActionKind::Filter { condition: "ScoerClass in q:high".into() }
        });
        assert!(e.to_string().contains("ScoerClass"));
        // type error: ordering a classification
        let e = break_spec(|s| {
            s.actions[0].kind = ActionKind::Filter { condition: "ScoreClass > 3".into() }
        });
        assert!(e.to_string().contains("type error"));
    }

    #[test]
    fn reports_every_fault_in_one_pass() {
        let e = break_spec(|s| {
            s.annotators[0].variables[0].evidence = "q:UniversalPIScore".into();
            s.assertions[1].tag_name = "HR_MC".into();
            s.actions[0].kind = ActionKind::Filter { condition: "ScoreClass > 3".into() };
        });
        let codes: Vec<&str> = e.diagnostics().iter().map(|d| d.code).collect();
        for expected in ["QV006", "QV010", "QV016"] {
            assert!(codes.contains(&expected), "missing {expected} in {codes:?}");
        }
        // the Display form mentions every fault, not just the first
        let msg = e.to_string();
        assert!(msg.contains("not a QualityEvidence"), "{msg}");
        assert!(msg.contains("duplicate tag"), "{msg}");
        assert!(msg.contains("type error"), "{msg}");
    }

    #[test]
    fn rejects_class_qa_without_model() {
        let e = break_spec(|s| s.assertions[2].tag_sem_type = None);
        assert!(e.to_string().contains("tagSemType"));
    }

    #[test]
    fn rejects_actionless_view() {
        let e = break_spec(|s| s.actions.clear());
        assert!(e.to_string().contains("no actions"));
    }

    #[test]
    fn rejects_conflicting_persistence() {
        let e = break_spec(|s| {
            let mut second = s.annotators[0].clone();
            second.service_name = "again".into();
            second.persistent = true;
            s.annotators.push(second);
        });
        assert!(e.to_string().contains("persistent"));
    }

    #[test]
    fn rejects_unconsumed_annotator_evidence() {
        let (iq, registry) = setup();
        let mut spec = QualityViewSpec::paper_example();
        // consume only HitRatio: drop the HR_MC QA and classifier
        spec.assertions.truncate(2);
        spec.assertions.remove(0);
        spec.actions[0].kind = ActionKind::Filter { condition: "HR > 0".into() };
        let e = validate(&spec, &iq, &registry).unwrap_err();
        assert!(e.to_string().contains("consumed by no assertion"), "{e}");
    }

    #[test]
    fn evidence_may_come_from_persistent_repositories() {
        // a view with no annotators at all is fine: evidence pre-exists
        let (iq, registry) = setup();
        let mut spec = QualityViewSpec::paper_example();
        spec.annotators.clear();
        validate(&spec, &iq, &registry).unwrap();
    }
}

#[cfg(test)]
mod provider_routing_tests {
    use super::*;
    use crate::spec::{ActionDecl, ActionKind, AnnotatorDecl, QualityViewSpec, VarDecl};
    use qurator_rdf::namespace::q;
    use qurator_services::stdlib::FieldCaptureAnnotator;
    use qurator_services::ServiceRegistry;
    use std::sync::Arc;

    /// Condition-only evidence must be fetched from the repository of the
    /// annotator that provides it, not the first repository mentioned.
    #[test]
    fn condition_evidence_routes_to_providing_repository() {
        let iq = IqModel::with_proteomics_extension().unwrap();
        let registry = ServiceRegistry::new();
        registry
            .register_annotator(Arc::new(FieldCaptureAnnotator::new(
                q::iri("ImprintOutputAnnotation"),
                &[("hitRatio", q::iri("HitRatio")), ("massCoverage", q::iri("MassCoverage"))],
            )))
            .unwrap();

        let mut spec = QualityViewSpec::new("routing");
        // annotator 1 writes HitRatio into "alpha"
        spec.annotators.push(AnnotatorDecl {
            service_name: "a1".into(),
            service_type: "q:ImprintOutputAnnotation".into(),
            repository_ref: "alpha".into(),
            persistent: false,
            variables: vec![VarDecl::evidence("q:HitRatio")],
        });
        // the condition references both HitRatio (provided into "alpha")
        // and PeptidesCount (provided by no annotator -> default repo).
        spec.actions.push(ActionDecl {
            name: "keep".into(),
            kind: ActionKind::Filter { condition: "HitRatio > 0.5 or PeptidesCount > 3".into() },
        });
        let view = validate(&spec, &iq, &registry).unwrap();
        let repo_of = |local: &str| {
            view.enrichment_plan
                .iter()
                .find(|(e, _)| e.local_name() == local)
                .map(|(_, r)| r.clone())
                .unwrap()
        };
        assert_eq!(repo_of("HitRatio"), "alpha");
        assert_eq!(repo_of("PeptidesCount"), "alpha", "falls back to the view default");
    }
}
