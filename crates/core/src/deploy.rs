//! Deployment: embedding a compiled quality workflow inside a host
//! experiment workflow (§6.2).
//!
//! "Two main elements must be considered, (i) a set of adapters that
//! surround the embedded quality flows, and (ii) the connections among
//! host and embedded processors." This module builds the
//! [`EmbedDescriptor`] for the canonical interposition pattern of
//! Figure 6: sever a host edge, route the producer's output through an
//! input adapter into the quality flow's `dataset` ports, and route one
//! action group's surviving data through an output adapter back into the
//! host consumer.

use crate::compile::DATASET_INPUT;
use crate::{QuratorError, Result};
use qurator_workflow::{Connector, EmbedDescriptor, PortRef, Processor, Workflow};
use std::sync::Arc;

/// A deployment plan for one quality view.
pub struct DeploymentPlan {
    /// Node-name prefix for the embedded quality flow.
    pub prefix: String,
    /// The host edge to sever and interpose on.
    pub severed: (PortRef, PortRef),
    /// Adapter converting the host producer's output into the data-set
    /// encoding (ports: `in` → `out`).
    pub input_adapter: (String, Arc<dyn Processor>),
    /// Which action output group feeds the host consumer.
    pub output_group: String,
    /// Adapter converting the surviving group record back into the host
    /// consumer's format (ports: `in` → `out`).
    pub output_adapter: (String, Arc<dyn Processor>),
}

impl DeploymentPlan {
    /// Builds the §6.2 deployment descriptor for a compiled view and
    /// applies it to the host workflow.
    pub fn apply(&self, host: &mut Workflow, quality: &Workflow) -> Result<()> {
        // find where the QV expects its data set and which node/port
        // produces the requested group
        let dataset_targets: Vec<PortRef> = quality
            .inputs()
            .find(|(name, _)| *name == DATASET_INPUT)
            .map(|(_, targets)| targets.to_vec())
            .ok_or_else(|| {
                QuratorError::Execution(format!(
                    "quality workflow {:?} declares no {DATASET_INPUT:?} input",
                    quality.name()
                ))
            })?;
        let group_source: PortRef = quality
            .outputs()
            .find(|(name, _)| *name == self.output_group)
            .map(|(_, source)| source.clone())
            .ok_or_else(|| {
                QuratorError::Execution(format!(
                    "quality workflow {:?} has no output group {:?} (available: {:?})",
                    quality.name(),
                    self.output_group,
                    quality.outputs().map(|(n, _)| n).collect::<Vec<_>>()
                ))
            })?;

        let (in_name, in_proc) = &self.input_adapter;
        let (out_name, out_proc) = &self.output_adapter;
        let mut descriptor = EmbedDescriptor::new()
            .severing(self.severed.0.clone(), self.severed.1.clone())
            .with_adapter(in_name.clone(), in_proc.clone())
            .with_adapter(out_name.clone(), out_proc.clone())
            // host producer -> input adapter
            .with_connector(Connector::new(
                &self.severed.0.processor,
                &self.severed.0.port,
                in_name,
                "in",
            ))
            // output group -> output adapter -> host consumer
            .with_connector(Connector::new(
                &format!("{}/{}", self.prefix, group_source.processor),
                &group_source.port,
                out_name,
                "in",
            ))
            .with_connector(Connector::new(
                out_name,
                "out",
                &self.severed.1.processor,
                &self.severed.1.port,
            ));
        // input adapter -> every dataset port of the quality flow
        for target in dataset_targets {
            descriptor = descriptor.with_connector(Connector::new(
                in_name,
                "out",
                &format!("{}/{}", self.prefix, target.processor),
                &target.port,
            ));
        }

        host.embed(quality, &self.prefix, &descriptor).map_err(QuratorError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convert;
    use crate::engine::QualityEngine;
    use crate::spec::{ActionKind, QualityViewSpec};
    use qurator_annotations::EvidenceValue;
    use qurator_rdf::term::Term;
    use qurator_services::DataSet;
    use qurator_workflow::{Context, Data, Enactor, FnProcessor};
    use std::collections::BTreeMap;

    /// host: producer (emits imprint-shaped records) -> consumer (counts
    /// surviving items). The QV is interposed on that edge.
    #[test]
    fn interpose_compiled_view_into_host() {
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        let mut spec = QualityViewSpec::paper_example();
        spec.actions[0].kind =
            ActionKind::Filter { condition: "ScoreClass in q:high, q:mid and HR_MC > 0".into() };
        let quality = engine.compile(&spec).unwrap();

        // --- host ---
        let producer = FnProcessor::new("producer", &[], &["hits"], |_, _| {
            let mut ds = DataSet::new();
            let rows: [(u32, f64, f64, i64); 4] =
                [(1, 0.9, 45.0, 12), (2, 0.6, 28.0, 8), (3, 0.3, 12.0, 4), (4, 0.05, 2.0, 1)];
            for (i, hr, mc, pc) in rows {
                ds.push(
                    Term::iri(format!("urn:lsid:t:h:{i}")),
                    [
                        ("hitRatio", EvidenceValue::from(hr)),
                        ("massCoverage", EvidenceValue::from(mc)),
                        ("peptidesCount", EvidenceValue::from(pc)),
                    ],
                );
            }
            Ok(BTreeMap::from([("hits".to_string(), convert::dataset_to_data(&ds))]))
        });
        let consumer = FnProcessor::map1("consumer", "in", "count", |v, _| {
            let n = v.field("items").and_then(Data::as_list).map(|l| l.len()).unwrap_or(0);
            Ok(Data::Number(n as f64))
        });
        let mut host = Workflow::new("ispider");
        host.add("producer", std::sync::Arc::new(producer)).unwrap();
        host.add("consumer", std::sync::Arc::new(consumer)).unwrap();
        host.link("producer", "hits", "consumer", "in").unwrap();
        host.declare_output("surviving", PortRef::new("consumer", "count")).unwrap();

        // --- adapters ---
        // producer already emits the dataset encoding: identity adapter in
        let in_adapter = FnProcessor::map1("dataset-in", "in", "out", |v, _| Ok(v.clone()));
        // group record -> bare dataset encoding for the consumer
        let out_adapter = FnProcessor::map1("dataset-out", "in", "out", |v, _| {
            v.field("dataset").cloned().ok_or_else(|| qurator_workflow::WorkflowError::Execution {
                processor: "dataset-out".into(),
                message: "group record lacks dataset".into(),
            })
        });

        let plan = DeploymentPlan {
            prefix: "qv".into(),
            severed: (PortRef::new("producer", "hits"), PortRef::new("consumer", "in")),
            input_adapter: ("adapt-in".into(), std::sync::Arc::new(in_adapter)),
            output_group: "filter top k score".into(),
            output_adapter: ("adapt-out".into(), std::sync::Arc::new(out_adapter)),
        };
        plan.apply(&mut host, &quality).unwrap();

        let report = Enactor::new().run(&host, &BTreeMap::new(), &Context::new()).unwrap();
        let surviving = report.outputs["surviving"].as_number().unwrap() as usize;
        assert!(surviving > 0 && surviving < 4, "surviving = {surviving}");

        // compare with direct interpretation over the same data
        engine.finish_execution();
        let mut ds = DataSet::new();
        let rows: [(u32, f64, f64, i64); 4] =
            [(1, 0.9, 45.0, 12), (2, 0.6, 28.0, 8), (3, 0.3, 12.0, 4), (4, 0.05, 2.0, 1)];
        for (i, hr, mc, pc) in rows {
            ds.push(
                Term::iri(format!("urn:lsid:t:h:{i}")),
                [
                    ("hitRatio", EvidenceValue::from(hr)),
                    ("massCoverage", EvidenceValue::from(mc)),
                    ("peptidesCount", EvidenceValue::from(pc)),
                ],
            );
        }
        let direct = engine.execute_view(&spec, &ds).unwrap();
        assert_eq!(direct.group("filter top k score").unwrap().dataset.len(), surviving);
    }

    #[test]
    fn missing_group_is_reported() {
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        let quality = engine.compile(&QualityViewSpec::paper_example()).unwrap();
        let mut host = Workflow::new("h");
        let src = FnProcessor::new("src", &[], &["out"], |_, _| {
            Ok(BTreeMap::from([("out".to_string(), Data::Null)]))
        });
        let sink = FnProcessor::map1("sink", "in", "out", |v, _| Ok(v.clone()));
        host.add("src", std::sync::Arc::new(src)).unwrap();
        host.add("sink", std::sync::Arc::new(sink)).unwrap();
        host.link("src", "out", "sink", "in").unwrap();
        let plan = DeploymentPlan {
            prefix: "qv".into(),
            severed: (PortRef::new("src", "out"), PortRef::new("sink", "in")),
            input_adapter: (
                "a-in".into(),
                std::sync::Arc::new(FnProcessor::map1("a", "in", "out", |v, _| Ok(v.clone()))),
            ),
            output_group: "no such group".into(),
            output_adapter: (
                "a-out".into(),
                std::sync::Arc::new(FnProcessor::map1("b", "in", "out", |v, _| Ok(v.clone()))),
            ),
        };
        let err = plan.apply(&mut host, &quality).unwrap_err();
        assert!(err.to_string().contains("no output group"));
    }
}
