//! Encodings of the service message model onto the workflow data model.
//!
//! Compiled quality workflows ship [`DataSet`]s and [`AnnotationMap`]s over
//! data links; the workflow engine only knows its own [`Data`] values, so
//! the operators (de)serialize through the record encoding defined here.

use crate::{QuratorError, Result};
use qurator_annotations::{AnnotationMap, EvidenceValue};
use qurator_rdf::term::{Iri, Term};
use qurator_services::DataSet;
use qurator_workflow::Data;
use std::collections::BTreeMap;

/// Encodes one evidence value. `Class` labels are wrapped in a one-field
/// record so they stay distinguishable from plain text.
pub fn evidence_to_data(value: &EvidenceValue) -> Data {
    match value {
        EvidenceValue::Number(n) => Data::Number(*n),
        EvidenceValue::Text(s) => Data::Text(s.clone()),
        EvidenceValue::Bool(b) => Data::Bool(*b),
        EvidenceValue::Class(iri) => Data::record([("class", Data::Text(iri.as_str().into()))]),
        EvidenceValue::Null => Data::Null,
    }
}

/// Decodes an evidence value.
pub fn data_to_evidence(data: &Data) -> Result<EvidenceValue> {
    Ok(match data {
        Data::Number(n) => EvidenceValue::Number(*n),
        Data::Text(s) => EvidenceValue::Text(s.clone()),
        Data::Bool(b) => EvidenceValue::Bool(*b),
        Data::Null => EvidenceValue::Null,
        Data::Record(fields) if fields.len() == 1 && fields.contains_key("class") => {
            let Some(Data::Text(iri)) = fields.get("class") else {
                return Err(QuratorError::Execution("malformed class value".into()));
            };
            EvidenceValue::Class(
                Iri::try_new(iri)
                    .map_err(|e| QuratorError::Execution(format!("bad class IRI: {e}")))?,
            )
        }
        other => {
            return Err(QuratorError::Execution(format!(
                "cannot decode evidence value from {other}"
            )))
        }
    })
}

/// Encodes a data set: `{items: [{id, fields: {…}}]}`.
pub fn dataset_to_data(dataset: &DataSet) -> Data {
    let items: Vec<Data> = dataset
        .items()
        .iter()
        .map(|item| {
            let fields: BTreeMap<String, Data> =
                dataset.fields(item).map(|(k, v)| (k.to_string(), evidence_to_data(v))).collect();
            Data::record([("id", Data::Text(term_to_text(item))), ("fields", Data::Record(fields))])
        })
        .collect();
    Data::record([("items", Data::List(items))])
}

/// Decodes a data set.
pub fn data_to_dataset(data: &Data) -> Result<DataSet> {
    let items = data
        .field("items")
        .and_then(Data::as_list)
        .ok_or_else(|| QuratorError::Execution("dataset encoding lacks items".into()))?;
    let mut dataset = DataSet::new();
    for entry in items {
        let id = entry
            .field("id")
            .and_then(Data::as_text)
            .ok_or_else(|| QuratorError::Execution("dataset item lacks id".into()))?;
        let item = text_to_term(id)?;
        let mut fields: Vec<(String, EvidenceValue)> = Vec::new();
        if let Some(Data::Record(map)) = entry.field("fields") {
            for (k, v) in map {
                fields.push((k.clone(), data_to_evidence(v)?));
            }
        }
        dataset.push(item, fields);
    }
    Ok(dataset)
}

/// Encodes an annotation map:
/// `{items: [{id, evidence: {iri: value}, tags: {name: value}}]}`.
pub fn map_to_data(map: &AnnotationMap) -> Data {
    let items: Vec<Data> = map
        .items()
        .iter()
        .map(|item| {
            let row = map.item(item).expect("listed");
            let evidence: BTreeMap<String, Data> = row
                .evidence_entries()
                .map(|(e, v)| (e.as_str().to_string(), evidence_to_data(v)))
                .collect();
            let tags: BTreeMap<String, Data> =
                row.tag_entries().map(|(t, v)| (t.to_string(), evidence_to_data(v))).collect();
            Data::record([
                ("id", Data::Text(term_to_text(item))),
                ("evidence", Data::Record(evidence)),
                ("tags", Data::Record(tags)),
            ])
        })
        .collect();
    Data::record([("items", Data::List(items))])
}

/// Decodes an annotation map.
pub fn data_to_map(data: &Data) -> Result<AnnotationMap> {
    let items = data
        .field("items")
        .and_then(Data::as_list)
        .ok_or_else(|| QuratorError::Execution("map encoding lacks items".into()))?;
    let mut map = AnnotationMap::new();
    for entry in items {
        let id = entry
            .field("id")
            .and_then(Data::as_text)
            .ok_or_else(|| QuratorError::Execution("map item lacks id".into()))?;
        let item = text_to_term(id)?;
        map.ensure_item(item.clone());
        if let Some(Data::Record(evidence)) = entry.field("evidence") {
            for (e, v) in evidence {
                let iri = Iri::try_new(e)
                    .map_err(|err| QuratorError::Execution(format!("bad evidence IRI: {err}")))?;
                map.set_evidence(&item, iri, data_to_evidence(v)?);
            }
        }
        if let Some(Data::Record(tags)) = entry.field("tags") {
            for (t, v) in tags {
                map.set_tag(&item, t.clone(), data_to_evidence(v)?);
            }
        }
    }
    Ok(map)
}

fn term_to_text(term: &Term) -> String {
    match term {
        Term::Iri(iri) => iri.as_str().to_string(),
        other => other.to_string(),
    }
}

fn text_to_term(text: &str) -> Result<Term> {
    Iri::try_new(text)
        .map(Term::Iri)
        .map_err(|e| QuratorError::Execution(format!("bad item IRI {text:?}: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_rdf::namespace::q;

    fn item(n: u32) -> Term {
        Term::iri(format!("urn:lsid:t:h:{n}"))
    }

    #[test]
    fn evidence_roundtrip() {
        for v in [
            EvidenceValue::Number(1.5),
            EvidenceValue::Text("x".into()),
            EvidenceValue::Bool(true),
            EvidenceValue::Class(q::iri("high")),
            EvidenceValue::Null,
        ] {
            assert_eq!(data_to_evidence(&evidence_to_data(&v)).unwrap(), v);
        }
    }

    #[test]
    fn class_distinguishable_from_text() {
        let class = evidence_to_data(&EvidenceValue::Class(q::iri("high")));
        let text = evidence_to_data(&EvidenceValue::Text(q::iri("high").as_str().into()));
        assert_ne!(class, text);
    }

    #[test]
    fn dataset_roundtrip() {
        let mut ds = DataSet::new();
        ds.push(item(1), [("hitRatio", 0.8.into()), ("lab", "aberdeen".into())]);
        ds.push(item(2), [("hitRatio", 0.2.into())]);
        let encoded = dataset_to_data(&ds);
        let back = data_to_dataset(&encoded).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn map_roundtrip() {
        let mut map = AnnotationMap::new();
        map.set_evidence(&item(1), q::iri("HitRatio"), 0.9.into());
        map.set_tag(&item(1), "ScoreClass", EvidenceValue::Class(q::iri("high")));
        map.ensure_item(item(2)); // bare item
        let encoded = map_to_data(&map);
        let back = data_to_map(&encoded).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn decode_errors() {
        assert!(data_to_dataset(&Data::Null).is_err());
        assert!(data_to_map(&Data::record([("items", Data::list([Data::Null]))])).is_err());
        assert!(data_to_evidence(&Data::list([])).is_err());
    }
}
