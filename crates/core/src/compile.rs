//! The quality-view compiler (§6.1).
//!
//! Compilation rules, as stated in the paper:
//!
//! 1. annotators are added first; their inputs are initially unbound and
//!    they only write to repositories;
//! 2. the compiler determines the association between each evidence type
//!    and the repository holding its value, and adds **one single** Data
//!    Enrichment operator configured with that association; a control link
//!    runs from each annotator to the DE;
//! 3. the DE output (an annotation map) feeds all QA processors through
//!    their common interface;
//! 4. a `ConsolidateAssertions` task merges the assertions into a
//!    consistent view;
//! 5. action processors are added last, fed by the consolidated map; their
//!    output ports become the workflow outputs bound back to the embedding
//!    workflow at deployment time.
//!
//! One extension beyond the paper's sketch: QAs may reference tags of
//! earlier QAs (`tag:HR_MC` — the §5.1 classifier consumes the score QA's
//! output). Such QAs are chained behind their producers; when a QA needs
//! tags from several producers, a dedicated consolidation node merges them
//! first.
//!
//! Since the plan-IR refactor this module is a thin façade: the spec →
//! plan lowering lives in [`crate::planner`], the plan → operator binding
//! and workflow wiring in [`crate::exec`]. `compile` here is the
//! composition of the two, kept as the stable entry point (its structural
//! tests below double as the Figure 6 contract for the whole pipeline).

use crate::validate::ValidatedView;
use crate::{exec, planner, Result};
use qurator_annotations::RepositoryCatalog;
use qurator_ontology::IqModel;
use qurator_plan::PlanConfig;
use qurator_services::ServiceRegistry;
use qurator_workflow::Workflow;
use std::sync::Arc;

/// Node name of the single Data-Enrichment operator.
pub const DATA_ENRICHMENT: &str = qurator_plan::ENRICH_NODE;
/// Node name of the final consolidation task.
pub const CONSOLIDATE: &str = qurator_plan::CONSOLIDATE_NODE;
/// Name of the workflow input carrying the data set.
pub const DATASET_INPUT: &str = exec::DATASET_INPUT;

/// Compiles a validated view into an executable workflow (optimizing
/// passes on).
pub fn compile(
    view: &ValidatedView,
    iq: &Arc<IqModel>,
    registry: &ServiceRegistry,
    catalog: &RepositoryCatalog,
) -> Result<Workflow> {
    compile_with(view, iq, registry, catalog, &PlanConfig::default())
}

/// Compiles through an explicit plan configuration (`optimize: false` for
/// the `--no-opt` baseline).
pub fn compile_with(
    view: &ValidatedView,
    iq: &Arc<IqModel>,
    registry: &ServiceRegistry,
    catalog: &RepositoryCatalog,
    config: &PlanConfig,
) -> Result<Workflow> {
    compile_collecting(view, iq, registry, catalog, config).map(|(workflow, _)| workflow)
}

/// Like [`compile_with`], but also hands back the bound plan's
/// observed-statistics collector, which the workflow's operators record
/// into as the enactor runs them. The engine drains it after each run so
/// EXPLAIN ANALYZE covers the compiled path too.
pub fn compile_collecting(
    view: &ValidatedView,
    iq: &Arc<IqModel>,
    registry: &ServiceRegistry,
    catalog: &RepositoryCatalog,
    config: &PlanConfig,
) -> Result<(Workflow, Arc<qurator_telemetry::stats::StatsCollector>)> {
    let plan = planner::physical_plan(view, iq, config)?;
    let bound = exec::bind(&plan, iq, registry, catalog)?;
    let stats = bound.stats.clone();
    Ok((bound.into_workflow(&plan)?, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ActionKind, QualityViewSpec};
    use crate::validate::validate;
    use qurator_rdf::namespace::q;
    use qurator_services::stdlib::{
        FieldCaptureAnnotator, StatClassifierAssertion, ZScoreAssertion,
    };

    fn setup() -> (Arc<IqModel>, ServiceRegistry, RepositoryCatalog) {
        let iq = Arc::new(IqModel::with_proteomics_extension().unwrap());
        let registry = ServiceRegistry::new();
        registry
            .register_annotator(Arc::new(FieldCaptureAnnotator::new(
                q::iri("ImprintOutputAnnotation"),
                &[
                    ("hitRatio", q::iri("HitRatio")),
                    ("massCoverage", q::iri("MassCoverage")),
                    ("peptidesCount", q::iri("PeptidesCount")),
                ],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(ZScoreAssertion::new(
                q::iri("UniversalPIScore2"),
                &["coverage", "hitratio", "peptidescount"],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(ZScoreAssertion::new(
                q::iri("UniversalPIScore"),
                &["hitratio"],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(StatClassifierAssertion::new(
                q::iri("PIScoreClassifier"),
                "score",
                q::iri("PIScoreClassification"),
                (q::iri("low"), q::iri("mid"), q::iri("high")),
            )))
            .unwrap();
        let catalog = RepositoryCatalog::new(iq.clone());
        (iq, registry, catalog)
    }

    #[test]
    fn paper_view_compiles_with_figure6_structure() {
        let (iq, registry, catalog) = setup();
        let view = validate(&QualityViewSpec::paper_example(), &iq, &registry).unwrap();
        let wf = compile(&view, &iq, &registry, &catalog).unwrap();

        // nodes: 1 annotator + DE + 3 QAs + consolidate + 1 action
        assert_eq!(wf.len(), 7);
        assert!(wf.nodes().any(|n| n == "ImprintOutputAnnotator"));
        assert!(wf.nodes().any(|n| n == DATA_ENRICHMENT));
        assert!(wf.nodes().any(|n| n == CONSOLIDATE));

        // control link annotator -> DE (rule 2)
        assert!(wf
            .control_links()
            .iter()
            .any(|(a, b)| a == "ImprintOutputAnnotator" && b == DATA_ENRICHMENT));

        // DE feeds the two score QAs, the classifier chains behind HR_MC
        let de_feeds: Vec<&str> = wf
            .data_links()
            .iter()
            .filter(|l| l.from.processor == DATA_ENRICHMENT)
            .map(|l| l.to.processor.as_str())
            .collect();
        assert!(de_feeds.contains(&"HR_MC_score"));
        assert!(de_feeds.contains(&"HR_score"));
        assert!(!de_feeds.contains(&"PIScoreClassifier"));
        assert!(wf
            .data_links()
            .iter()
            .any(|l| l.from.processor == "HR_MC_score" && l.to.processor == "PIScoreClassifier"));

        // every QA feeds the consolidator, which feeds the action
        for qa in ["HR_MC_score", "HR_score", "PIScoreClassifier"] {
            assert!(wf
                .data_links()
                .iter()
                .any(|l| l.from.processor == qa && l.to.processor == CONSOLIDATE));
        }
        assert!(wf
            .data_links()
            .iter()
            .any(|l| l.from.processor == CONSOLIDATE && l.to.processor == "filter top k score"));

        // outputs: one group for the filter
        let outputs: Vec<&str> = wf.outputs().map(|(n, _)| n).collect();
        assert_eq!(outputs, vec!["filter top k score"]);

        // repositories were created
        assert!(catalog.get("cache").is_some());
        assert!(!catalog.get("cache").unwrap().is_persistent());
    }

    #[test]
    fn multi_tag_dependency_gets_a_merge_node() {
        let (mut_iq, registry, catalog) = setup();
        let mut iq = (*mut_iq).clone();
        iq.register_assertion_type("Combiner").unwrap();
        let iq = Arc::new(iq);
        registry
            .register_assertion(Arc::new(ZScoreAssertion::new(q::iri("Combiner"), &["a", "b"])))
            .unwrap();

        let mut spec = QualityViewSpec::paper_example();
        spec.assertions.push(crate::spec::AssertionDecl {
            service_name: "combined".into(),
            service_type: "q:Combiner".into(),
            tag_name: "COMBO".into(),
            tag_kind: crate::spec::TagKind::Score,
            tag_sem_type: None,
            repository_ref: "cache".into(),
            variables: vec![
                crate::spec::VarDecl::named("a", "tag:HR_MC"),
                crate::spec::VarDecl::named("b", "tag:HR"),
            ],
        });
        let view = validate(&spec, &iq, &registry).unwrap();
        let wf = compile(&view, &iq, &registry, &catalog).unwrap();
        assert!(wf.nodes().any(|n| n == "consolidate-for-combined"));
        assert!(wf.data_links().iter().any(
            |l| l.from.processor == "consolidate-for-combined" && l.to.processor == "combined"
        ));
    }

    #[test]
    fn splitter_outputs_one_port_per_group_plus_default() {
        let (iq, registry, catalog) = setup();
        let mut spec = QualityViewSpec::paper_example();
        spec.actions[0].kind = ActionKind::Split {
            groups: vec![
                ("strong".into(), "ScoreClass in q:high".into()),
                ("weak".into(), "ScoreClass in q:low".into()),
            ],
        };
        let view = validate(&spec, &iq, &registry).unwrap();
        let wf = compile(&view, &iq, &registry, &catalog).unwrap();
        let mut outputs: Vec<&str> = wf.outputs().map(|(n, _)| n).collect();
        outputs.sort();
        assert_eq!(
            outputs,
            vec![
                "filter top k score/default",
                "filter top k score/strong",
                "filter top k score/weak"
            ]
        );
    }

    #[test]
    fn view_without_assertions_compiles() {
        let (iq, registry, catalog) = setup();
        let mut spec = QualityViewSpec::new("raw");
        spec.actions.push(crate::spec::ActionDecl {
            name: "keep".into(),
            kind: ActionKind::Filter { condition: "HitRatio > 0.5".into() },
        });
        let view = validate(&spec, &iq, &registry).unwrap();
        let wf = compile(&view, &iq, &registry, &catalog).unwrap();
        // DE -> consolidate -> action
        assert_eq!(wf.len(), 3);
    }
}
