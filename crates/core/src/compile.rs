//! The quality-view compiler (§6.1).
//!
//! Compilation rules, as stated in the paper:
//!
//! 1. annotators are added first; their inputs are initially unbound and
//!    they only write to repositories;
//! 2. the compiler determines the association between each evidence type
//!    and the repository holding its value, and adds **one single** Data
//!    Enrichment operator configured with that association; a control link
//!    runs from each annotator to the DE;
//! 3. the DE output (an annotation map) feeds all QA processors through
//!    their common interface;
//! 4. a `ConsolidateAssertions` task merges the assertions into a
//!    consistent view;
//! 5. action processors are added last, fed by the consolidated map; their
//!    output ports become the workflow outputs bound back to the embedding
//!    workflow at deployment time.
//!
//! One extension beyond the paper's sketch: QAs may reference tags of
//! earlier QAs (`tag:HR_MC` — the §5.1 classifier consumes the score QA's
//! output). Such QAs are chained behind their producers; when a QA needs
//! tags from several producers, a dedicated consolidation node merges them
//! first.

use crate::operators::{
    ActionProcessor, AnnotatorProcessor, AssertionProcessor, CompiledAction, ConsolidateProcessor,
    DataEnrichmentProcessor,
};
use crate::spec::ActionKind;
use crate::validate::{BindingTarget, ValidatedView};
use crate::{QuratorError, Result};
use qurator_annotations::RepositoryCatalog;
use qurator_ontology::IqModel;
use qurator_services::{ServiceRegistry, VariableBindings};
use qurator_workflow::{PortRef, Workflow};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Node name of the single Data-Enrichment operator.
pub const DATA_ENRICHMENT: &str = "DataEnrichment";
/// Node name of the final consolidation task.
pub const CONSOLIDATE: &str = "ConsolidateAssertions";
/// Name of the workflow input carrying the data set.
pub const DATASET_INPUT: &str = "dataset";

/// Compiles a validated view into an executable workflow.
pub fn compile(
    view: &ValidatedView,
    iq: &Arc<IqModel>,
    registry: &ServiceRegistry,
    catalog: &RepositoryCatalog,
) -> Result<Workflow> {
    let spec = &view.spec;
    let compile_err = |m: String| QuratorError::Compile(m);
    let mut workflow = Workflow::new(format!("qv:{}", spec.name));

    // repository resolution honouring declared persistence
    let mut persistence: BTreeMap<&str, bool> = BTreeMap::new();
    for a in &spec.annotators {
        persistence.insert(&a.repository_ref, a.persistent);
    }
    let resolve_repo = |name: &str| -> Arc<qurator_annotations::AnnotationRepository> {
        if let Some(repo) = catalog.get(name) {
            return repo;
        }
        let persistent = persistence.get(name).copied().unwrap_or(false);
        catalog
            .create(name, persistent)
            .unwrap_or_else(|_| catalog.get(name).expect("created concurrently"))
    };

    // ---- rule 1: annotators first
    for (decl, service_type) in spec.annotators.iter().zip(&view.annotator_types) {
        let service = registry.annotator(service_type).map_err(|e| compile_err(e.to_string()))?;
        let repo = resolve_repo(&decl.repository_ref);
        workflow
            .add(
                decl.service_name.clone(),
                Arc::new(AnnotatorProcessor::new(decl.service_name.clone(), service, repo)),
            )
            .map_err(|e| compile_err(e.to_string()))?;
        workflow
            .declare_input(DATASET_INPUT, PortRef::new(&decl.service_name, "dataset"))
            .map_err(|e| compile_err(e.to_string()))?;
    }

    // ---- rule 2: one DE with the evidence→repository association
    let plan = view
        .enrichment_plan
        .iter()
        .map(|(evidence, repo)| (evidence.clone(), resolve_repo(repo)))
        .collect();
    workflow
        .add(DATA_ENRICHMENT, Arc::new(DataEnrichmentProcessor::new(DATA_ENRICHMENT, plan)))
        .map_err(|e| compile_err(e.to_string()))?;
    workflow
        .declare_input(DATASET_INPUT, PortRef::new(DATA_ENRICHMENT, "dataset"))
        .map_err(|e| compile_err(e.to_string()))?;
    for decl in &spec.annotators {
        workflow
            .control_link(&decl.service_name, DATA_ENRICHMENT)
            .map_err(|e| compile_err(e.to_string()))?;
    }

    // ---- rule 3 (+ tag-dependency chaining): QAs
    // tag name → producing QA node
    let mut tag_producer: BTreeMap<&str, &str> = BTreeMap::new();
    for (index, decl) in spec.assertions.iter().enumerate() {
        let service = registry
            .assertion(&view.assertion_types[index])
            .map_err(|e| compile_err(e.to_string()))?;
        let mut bindings = VariableBindings::new();
        let mut dependencies: Vec<&str> = Vec::new();
        for (variable, target) in &view.assertion_bindings[index] {
            match target {
                BindingTarget::Evidence(e) => {
                    bindings = bindings.bind_evidence(variable.clone(), e.clone());
                }
                BindingTarget::Tag(tag) => {
                    bindings = bindings.bind_tag(variable.clone(), tag.clone());
                    let producer = tag_producer.get(tag.as_str()).ok_or_else(|| {
                        compile_err(format!("tag {tag:?} has no producer (validation gap)"))
                    })?;
                    if !dependencies.contains(producer) {
                        dependencies.push(producer);
                    }
                }
            }
        }
        workflow
            .add(
                decl.service_name.clone(),
                Arc::new(AssertionProcessor::new(
                    decl.service_name.clone(),
                    service,
                    bindings,
                    decl.tag_name.clone(),
                )),
            )
            .map_err(|e| compile_err(e.to_string()))?;

        // wire the map input
        match dependencies.len() {
            0 => {
                workflow
                    .link(DATA_ENRICHMENT, "map", &decl.service_name, "map")
                    .map_err(|e| compile_err(e.to_string()))?;
            }
            1 => {
                workflow
                    .link(dependencies[0], "map", &decl.service_name, "map")
                    .map_err(|e| compile_err(e.to_string()))?;
            }
            n => {
                let merge_node = format!("consolidate-for-{}", decl.service_name);
                workflow
                    .add(
                        merge_node.clone(),
                        Arc::new(ConsolidateProcessor::new(merge_node.clone(), n)),
                    )
                    .map_err(|e| compile_err(e.to_string()))?;
                for (slot, producer) in dependencies.iter().enumerate() {
                    workflow
                        .link(producer, "map", &merge_node, &format!("map{slot}"))
                        .map_err(|e| compile_err(e.to_string()))?;
                }
                workflow
                    .link(&merge_node, "map", &decl.service_name, "map")
                    .map_err(|e| compile_err(e.to_string()))?;
            }
        }
        tag_producer.insert(&decl.tag_name, &decl.service_name);
    }

    // ---- rule 4: ConsolidateAssertions over every QA output (or the DE
    // map when the view declares no QAs)
    let consolidate_inputs = spec.assertions.len().max(1);
    workflow
        .add(CONSOLIDATE, Arc::new(ConsolidateProcessor::new(CONSOLIDATE, consolidate_inputs)))
        .map_err(|e| compile_err(e.to_string()))?;
    if spec.assertions.is_empty() {
        workflow
            .link(DATA_ENRICHMENT, "map", CONSOLIDATE, "map0")
            .map_err(|e| compile_err(e.to_string()))?;
    } else {
        for (slot, decl) in spec.assertions.iter().enumerate() {
            workflow
                .link(&decl.service_name, "map", CONSOLIDATE, &format!("map{slot}"))
                .map_err(|e| compile_err(e.to_string()))?;
        }
    }

    // ---- rule 5: actions
    for action in &spec.actions {
        let compiled = match &action.kind {
            ActionKind::Filter { condition } => {
                CompiledAction::Filter { condition: condition.clone() }
            }
            ActionKind::Split { groups } => CompiledAction::Split { groups: groups.clone() },
        };
        let processor = ActionProcessor::new(action.name.clone(), compiled, iq.clone());
        let group_names = processor.group_names();
        workflow
            .add(action.name.clone(), Arc::new(processor))
            .map_err(|e| compile_err(e.to_string()))?;
        workflow
            .declare_input(DATASET_INPUT, PortRef::new(&action.name, "dataset"))
            .map_err(|e| compile_err(e.to_string()))?;
        workflow
            .link(CONSOLIDATE, "map", &action.name, "map")
            .map_err(|e| compile_err(e.to_string()))?;
        for group in group_names {
            workflow
                .declare_output(group.clone(), PortRef::new(&action.name, group.clone()))
                .map_err(|e| compile_err(e.to_string()))?;
        }
    }

    workflow.validate().map_err(|e| compile_err(format!("compiled workflow is invalid: {e}")))?;
    Ok(workflow)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::QualityViewSpec;
    use crate::validate::validate;
    use qurator_rdf::namespace::q;
    use qurator_services::stdlib::{
        FieldCaptureAnnotator, StatClassifierAssertion, ZScoreAssertion,
    };

    fn setup() -> (Arc<IqModel>, ServiceRegistry, RepositoryCatalog) {
        let iq = Arc::new(IqModel::with_proteomics_extension().unwrap());
        let registry = ServiceRegistry::new();
        registry
            .register_annotator(Arc::new(FieldCaptureAnnotator::new(
                q::iri("ImprintOutputAnnotation"),
                &[
                    ("hitRatio", q::iri("HitRatio")),
                    ("massCoverage", q::iri("MassCoverage")),
                    ("peptidesCount", q::iri("PeptidesCount")),
                ],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(ZScoreAssertion::new(
                q::iri("UniversalPIScore2"),
                &["coverage", "hitratio", "peptidescount"],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(ZScoreAssertion::new(
                q::iri("UniversalPIScore"),
                &["hitratio"],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(StatClassifierAssertion::new(
                q::iri("PIScoreClassifier"),
                "score",
                q::iri("PIScoreClassification"),
                (q::iri("low"), q::iri("mid"), q::iri("high")),
            )))
            .unwrap();
        let catalog = RepositoryCatalog::new(iq.clone());
        (iq, registry, catalog)
    }

    #[test]
    fn paper_view_compiles_with_figure6_structure() {
        let (iq, registry, catalog) = setup();
        let view = validate(&QualityViewSpec::paper_example(), &iq, &registry).unwrap();
        let wf = compile(&view, &iq, &registry, &catalog).unwrap();

        // nodes: 1 annotator + DE + 3 QAs + consolidate + 1 action
        assert_eq!(wf.len(), 7);
        assert!(wf.nodes().any(|n| n == "ImprintOutputAnnotator"));
        assert!(wf.nodes().any(|n| n == DATA_ENRICHMENT));
        assert!(wf.nodes().any(|n| n == CONSOLIDATE));

        // control link annotator -> DE (rule 2)
        assert!(wf
            .control_links()
            .iter()
            .any(|(a, b)| a == "ImprintOutputAnnotator" && b == DATA_ENRICHMENT));

        // DE feeds the two score QAs, the classifier chains behind HR_MC
        let de_feeds: Vec<&str> = wf
            .data_links()
            .iter()
            .filter(|l| l.from.processor == DATA_ENRICHMENT)
            .map(|l| l.to.processor.as_str())
            .collect();
        assert!(de_feeds.contains(&"HR_MC_score"));
        assert!(de_feeds.contains(&"HR_score"));
        assert!(!de_feeds.contains(&"PIScoreClassifier"));
        assert!(wf
            .data_links()
            .iter()
            .any(|l| l.from.processor == "HR_MC_score" && l.to.processor == "PIScoreClassifier"));

        // every QA feeds the consolidator, which feeds the action
        for qa in ["HR_MC_score", "HR_score", "PIScoreClassifier"] {
            assert!(wf
                .data_links()
                .iter()
                .any(|l| l.from.processor == qa && l.to.processor == CONSOLIDATE));
        }
        assert!(wf
            .data_links()
            .iter()
            .any(|l| l.from.processor == CONSOLIDATE && l.to.processor == "filter top k score"));

        // outputs: one group for the filter
        let outputs: Vec<&str> = wf.outputs().map(|(n, _)| n).collect();
        assert_eq!(outputs, vec!["filter top k score"]);

        // repositories were created
        assert!(catalog.get("cache").is_some());
        assert!(!catalog.get("cache").unwrap().is_persistent());
    }

    #[test]
    fn multi_tag_dependency_gets_a_merge_node() {
        let (mut_iq, registry, catalog) = setup();
        let mut iq = (*mut_iq).clone();
        iq.register_assertion_type("Combiner").unwrap();
        let iq = Arc::new(iq);
        registry
            .register_assertion(Arc::new(ZScoreAssertion::new(q::iri("Combiner"), &["a", "b"])))
            .unwrap();

        let mut spec = QualityViewSpec::paper_example();
        spec.assertions.push(crate::spec::AssertionDecl {
            service_name: "combined".into(),
            service_type: "q:Combiner".into(),
            tag_name: "COMBO".into(),
            tag_kind: crate::spec::TagKind::Score,
            tag_sem_type: None,
            repository_ref: "cache".into(),
            variables: vec![
                crate::spec::VarDecl::named("a", "tag:HR_MC"),
                crate::spec::VarDecl::named("b", "tag:HR"),
            ],
        });
        let view = validate(&spec, &iq, &registry).unwrap();
        let wf = compile(&view, &iq, &registry, &catalog).unwrap();
        assert!(wf.nodes().any(|n| n == "consolidate-for-combined"));
        assert!(wf.data_links().iter().any(
            |l| l.from.processor == "consolidate-for-combined" && l.to.processor == "combined"
        ));
    }

    #[test]
    fn splitter_outputs_one_port_per_group_plus_default() {
        let (iq, registry, catalog) = setup();
        let mut spec = QualityViewSpec::paper_example();
        spec.actions[0].kind = ActionKind::Split {
            groups: vec![
                ("strong".into(), "ScoreClass in q:high".into()),
                ("weak".into(), "ScoreClass in q:low".into()),
            ],
        };
        let view = validate(&spec, &iq, &registry).unwrap();
        let wf = compile(&view, &iq, &registry, &catalog).unwrap();
        let mut outputs: Vec<&str> = wf.outputs().map(|(n, _)| n).collect();
        outputs.sort();
        assert_eq!(
            outputs,
            vec![
                "filter top k score/default",
                "filter top k score/strong",
                "filter top k score/weak"
            ]
        );
    }

    #[test]
    fn view_without_assertions_compiles() {
        let (iq, registry, catalog) = setup();
        let mut spec = QualityViewSpec::new("raw");
        spec.actions.push(crate::spec::ActionDecl {
            name: "keep".into(),
            kind: ActionKind::Filter { condition: "HitRatio > 0.5".into() },
        });
        let view = validate(&spec, &iq, &registry).unwrap();
        let wf = compile(&view, &iq, &registry, &catalog).unwrap();
        // DE -> consolidate -> action
        assert_eq!(wf.len(), 3);
    }
}
