//! # qurator
//!
//! **Quality views**: a Rust reproduction of the Qurator framework from
//! *Quality Views: Capturing and Exploiting the User Perspective on Data
//! Quality* (Missier, Embury, Greenwood, Preece, Jin — VLDB 2006).
//!
//! A quality view is a declarative, user-authored specification of
//! personal data-acceptability criteria: which evidence to collect, which
//! quality assertions (scores/classifications) to compute over it, and
//! which condition/action pairs (filters, splitters) to apply. Views are
//! validated against a semantic IQ model, compiled into executable
//! workflows, and embedded into host data-processing workflows.
//!
//! ## Module map
//!
//! * [`spec`] — the abstract QV model (§4/§5.1): annotator, QA and action
//!   declarations with variable bindings;
//! * [`xmlio`] — the concrete XML syntax of §5.1 (parse + serialize);
//! * [`validate`] — semantic validation against the IQ model, service
//!   registry and condition type checker;
//! * [`convert`] — encodings of data sets and annotation maps onto the
//!   workflow data model;
//! * [`operators`] — the abstract quality operators (Annotation, Data
//!   Enrichment, Quality Assertion, Consolidate, Actions) as workflow
//!   processors;
//! * [`planner`] — lowering of validated specs into the typed plan IR of
//!   the `qurator-plan` crate (logical nodes, optimizing passes, waves);
//! * [`exec`] — binding physical plans to live services/repositories and
//!   wiring them into workflows;
//! * [`compile`] — the QV compiler implementing the §6.1 rules (now a
//!   thin composition of [`planner`] and [`exec`]);
//! * [`deploy`] — deployment descriptors for embedding compiled views
//!   into host workflows (§6.2);
//! * [`engine`] — [`engine::QualityEngine`], the top-level API bundling
//!   IQ model, service registry and repository catalog, with both a
//!   direct interpreter and the compile-to-workflow path;
//! * [`library`] — a shareable catalog of community views (paper §7
//!   future work (iv)).
//!
//! ## Quickstart
//!
//! ```
//! use qurator::prelude::*;
//! use std::sync::Arc;
//!
//! // 1. semantic setup (the proteomics extension of the running example)
//! let engine = QualityEngine::with_proteomics_defaults().unwrap();
//!
//! // 2. a quality view in the paper's XML syntax
//! let spec = qurator::xmlio::parse_quality_view(r#"
//!   <QualityView name="hr-filter">
//!     <QualityAssertion serviceName="score" serviceType="q:UniversalPIScore"
//!                       tagName="HR" tagSynType="q:score">
//!       <variables repositoryRef="cache">
//!         <var variableName="hitratio" evidence="q:HitRatio"/>
//!       </variables>
//!     </QualityAssertion>
//!     <action name="keep strong hits">
//!       <filter><condition>HR &gt; 0</condition></filter>
//!     </action>
//!   </QualityView>
//! "#).unwrap();
//!
//! // 3. data + pre-existing annotations
//! let mut dataset = DataSet::new();
//! let cache = engine.catalog().get_or_create_cache("cache");
//! for (i, hr) in [0.9, 0.1, 0.7].iter().enumerate() {
//!     let item = qurator_rdf::term::Term::iri(format!("urn:lsid:t:hit:{i}"));
//!     dataset.push(item.clone(), [] as [(String, qurator_annotations::EvidenceValue); 0]);
//!     cache.annotate(&item, &qurator_rdf::namespace::q::iri("HitRatio"), (*hr).into()).unwrap();
//! }
//!
//! // 4. validate + execute
//! let outcome = engine.execute_view(&spec, &dataset).unwrap();
//! let kept = outcome.group("keep strong hits").unwrap();
//! assert_eq!(kept.dataset.len(), 2); // z-scores of 0.9 and 0.7 are > 0
//! ```

pub mod compile;
pub mod convert;
pub mod deploy;
pub mod engine;
pub mod exec;
pub mod library;
pub mod lint;
pub mod operators;
pub mod planner;
pub mod spec;
pub mod validate;
pub mod xmlio;

/// One-stop imports for applications.
pub mod prelude {
    pub use crate::engine::{ActionOutcome, QualityEngine};
    pub use crate::spec::{
        ActionDecl, ActionKind, AnnotatorDecl, AssertionDecl, QualityViewSpec, TagKind, VarDecl,
    };
    pub use crate::QuratorError;
    pub use qurator_annotations::{AnnotationMap, EvidenceValue};
    pub use qurator_services::DataSet;
}

/// Errors from the quality-view layer.
#[derive(Debug, Clone)]
pub enum QuratorError {
    /// XML-level failure while reading a QV document.
    Xml(String),
    /// The document is well-formed XML but not a valid QV spec.
    Spec(String),
    /// Semantic validation failed (unknown concepts, unbound variables,
    /// ill-typed conditions, missing services…).
    Validation(String),
    /// Compilation to a workflow failed.
    Compile(String),
    /// Execution failed.
    Execution(String),
    /// Semantic validation failed, with the full collect-all diagnostic
    /// list (every error, not just the first; warnings ride along).
    Diagnostics(Vec<qurator_qvlint::Diagnostic>),
}

impl QuratorError {
    /// The diagnostics attached to this error, when it carries any.
    pub fn diagnostics(&self) -> &[qurator_qvlint::Diagnostic] {
        match self {
            QuratorError::Diagnostics(d) => d,
            _ => &[],
        }
    }
}

impl std::fmt::Display for QuratorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuratorError::Xml(m) => write!(f, "quality-view XML error: {m}"),
            QuratorError::Spec(m) => write!(f, "quality-view spec error: {m}"),
            QuratorError::Validation(m) => write!(f, "quality-view validation error: {m}"),
            QuratorError::Compile(m) => write!(f, "quality-view compilation error: {m}"),
            QuratorError::Execution(m) => write!(f, "quality-view execution error: {m}"),
            QuratorError::Diagnostics(diags) => {
                let errors: Vec<&str> = diags
                    .iter()
                    .filter(|d| d.severity == qurator_qvlint::Severity::Error)
                    .map(|d| d.message.as_str())
                    .collect();
                write!(f, "quality-view validation error: {}", errors.join("; "))
            }
        }
    }
}

impl std::error::Error for QuratorError {}

impl From<qurator_xml::XmlError> for QuratorError {
    fn from(e: qurator_xml::XmlError) -> Self {
        QuratorError::Xml(e.to_string())
    }
}

impl From<qurator_services::ServiceError> for QuratorError {
    fn from(e: qurator_services::ServiceError) -> Self {
        QuratorError::Execution(e.to_string())
    }
}

impl From<qurator_annotations::AnnotationError> for QuratorError {
    fn from(e: qurator_annotations::AnnotationError) -> Self {
        QuratorError::Execution(e.to_string())
    }
}

impl From<qurator_workflow::WorkflowError> for QuratorError {
    fn from(e: qurator_workflow::WorkflowError) -> Self {
        QuratorError::Execution(e.to_string())
    }
}

impl From<qurator_plan::PlanError> for QuratorError {
    fn from(e: qurator_plan::PlanError) -> Self {
        QuratorError::Compile(e.to_string())
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, QuratorError>;
