//! Lowering validated view specs into the typed plan IR — the **single**
//! place where spec structure becomes plan nodes. Every consumer (the
//! direct interpreter, the workflow compiler, the static analyzer, the
//! `qv plan` renderer) starts from the plans built here.

use crate::spec::{ActionKind, TagKind};
use crate::validate::{BindingTarget, ValidatedView};
use crate::{QuratorError, Result};
use qurator_ontology::IqModel;
use qurator_plan::{
    ActKind, ActNode, AnnotateNode, AssertNode, Binding, EnrichNode, LogicalNode, LogicalPlan,
    PhysicalPlan, PlanConfig,
};

/// Lowers a validated view to its logical plan: one typed node per
/// operator, in process order, with evidence and variable signatures
/// resolved (the association the §6.1 compiler computes).
pub fn logical_plan(view: &ValidatedView, iq: &IqModel) -> LogicalPlan {
    let spec = &view.spec;
    let mut nodes =
        Vec::with_capacity(spec.annotators.len() + spec.assertions.len() + spec.actions.len() + 2);

    for (decl, service_type) in spec.annotators.iter().zip(&view.annotator_types) {
        nodes.push(LogicalNode::Annotate(AnnotateNode {
            name: decl.service_name.clone(),
            service_type: service_type.clone(),
            repository: decl.repository_ref.clone(),
            persistent: decl.persistent,
            provides: decl.variables.iter().filter_map(|v| iq.resolve(&v.evidence).ok()).collect(),
        }));
    }

    nodes.push(LogicalNode::Enrich(EnrichNode { fetches: view.enrichment_plan.clone() }));

    for (index, decl) in spec.assertions.iter().enumerate() {
        nodes.push(LogicalNode::Assert(AssertNode {
            name: decl.service_name.clone(),
            service_type: view.assertion_types[index].clone(),
            tag: decl.tag_name.clone(),
            tag_kind: match decl.tag_kind {
                TagKind::Score => qurator_plan::TagKind::Score,
                TagKind::Class => qurator_plan::TagKind::Class,
            },
            labels: match decl.tag_kind {
                TagKind::Score => Vec::new(),
                TagKind::Class => decl
                    .tag_sem_type
                    .as_deref()
                    .and_then(|sem| iq.resolve(sem).ok())
                    .map(|model| {
                        iq.classification_labels(&model)
                            .iter()
                            .map(|l| l.local_name().to_string())
                            .collect()
                    })
                    .unwrap_or_default(),
            },
            bindings: view.assertion_bindings[index]
                .iter()
                .map(|(variable, target)| {
                    let binding = match target {
                        BindingTarget::Evidence(e) => Binding::Evidence(e.clone()),
                        BindingTarget::Tag(t) => Binding::Tag(t.clone()),
                    };
                    (variable.clone(), binding)
                })
                .collect(),
        }));
    }

    nodes.push(LogicalNode::Consolidate);

    for action in &spec.actions {
        nodes.push(LogicalNode::Act(ActNode {
            name: action.name.clone(),
            kind: match &action.kind {
                ActionKind::Filter { condition } => {
                    ActKind::Filter { condition: condition.clone() }
                }
                ActionKind::Split { groups } => ActKind::Split { groups: groups.clone() },
            },
        }));
    }

    LogicalPlan { view: spec.name.clone(), nodes }
}

/// Lowers a validated view all the way to a physical plan through the
/// pass pipeline (`config.optimize` selects the `--no-opt` baseline).
pub fn physical_plan(
    view: &ValidatedView,
    iq: &IqModel,
    config: &PlanConfig,
) -> Result<PhysicalPlan> {
    qurator_plan::lower(&logical_plan(view, iq), config)
        .map_err(|e| QuratorError::Compile(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::QualityViewSpec;
    use crate::validate::validate;
    use qurator_rdf::namespace::q;
    use qurator_services::stdlib::{
        FieldCaptureAnnotator, StatClassifierAssertion, ZScoreAssertion,
    };
    use qurator_services::ServiceRegistry;
    use std::sync::Arc;

    fn setup() -> (IqModel, ServiceRegistry) {
        let iq = IqModel::with_proteomics_extension().unwrap();
        let registry = ServiceRegistry::new();
        registry
            .register_annotator(Arc::new(FieldCaptureAnnotator::new(
                q::iri("ImprintOutputAnnotation"),
                &[
                    ("hitRatio", q::iri("HitRatio")),
                    ("massCoverage", q::iri("MassCoverage")),
                    ("peptidesCount", q::iri("PeptidesCount")),
                ],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(ZScoreAssertion::new(
                q::iri("UniversalPIScore2"),
                &["coverage", "hitratio", "peptidescount"],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(ZScoreAssertion::new(
                q::iri("UniversalPIScore"),
                &["hitratio"],
            )))
            .unwrap();
        registry
            .register_assertion(Arc::new(StatClassifierAssertion::new(
                q::iri("PIScoreClassifier"),
                "score",
                q::iri("PIScoreClassification"),
                (q::iri("low"), q::iri("mid"), q::iri("high")),
            )))
            .unwrap();
        (iq, registry)
    }

    #[test]
    fn paper_view_lowers_to_typed_nodes_in_process_order() {
        let (iq, registry) = setup();
        let view = validate(&QualityViewSpec::paper_example(), &iq, &registry).unwrap();
        let plan = logical_plan(&view, &iq);
        let names: Vec<&str> = plan.nodes.iter().map(|n| n.name()).collect();
        assert_eq!(
            names,
            vec![
                "ImprintOutputAnnotator",
                qurator_plan::ENRICH_NODE,
                "HR_MC_score",
                "HR_score",
                "PIScoreClassifier",
                qurator_plan::CONSOLIDATE_NODE,
                "filter top k score",
            ]
        );
        let annotator = plan.annotators().next().unwrap();
        assert_eq!(annotator.repository, "cache");
        assert!(!annotator.persistent);
        assert_eq!(annotator.provides.len(), 3);
        // the classifier's variable is typed as a tag binding
        let classifier = plan.assertions().nth(2).unwrap();
        assert_eq!(classifier.bindings, vec![("score".to_string(), Binding::Tag("HR_MC".into()))]);
        assert_eq!(classifier.tag_kind, qurator_plan::TagKind::Class);
        // the classification domain travels with the node for dataflow
        let mut labels = classifier.labels.clone();
        labels.sort();
        assert_eq!(labels, vec!["high", "low", "mid"]);
        let score = plan.assertions().next().unwrap();
        assert!(score.labels.is_empty(), "score assertions have no label domain");
    }

    #[test]
    fn paper_view_physical_plan_fuses_the_cache_fetches() {
        let (iq, registry) = setup();
        let view = validate(&QualityViewSpec::paper_example(), &iq, &registry).unwrap();
        let plan = physical_plan(&view, &iq, &PlanConfig::default()).unwrap();
        assert!(plan.optimized);
        // three evidence types, one repository -> one fused group
        assert_eq!(plan.enrich.len(), 1);
        assert_eq!(plan.enrich[0].repository, "cache");
        assert_eq!(plan.fetch_count(), 3);
        assert!(plan.enrich[0].cache_local, "cache is written by the in-view annotator");
        // the classifier chains behind its producing QA in a later wave
        let wave_of =
            |name: &str| plan.waves.iter().position(|w| w.iter().any(|n| n == name)).unwrap();
        assert!(wave_of("PIScoreClassifier") > wave_of("HR_MC_score"));
        assert_eq!(wave_of("HR_MC_score"), wave_of("HR_score"));

        let raw = physical_plan(&view, &iq, &PlanConfig { optimize: false }).unwrap();
        assert_eq!(raw.enrich.len(), 3, "--no-opt keeps one access per fetch");
        assert_eq!(raw.fetch_count(), 3);
    }
}
