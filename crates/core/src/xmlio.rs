//! The concrete XML syntax of quality views (§5.1), bidirectional.
//!
//! Grammar (element names follow the paper's fragments):
//!
//! ```xml
//! <QualityView name="…">
//!   <Annotator serviceName="…" serviceType="q:…">
//!     <variables repositoryRef="cache" persistent="false">
//!       <var evidence="q:coverage"/> …
//!     </variables>
//!   </Annotator>
//!   <QualityAssertion serviceName="…" serviceType="q:…"
//!                     tagName="HR_MC" tagSynType="q:score"
//!                     tagSemType="q:PIScoreClassification">
//!     <variables repositoryRef="cache">
//!       <var variableName="coverage" evidence="q:coverage"/> …
//!     </variables>
//!   </QualityAssertion>
//!   <action name="filter top k score">
//!     <filter><condition>ScoreClass in q:high, q:mid and HR_MC &gt; 20</condition></filter>
//!     <!-- or -->
//!     <splitter>
//!       <group name="strong"><condition>…</condition></group> …
//!     </splitter>
//!   </action>
//! </QualityView>
//! ```

use crate::spec::*;
use crate::{QuratorError, Result};
use qurator_xml::{parse as parse_xml, Element};

/// Parses a QV document.
pub fn parse_quality_view(xml: &str) -> Result<QualityViewSpec> {
    let root = parse_xml(xml)?;
    element_to_spec(&root)
}

/// Parses a QV document and also returns the DOM root, whose nodes carry
/// line/column spans — the form `qv check` feeds to the analyzer so
/// diagnostics point into the source text.
pub fn parse_quality_view_with_source(xml: &str) -> Result<(QualityViewSpec, Element)> {
    let root = parse_xml(xml)?;
    let spec = element_to_spec(&root)?;
    Ok((spec, root))
}

/// Converts a parsed root element into a spec.
pub fn element_to_spec(root: &Element) -> Result<QualityViewSpec> {
    if root.name() != "QualityView" {
        return Err(QuratorError::Spec(format!("expected <QualityView>, found <{}>", root.name())));
    }
    let mut spec = QualityViewSpec::new(
        root.attr("name").ok_or_else(|| QuratorError::Spec("<QualityView> needs a name".into()))?,
    );
    for child in root.elements() {
        match child.name() {
            "Annotator" => spec.annotators.push(parse_annotator(child)?),
            "QualityAssertion" => spec.assertions.push(parse_assertion(child)?),
            "action" => spec.actions.push(parse_action(child)?),
            other => {
                return Err(QuratorError::Spec(format!(
                    "unexpected element <{other}> in <QualityView>"
                )))
            }
        }
    }
    Ok(spec)
}

fn req<'a>(e: &'a Element, attr: &str) -> Result<&'a str> {
    e.required_attr(attr).map_err(QuratorError::Spec)
}

fn parse_variables(e: &Element) -> Result<(String, bool, Vec<VarDecl>)> {
    let vars_el = e.required_child("variables").map_err(QuratorError::Spec)?;
    let repository = req(vars_el, "repositoryRef")?.to_string();
    let persistent = match vars_el.attr("persistent") {
        None => false,
        Some("true") => true,
        Some("false") => false,
        Some(other) => {
            return Err(QuratorError::Spec(format!(
                "persistent must be true/false, found {other:?}"
            )))
        }
    };
    let mut variables = Vec::new();
    for var in vars_el.children_named("var") {
        variables.push(VarDecl {
            variable_name: var.attr("variableName").map(str::to_string),
            evidence: req(var, "evidence")?.to_string(),
        });
    }
    if variables.is_empty() {
        return Err(QuratorError::Spec(format!("<{}> declares no <var> entries", e.name())));
    }
    Ok((repository, persistent, variables))
}

fn parse_annotator(e: &Element) -> Result<AnnotatorDecl> {
    let (repository_ref, persistent, variables) = parse_variables(e)?;
    Ok(AnnotatorDecl {
        service_name: req(e, "serviceName")?.to_string(),
        service_type: req(e, "serviceType")?.to_string(),
        repository_ref,
        persistent,
        variables,
    })
}

fn parse_assertion(e: &Element) -> Result<AssertionDecl> {
    let (repository_ref, _, variables) = parse_variables(e)?;
    let tag_kind = match req(e, "tagSynType")? {
        "q:score" | "score" => TagKind::Score,
        "q:class" | "class" => TagKind::Class,
        other => {
            return Err(QuratorError::Spec(format!(
                "tagSynType must be q:score or q:class, found {other:?}"
            )))
        }
    };
    Ok(AssertionDecl {
        service_name: req(e, "serviceName")?.to_string(),
        service_type: req(e, "serviceType")?.to_string(),
        tag_name: req(e, "tagName")?.to_string(),
        tag_kind,
        tag_sem_type: e.attr("tagSemType").map(str::to_string),
        repository_ref,
        variables,
    })
}

fn parse_action(e: &Element) -> Result<ActionDecl> {
    let name = req(e, "name")?.to_string();
    if e.child("filter").is_some() && e.child("splitter").is_some() {
        return Err(QuratorError::Spec(format!(
            "action {name:?} declares both <filter> and <splitter>; pick one"
        )));
    }
    if let Some(filter) = e.child("filter") {
        let condition = filter.required_child("condition").map_err(QuratorError::Spec)?.text();
        if condition.is_empty() {
            return Err(QuratorError::Spec(format!("action {name:?} has an empty condition")));
        }
        return Ok(ActionDecl { name, kind: ActionKind::Filter { condition } });
    }
    if let Some(splitter) = e.child("splitter") {
        let mut groups = Vec::new();
        for group in splitter.children_named("group") {
            let group_name = req(group, "name")?.to_string();
            let condition = group.required_child("condition").map_err(QuratorError::Spec)?.text();
            groups.push((group_name, condition));
        }
        if groups.is_empty() {
            return Err(QuratorError::Spec(format!("splitter action {name:?} declares no groups")));
        }
        return Ok(ActionDecl { name, kind: ActionKind::Split { groups } });
    }
    Err(QuratorError::Spec(format!("action {name:?} needs a <filter> or <splitter>")))
}

/// Serializes a spec back to the XML syntax (canonical form).
pub fn spec_to_xml(spec: &QualityViewSpec) -> String {
    qurator_xml::write_element(&spec_to_element(spec))
}

/// Builds the DOM for a spec.
pub fn spec_to_element(spec: &QualityViewSpec) -> Element {
    let mut root = Element::new("QualityView").with_attr("name", &spec.name);
    for a in &spec.annotators {
        let mut vars = Element::new("variables")
            .with_attr("repositoryRef", &a.repository_ref)
            .with_attr("persistent", if a.persistent { "true" } else { "false" });
        for v in &a.variables {
            vars = vars.with_child(var_element(v));
        }
        root = root.with_child(
            Element::new("Annotator")
                .with_attr("serviceName", &a.service_name)
                .with_attr("serviceType", &a.service_type)
                .with_child(vars),
        );
    }
    for qa in &spec.assertions {
        let mut vars = Element::new("variables").with_attr("repositoryRef", &qa.repository_ref);
        for v in &qa.variables {
            vars = vars.with_child(var_element(v));
        }
        let mut el = Element::new("QualityAssertion")
            .with_attr("serviceName", &qa.service_name)
            .with_attr("serviceType", &qa.service_type)
            .with_attr("tagName", &qa.tag_name)
            .with_attr(
                "tagSynType",
                match qa.tag_kind {
                    TagKind::Score => "q:score",
                    TagKind::Class => "q:class",
                },
            );
        if let Some(sem) = &qa.tag_sem_type {
            el = el.with_attr("tagSemType", sem);
        }
        root = root.with_child(el.with_child(vars));
    }
    for action in &spec.actions {
        let body = match &action.kind {
            ActionKind::Filter { condition } => {
                Element::new("filter").with_child(Element::new("condition").with_text(condition))
            }
            ActionKind::Split { groups } => {
                let mut splitter = Element::new("splitter");
                for (group_name, condition) in groups {
                    splitter = splitter.with_child(
                        Element::new("group")
                            .with_attr("name", group_name)
                            .with_child(Element::new("condition").with_text(condition)),
                    );
                }
                splitter
            }
        };
        root = root
            .with_child(Element::new("action").with_attr("name", &action.name).with_child(body));
    }
    root
}

fn var_element(v: &VarDecl) -> Element {
    let mut el = Element::new("var");
    if let Some(name) = &v.variable_name {
        el = el.with_attr("variableName", name);
    }
    el.with_attr("evidence", &v.evidence)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// The §5.1 example as one full document.
    pub(crate) const PAPER_VIEW_XML: &str = r#"
<QualityView name="ispider-pmf-quality">
  <Annotator serviceName="ImprintOutputAnnotator"
             serviceType="q:ImprintOutputAnnotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:HitRatio"/>
      <var evidence="q:MassCoverage"/>
      <var evidence="q:PeptidesCount"/>
    </variables>
  </Annotator>
  <QualityAssertion serviceName="HR_MC_score" serviceType="q:UniversalPIScore2"
                    tagName="HR_MC" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="coverage" evidence="q:MassCoverage"/>
      <var variableName="hitratio" evidence="q:HitRatio"/>
      <var variableName="peptidescount" evidence="q:PeptidesCount"/>
    </variables>
  </QualityAssertion>
  <QualityAssertion serviceName="HR_score" serviceType="q:UniversalPIScore"
                    tagName="HR" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="hitratio" evidence="q:HitRatio"/>
    </variables>
  </QualityAssertion>
  <QualityAssertion serviceName="PIScoreClassifier" serviceType="q:PIScoreClassifier"
                    tagName="ScoreClass" tagSynType="q:class"
                    tagSemType="q:PIScoreClassification">
    <variables repositoryRef="cache">
      <var variableName="score" evidence="tag:HR_MC"/>
    </variables>
  </QualityAssertion>
  <action name="filter top k score">
    <filter>
      <condition>ScoreClass in q:high, q:mid and HR_MC &gt; 20</condition>
    </filter>
  </action>
</QualityView>
"#;

    #[test]
    fn parses_the_paper_view() {
        let spec = parse_quality_view(PAPER_VIEW_XML).unwrap();
        assert_eq!(spec, QualityViewSpec::paper_example());
    }

    #[test]
    fn roundtrip_is_identity() {
        let spec = QualityViewSpec::paper_example();
        let xml = spec_to_xml(&spec);
        let back = parse_quality_view(&xml).unwrap();
        assert_eq!(back, spec, "xml was:\n{xml}");
    }

    #[test]
    fn splitter_actions() {
        let xml = r#"
          <QualityView name="split">
            <action name="triage">
              <splitter>
                <group name="strong"><condition>score &gt; 10</condition></group>
                <group name="weak"><condition>score &lt;= 10</condition></group>
              </splitter>
            </action>
          </QualityView>"#;
        let spec = parse_quality_view(xml).unwrap();
        match &spec.actions[0].kind {
            ActionKind::Split { groups } => {
                assert_eq!(groups.len(), 2);
                assert_eq!(groups[0].0, "strong");
                assert_eq!(groups[1].1, "score <= 10");
            }
            other => panic!("{other:?}"),
        }
        // and it roundtrips
        let back = parse_quality_view(&spec_to_xml(&spec)).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn rejects_malformed_specs() {
        // wrong root
        assert!(parse_quality_view("<NotAView name='x'/>").is_err());
        // nameless view
        assert!(parse_quality_view("<QualityView/>").is_err());
        // unknown child
        assert!(parse_quality_view("<QualityView name='v'><junk/></QualityView>").is_err());
        // annotator without variables
        assert!(parse_quality_view(
            r#"<QualityView name="v"><Annotator serviceName="a" serviceType="q:A"/></QualityView>"#
        )
        .is_err());
        // variables without vars
        assert!(parse_quality_view(
            r#"<QualityView name="v"><Annotator serviceName="a" serviceType="q:A">
               <variables repositoryRef="c"/></Annotator></QualityView>"#
        )
        .is_err());
        // bad tagSynType
        assert!(parse_quality_view(
            r#"<QualityView name="v">
               <QualityAssertion serviceName="s" serviceType="q:S" tagName="t" tagSynType="q:banana">
                 <variables repositoryRef="c"><var evidence="q:X"/></variables>
               </QualityAssertion></QualityView>"#
        )
        .is_err());
        // action without body
        assert!(parse_quality_view(r#"<QualityView name="v"><action name="a"/></QualityView>"#)
            .is_err());
        // action with both bodies
        assert!(parse_quality_view(
            r#"<QualityView name="v"><action name="a">
               <filter><condition>x &gt; 1</condition></filter>
               <splitter><group name="g"><condition>x &gt; 1</condition></group></splitter>
               </action></QualityView>"#
        )
        .is_err());
        // empty condition
        assert!(parse_quality_view(
            r#"<QualityView name="v"><action name="a"><filter><condition></condition></filter></action></QualityView>"#
        )
        .is_err());
        // splitter with no groups
        assert!(parse_quality_view(
            r#"<QualityView name="v"><action name="a"><splitter/></action></QualityView>"#
        )
        .is_err());
        // bad persistent flag
        assert!(parse_quality_view(
            r#"<QualityView name="v"><Annotator serviceName="a" serviceType="q:A">
               <variables repositoryRef="c" persistent="maybe"><var evidence="q:X"/></variables>
               </Annotator></QualityView>"#
        )
        .is_err());
        // XML-level error propagates
        assert!(matches!(parse_quality_view("<QualityView name='v'>"), Err(QuratorError::Xml(_))));
    }
}
