//! Observed-statistics equivalence: the per-node counters EXPLAIN
//! ANALYZE reports must not depend on *how* the view ran. The
//! wave-parallel compiled path merges per-worker collectors, so its sums
//! must agree with the sequential interpreter; and the counters must be
//! identical whether the persistent repository is the in-memory store or
//! the on-disk store (the analyze rendering is part of the
//! backend-equivalence contract).

use qurator::prelude::*;
use qurator_plan::render::render_analyze_text;
use qurator_plan::PlanConfig;
use qurator_rdf::storage::test_support::TempDir;
use qurator_rdf::term::Term;
use qurator_telemetry::stats::RunStats;
use qurator_telemetry::RunId;

const VIEW: &str = r#"
<QualityView name="stats-equiv">
  <Annotator serviceName="imprint" serviceType="q:ImprintOutputAnnotation">
    <variables repositoryRef="archive" persistent="true">
      <var evidence="q:HitRatio"/>
      <var evidence="q:MassCoverage"/>
      <var evidence="q:PeptidesCount"/>
    </variables>
  </Annotator>
  <QualityAssertion serviceName="score" serviceType="q:UniversalPIScore2"
                    tagName="HR_MC" tagSynType="q:score">
    <variables repositoryRef="archive">
      <var variableName="coverage" evidence="q:MassCoverage"/>
      <var variableName="hitratio" evidence="q:HitRatio"/>
      <var variableName="peptidescount" evidence="q:PeptidesCount"/>
    </variables>
  </QualityAssertion>
  <action name="keep">
    <filter><condition>HR_MC &gt; 0</condition></filter>
  </action>
</QualityView>"#;

fn dataset(rows: usize) -> DataSet {
    let mut ds = DataSet::new();
    for i in 0..rows {
        let item = Term::iri(format!("urn:lsid:t:stats:{i}"));
        let mut fields: Vec<(String, EvidenceValue)> = Vec::new();
        // every third item misses a field so hit rates are non-trivial
        if i % 3 != 0 {
            fields.push(("hitRatio".into(), (0.5 + (i % 5) as f64 / 10.0).into()));
        }
        fields.push(("massCoverage".into(), ((i % 40) as f64).into()));
        fields.push(("peptidesCount".into(), ((i % 9) as f64).into()));
        ds.push(item, fields);
    }
    ds
}

/// The timing-free projection of a run's counters: everything the
/// analyze surface reports except wall time.
fn counters(stats: &RunStats) -> Vec<(String, [u64; 5])> {
    stats
        .nodes
        .iter()
        .map(|(name, n)| (name.clone(), [n.calls, n.rows_in, n.rows_out, n.evidence, n.hits]))
        .collect()
}

#[test]
fn parallel_enactment_stats_agree_with_the_sequential_interpreter() {
    let spec = qurator::xmlio::parse_quality_view(VIEW).unwrap();
    let data = dataset(24);

    let interpreter = QualityEngine::with_proteomics_defaults().unwrap();
    interpreter.execute_view_run(&spec, &data, RunId::from_u64(1)).unwrap();
    let sequential = interpreter.last_run_stats().expect("interpreter stats");

    let compiled = QualityEngine::with_proteomics_defaults().unwrap();
    compiled.execute_compiled_run(&spec, &data, RunId::from_u64(2)).unwrap();
    let merged = compiled.last_run_stats().expect("compiled stats");

    assert_eq!(sequential.items, merged.items);
    assert_eq!(
        counters(&sequential),
        counters(&merged),
        "worker-merged stats diverged from the sequential interpreter"
    );
    // the comparison must not pass vacuously: real rows flowed
    assert!(sequential.nodes.values().any(|n| n.rows_out > 0), "{sequential:?}");
    assert!(sequential.nodes.values().any(|n| n.evidence > 0), "{sequential:?}");
}

#[test]
fn persisted_profiles_continue_their_decay_across_restarts() {
    let spec = qurator::xmlio::parse_quality_view(VIEW).unwrap();
    let data = dataset(6);
    let tmp = TempDir::new("stats-profile-restart");
    {
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        engine.set_store_root(tmp.path()).unwrap();
        engine.execute_view_run(&spec, &data, RunId::from_u64(7)).unwrap();
        assert_eq!(engine.stats_profile("stats-equiv").unwrap().runs, 1);
        engine.flush_stores().unwrap();
    }
    // a fresh process over the same store root folds run 2 into the
    // persisted profile instead of restarting the decay
    let engine = QualityEngine::with_proteomics_defaults().unwrap();
    engine.set_store_root(tmp.path()).unwrap();
    engine.execute_view_run(&spec, &data, RunId::from_u64(8)).unwrap();
    let profile = engine.stats_profile("stats-equiv").unwrap();
    assert_eq!(profile.runs, 2, "restart reset the profile");
}

#[test]
fn analyze_rendering_is_identical_across_backends() {
    let spec = qurator::xmlio::parse_quality_view(VIEW).unwrap();
    let data = dataset(18);
    let tmp = TempDir::new("stats-equiv-analyze");

    let memory = QualityEngine::with_proteomics_defaults().unwrap();
    let disk = QualityEngine::with_proteomics_defaults().unwrap();
    disk.set_store_root(tmp.path()).unwrap();

    let mut renderings = Vec::new();
    for engine in [&memory, &disk] {
        // lowered with the profile of the *previous* round, as `qv run
        // --analyze` does — round 2's plan carries `planned ~N rows`
        for round in 0..2u64 {
            engine.execute_view_run(&spec, &data, RunId::from_u64(round + 1)).unwrap();
            let plan = engine.plan_with_stats(&spec, &PlanConfig::default()).unwrap();
            let stats = engine.last_run_stats().expect("run stats");
            renderings.push(render_analyze_text(&plan, &stats, false));
        }
    }
    let (memory_rounds, disk_rounds) = renderings.split_at(2);
    assert_eq!(memory_rounds, disk_rounds, "analyze output diverged across backends");
    assert!(memory_rounds[1].contains("planned ~"), "{}", memory_rounds[1]);
    // timing-free mode keeps the rendering byte-deterministic
    assert!(!memory_rounds[0].contains(" us"), "{}", memory_rounds[0]);
}
