//! Engine-level backend equivalence: the same quality view over the same
//! randomized datasets must behave identically whether the persistent
//! repository is the in-memory store or the on-disk store — same group
//! outcomes, same `why(item)` decision ledgers, same SPARQL answers from
//! the annotation graph. The id-stability invariant on
//! `qurator_rdf::storage::Storage` is what makes this hold: both
//! backends assign term ids in intern order, so first-wins enrichment
//! and query iteration order agree bit-for-bit.

use qurator::prelude::*;
use qurator_rdf::storage::test_support::TempDir;
use qurator_rdf::term::Term;
use qurator_telemetry::RunId;

const VIEW: &str = r#"
<QualityView name="equiv">
  <Annotator serviceName="imprint" serviceType="q:ImprintOutputAnnotation">
    <variables repositoryRef="archive" persistent="true">
      <var evidence="q:HitRatio"/>
      <var evidence="q:MassCoverage"/>
      <var evidence="q:PeptidesCount"/>
    </variables>
  </Annotator>
  <QualityAssertion serviceName="score" serviceType="q:UniversalPIScore2"
                    tagName="HR_MC" tagSynType="q:score">
    <variables repositoryRef="archive">
      <var variableName="coverage" evidence="q:MassCoverage"/>
      <var variableName="hitratio" evidence="q:HitRatio"/>
      <var variableName="peptidescount" evidence="q:PeptidesCount"/>
    </variables>
  </QualityAssertion>
  <action name="keep">
    <filter><condition>HR_MC &gt; 0</condition></filter>
  </action>
</QualityView>"#;

/// Deterministic splitmix-style generator: the datasets must be the same
/// on every run and for both backends.
fn next(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A randomized dataset: numeric evidence with occasional missing fields
/// (a dropped field exercises null-evidence handling in both backends).
fn random_dataset(mut seed: u64, rows: usize) -> DataSet {
    let mut ds = DataSet::new();
    for i in 0..rows {
        let item = Term::iri(format!("urn:lsid:t:equiv:{seed:x}:{i}"));
        let mut fields: Vec<(String, EvidenceValue)> = Vec::new();
        if !next(&mut seed).is_multiple_of(8) {
            let hr = (next(&mut seed) % 1000) as f64 / 1000.0;
            fields.push(("hitRatio".into(), hr.into()));
        }
        if !next(&mut seed).is_multiple_of(8) {
            fields.push(("massCoverage".into(), ((next(&mut seed) % 60) as f64).into()));
        }
        if !next(&mut seed).is_multiple_of(8) {
            fields.push(("peptidesCount".into(), ((next(&mut seed) % 20) as f64).into()));
        }
        ds.push(item, fields);
    }
    ds
}

/// Renders one execution's observable behavior: group membership + tags,
/// and every item's `why(item)` ledger (span ids excluded — they are
/// process-order artifacts, not behavior).
fn observe(engine: &QualityEngine, spec: &QualityViewSpec, dataset: &DataSet, run: u64) -> String {
    let outcome = engine.execute_view_run(spec, dataset, RunId::from_u64(run)).expect("execute");
    let mut out = String::new();
    for group in &outcome.groups {
        out.push_str(&format!("group {}\n", group.name));
        for item in group.dataset.items() {
            let tags: Vec<String> = group
                .map
                .item(item)
                .map(|row| row.tag_entries().map(|(t, v)| format!("{t}={v}")).collect())
                .unwrap_or_default();
            out.push_str(&format!("  {item} [{}]\n", tags.join(", ")));
        }
    }
    // Only this dataset's items: the ledger itself is engine state and
    // (correctly) remembers earlier rounds on the engine that never
    // restarted.
    for item in dataset.items() {
        let key = item.to_string();
        let key = key.trim_start_matches('<').trim_end_matches('>');
        if let Some(trace) = engine.why(key) {
            out.push_str(&trace.render_with(None));
        }
    }
    out
}

/// The annotation graph's answers, via the repository's SPARQL surface.
fn archive_answers(engine: &QualityEngine) -> Vec<qurator_rdf::sparql::Row> {
    let repo = engine.catalog().require("archive").expect("archive repository");
    repo.query("SELECT ?s ?p ?o WHERE { ?s ?p ?o . }").expect("query archive")
}

#[test]
fn memory_and_disk_backends_are_observably_identical() {
    let spec = qurator::xmlio::parse_quality_view(VIEW).unwrap();
    for seed in [1u64, 0xDECAF, 0xFEED_BEEF] {
        let tmp = TempDir::new(&format!("equiv-{seed}"));
        let datasets: Vec<DataSet> = (0..3).map(|round| random_dataset(seed ^ round, 12)).collect();

        let memory = QualityEngine::with_proteomics_defaults().unwrap();
        memory.set_provenance_enabled(true);
        let disk = QualityEngine::with_proteomics_defaults().unwrap();
        disk.set_store_root(tmp.path()).unwrap();
        disk.set_provenance_enabled(true);

        // Several rounds against the same persistent repository: later
        // rounds re-enrich from annotations the earlier rounds stored,
        // which is exactly where a backend divergence would surface.
        for (round, dataset) in datasets.iter().enumerate() {
            let seen_by_memory = observe(&memory, &spec, dataset, round as u64);
            let seen_by_disk = observe(&disk, &spec, dataset, round as u64);
            assert_eq!(
                seen_by_memory, seen_by_disk,
                "seed {seed:#x} round {round}: backends diverged"
            );
            assert!(seen_by_memory.contains("group keep"), "{seen_by_memory}");
            // Guard against the ledger comparison passing vacuously.
            assert!(seen_by_memory.contains("evidence:"), "no ledgers rendered:\n{seen_by_memory}");
        }
        assert_eq!(
            archive_answers(&memory),
            archive_answers(&disk),
            "seed {seed:#x}: SPARQL answers diverged"
        );

        // Restarting the disk engine must not change the answers either:
        // reopen the store root in a fresh engine and compare again.
        let memory_answers = archive_answers(&memory);
        disk.flush_stores().unwrap();
        drop(disk);
        let reopened = QualityEngine::with_proteomics_defaults().unwrap();
        assert_eq!(reopened.set_store_root(tmp.path()).unwrap(), vec!["archive".to_string()]);
        assert_eq!(
            memory_answers,
            archive_answers(&reopened),
            "seed {seed:#x}: restart changed the SPARQL answers"
        );

        // And one more round after the restart, against the memory engine
        // that never restarted.
        reopened.set_provenance_enabled(true);
        let dataset = random_dataset(seed ^ 99, 12);
        assert_eq!(
            observe(&memory, &spec, &dataset, 99),
            observe(&reopened, &spec, &dataset, 99),
            "seed {seed:#x}: post-restart round diverged"
        );
    }
}
