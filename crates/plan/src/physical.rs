//! The physical plan: what the executors actually run, produced from a
//! [`LogicalPlan`](crate::LogicalPlan) by the pass pipeline in
//! [`crate::passes`].

use crate::logical::{ActNode, AnnotateNode, AssertNode, CONSOLIDATE_NODE, ENRICH_NODE};
use qurator_rdf::term::Iri;

/// Knobs for the pass pipeline. `optimize: false` lowers the logical
/// plan as-is (one enrichment access per fetch entry, no dead-node
/// elimination, no short-circuits) — the `qv plan --no-opt` baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanConfig {
    pub optimize: bool,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig { optimize: true }
    }
}

/// One fused repository access of the Enrich node: every evidence type
/// served by `repository`, deduplicated, in first-fetch order. The
/// executor answers each group with a single bulk lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnrichGroup {
    pub repository: String,
    pub evidence: Vec<Iri>,
    /// Set by the cache-routing pass when an in-plan annotator writes
    /// this repository: the read is served by annotations produced
    /// moments earlier in the same execution, so the access never needs
    /// to consult a persistent store.
    pub cache_local: bool,
}

/// A constant-folded action condition: the pass pipeline proved the
/// outcome without looking at any item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShortCircuit {
    AlwaysAccept,
    AlwaysReject,
}

/// An Assert node plus its scheduling facts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysicalAssert {
    pub node: AssertNode,
    /// Names of earlier Assert nodes whose tags this one consumes
    /// (drives both workflow chaining and wave placement).
    pub depends_on: Vec<String>,
}

/// An Act node plus per-condition short-circuit verdicts (index-aligned
/// with [`ActNode::conditions`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysicalAct {
    pub node: ActNode,
    pub short_circuit: Vec<Option<ShortCircuit>>,
}

/// Provenance of one optimization pass over the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassReport {
    pub pass: &'static str,
    pub duration_us: u64,
    pub changed: bool,
    pub notes: Vec<String>,
}

/// The physical plan both executors consume: the sequential interpreter
/// walks it phase by phase; the workflow compiler lowers it onto the
/// wave-parallel enactment engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysicalPlan {
    /// View name.
    pub view: String,
    /// Whether the optimizing passes ran (false under `--no-opt`).
    pub optimized: bool,
    /// Surviving Annotate nodes, in declaration order.
    pub annotators: Vec<AnnotateNode>,
    /// Repository persistence facts from *all* annotators (including
    /// eliminated ones — resolving a repository must not change meaning
    /// because an optimizer dropped its writer).
    pub persistence: Vec<(String, bool)>,
    /// Fused repository accesses of the single Enrich node.
    pub enrich: Vec<EnrichGroup>,
    /// Assert nodes with dependency facts, in declaration order.
    pub assertions: Vec<PhysicalAssert>,
    /// Act nodes with short-circuit verdicts, in declaration order.
    pub actions: Vec<PhysicalAct>,
    /// The wave schedule: antichains of node names in execution order.
    pub waves: Vec<Vec<String>>,
    /// What each pass did, in pipeline order.
    pub passes: Vec<PassReport>,
    /// Observed per-node output cardinalities (rounded decayed averages)
    /// installed by the `stats-profile` pass when a persisted
    /// [`qurator_telemetry::stats::StatsProfile`] is handed to
    /// [`crate::passes::lower_with_profile`] — the cost-model input.
    /// Empty when no profile was supplied.
    pub observed_rows: Vec<(String, u64)>,
}

impl PhysicalPlan {
    /// Total number of `(evidence, repository)` accesses the Enrich node
    /// performs (after fusion: one bulk call per group).
    pub fn fetch_count(&self) -> usize {
        self.enrich.iter().map(|g| g.evidence.len()).sum()
    }

    /// Every node name in schedule order (flattened waves).
    pub fn node_names(&self) -> Vec<&str> {
        self.waves.iter().flatten().map(String::as_str).collect()
    }

    /// The names of all nodes the plan executes, in process order —
    /// annotators, the Enrich node, assertions, the consolidation step,
    /// actions. (The schedule groups the same names into waves.)
    pub fn process_order(&self) -> Vec<&str> {
        let mut out: Vec<&str> = self.annotators.iter().map(|a| a.name.as_str()).collect();
        out.push(ENRICH_NODE);
        out.extend(self.assertions.iter().map(|a| a.node.name.as_str()));
        out.push(CONSOLIDATE_NODE);
        out.extend(self.actions.iter().map(|a| a.node.name.as_str()));
        out
    }

    /// Declared persistence of a repository (false when no annotator in
    /// the view writes it — matching the pre-plan executors' default).
    pub fn repository_persistent(&self, name: &str) -> bool {
        self.persistence.iter().find(|(r, _)| r == name).map(|(_, p)| *p).unwrap_or(false)
    }

    /// The observed output cardinality of a node, when the plan was
    /// lowered with a stats profile.
    pub fn observed_rows(&self, node: &str) -> Option<u64> {
        self.observed_rows.iter().find(|(n, _)| n == node).map(|(_, rows)| *rows)
    }
}
