//! The logical plan: a typed, declarative statement of what a quality
//! view computes, lowered 1:1 from the validated spec.
//!
//! Node taxonomy (mirrors the §4.1 operator set):
//!
//! | node          | meaning                                              |
//! |---------------|------------------------------------------------------|
//! | `Annotate`    | compute evidence, write it to a repository           |
//! | `Enrich`      | fetch evidence values (type → repository association)|
//! | `Assert`      | compute one quality tag from bound variables         |
//! | `Consolidate` | merge assertion outputs into one consistent map      |
//! | `Act`         | filter / split on tag and evidence conditions        |
//!
//! The logical plan keeps the spec's declaration order and performs no
//! optimization — it is the single source the pass pipeline, the static
//! analyzer and the EXPLAIN renderer all start from.

use qurator_rdf::term::Iri;

/// Node name of the single Data-Enrichment operator (stable across the
/// plan, the compiled workflow and telemetry span names).
pub const ENRICH_NODE: &str = "DataEnrichment";
/// Node name of the final consolidation task.
pub const CONSOLIDATE_NODE: &str = "ConsolidateAssertions";

/// Whether an assertion emits a numeric score or a classification label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagKind {
    Score,
    Class,
}

impl TagKind {
    /// Stable lowercase name (used in the JSON rendering).
    pub fn as_str(self) -> &'static str {
        match self {
            TagKind::Score => "score",
            TagKind::Class => "class",
        }
    }
}

/// Where an assertion variable gets its value: a fetched evidence type,
/// or an earlier assertion's tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Binding {
    Evidence(Iri),
    Tag(String),
}

/// An Annotation node: one annotator writing evidence into a repository.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnnotateNode {
    /// Node name (the view's local service name).
    pub name: String,
    /// The `q:AnnotationFunction` subclass bound at validation.
    pub service_type: Iri,
    /// Repository written.
    pub repository: String,
    /// Whether those annotations outlive one process execution.
    pub persistent: bool,
    /// Evidence types this annotator provides values for.
    pub provides: Vec<Iri>,
}

/// The single Data-Enrichment node: the §6.1 evidence-type → repository
/// association, in validation order (merge order is semantic: later
/// fetches win conflicting values).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EnrichNode {
    pub fetches: Vec<(Iri, String)>,
}

/// A Quality-Assertion node: one tag computed from typed bindings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssertNode {
    /// Node name (the view's local service name).
    pub name: String,
    /// The `q:QualityAssertion` subclass bound at validation.
    pub service_type: Iri,
    /// Tag variable this assertion writes.
    pub tag: String,
    /// Score vs classification output.
    pub tag_kind: TagKind,
    /// For classification assertions: the local names of the bound
    /// `q:ClassificationModel`'s labels, in model order. This is the
    /// value domain of the tag — the dataflow analyzer conjoins it onto
    /// downstream action conditions (QV025/QV026). Empty for scores or
    /// when the model could not be resolved.
    pub labels: Vec<String>,
    /// variable name → typed source, in declaration order.
    pub bindings: Vec<(String, Binding)>,
}

/// What an Act node does with items satisfying its condition(s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActKind {
    Filter { condition: String },
    Split { groups: Vec<(String, String)> },
}

/// An Action node: a condition/action pair over the consolidated map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActNode {
    pub name: String,
    pub kind: ActKind,
}

impl ActNode {
    /// `(group label, condition source)` pairs, one per condition the
    /// action evaluates. Filters use the action name as the label.
    pub fn conditions(&self) -> Vec<(&str, &str)> {
        match &self.kind {
            ActKind::Filter { condition } => vec![(self.name.as_str(), condition.as_str())],
            ActKind::Split { groups } => {
                groups.iter().map(|(g, c)| (g.as_str(), c.as_str())).collect()
            }
        }
    }
}

/// One node of the logical plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicalNode {
    Annotate(AnnotateNode),
    Enrich(EnrichNode),
    Assert(AssertNode),
    /// The consolidation step the §6.1 compiler inserts; carried
    /// explicitly so the plan's node list is the complete process graph.
    Consolidate,
    Act(ActNode),
}

impl LogicalNode {
    /// The node's graph name (stable across plan, workflow and spans).
    pub fn name(&self) -> &str {
        match self {
            LogicalNode::Annotate(a) => &a.name,
            LogicalNode::Enrich(_) => ENRICH_NODE,
            LogicalNode::Assert(a) => &a.name,
            LogicalNode::Consolidate => CONSOLIDATE_NODE,
            LogicalNode::Act(a) => &a.name,
        }
    }
}

/// The logical plan: the view's nodes in process order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LogicalPlan {
    /// View name.
    pub view: String,
    /// Annotate* → Enrich → Assert* → Consolidate → Act*.
    pub nodes: Vec<LogicalNode>,
}

impl LogicalPlan {
    /// All Annotate nodes, in declaration order.
    pub fn annotators(&self) -> impl Iterator<Item = &AnnotateNode> {
        self.nodes.iter().filter_map(|n| match n {
            LogicalNode::Annotate(a) => Some(a),
            _ => None,
        })
    }

    /// The Enrich node (every complete plan has exactly one).
    pub fn enrich(&self) -> Option<&EnrichNode> {
        self.nodes.iter().find_map(|n| match n {
            LogicalNode::Enrich(e) => Some(e),
            _ => None,
        })
    }

    /// All Assert nodes, in declaration order.
    pub fn assertions(&self) -> impl Iterator<Item = &AssertNode> {
        self.nodes.iter().filter_map(|n| match n {
            LogicalNode::Assert(a) => Some(a),
            _ => None,
        })
    }

    /// All Act nodes, in declaration order.
    pub fn actions(&self) -> impl Iterator<Item = &ActNode> {
        self.nodes.iter().filter_map(|n| match n {
            LogicalNode::Act(a) => Some(a),
            _ => None,
        })
    }

    /// Repository persistence facts: every repository an Annotate node
    /// writes, with its declared persistence (used when the embedder
    /// resolves repository names that only assertions mention — those
    /// default to volatile, exactly like the pre-plan executors did).
    pub fn repository_persistence(&self) -> Vec<(String, bool)> {
        let mut out: Vec<(String, bool)> = Vec::new();
        for a in self.annotators() {
            match out.iter_mut().find(|(name, _)| *name == a.repository) {
                Some((_, persistent)) => *persistent = a.persistent,
                None => out.push((a.repository.clone(), a.persistent)),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://example.org/ont#{s}"))
    }

    #[test]
    fn node_names_are_stable() {
        let plan = LogicalPlan {
            view: "t".into(),
            nodes: vec![
                LogicalNode::Annotate(AnnotateNode {
                    name: "ann".into(),
                    service_type: iri("A"),
                    repository: "cache".into(),
                    persistent: false,
                    provides: vec![iri("X")],
                }),
                LogicalNode::Enrich(EnrichNode { fetches: vec![(iri("X"), "cache".into())] }),
                LogicalNode::Consolidate,
                LogicalNode::Act(ActNode {
                    name: "keep".into(),
                    kind: ActKind::Filter { condition: "X > 0".into() },
                }),
            ],
        };
        let names: Vec<&str> = plan.nodes.iter().map(|n| n.name()).collect();
        assert_eq!(names, vec!["ann", ENRICH_NODE, CONSOLIDATE_NODE, "keep"]);
        assert_eq!(plan.annotators().count(), 1);
        assert_eq!(plan.enrich().unwrap().fetches.len(), 1);
        assert_eq!(plan.repository_persistence(), vec![("cache".to_string(), false)]);
    }

    #[test]
    fn act_conditions_label_filters_and_groups() {
        let filter =
            ActNode { name: "keep".into(), kind: ActKind::Filter { condition: "x".into() } };
        assert_eq!(filter.conditions(), vec![("keep", "x")]);
        let split = ActNode {
            name: "triage".into(),
            kind: ActKind::Split {
                groups: vec![("hi".into(), "a".into()), ("lo".into(), "b".into())],
            },
        };
        assert_eq!(split.conditions(), vec![("hi", "a"), ("lo", "b")]);
    }
}
