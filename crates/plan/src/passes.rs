//! The optimizing pass pipeline: [`lower`] turns a [`LogicalPlan`] into
//! a [`PhysicalPlan`] through five explicit passes.
//!
//! | pass                   | effect                                           |
//! |------------------------|--------------------------------------------------|
//! | `dead-node-elim`       | drop volatile annotators nobody reads            |
//! | `enrich-fusion`        | one repository access per repository, not per    |
//! |                        | evidence type (deduplicated, order-preserving)   |
//! | `cache-routing`        | mark accesses served by in-view annotations      |
//! | `action-short-circuit` | constant-fold variable-free action conditions    |
//! | `wave-schedule`        | antichain schedule for the parallel enactor      |
//!
//! Every pass is semantics-preserving: an optimized and an unoptimized
//! plan produce identical action outcomes and decision ledgers (enforced
//! by the interpreter ≡ compiled ≡ optimized property test in the
//! umbrella crate). Notably, dead-node elimination only removes
//! *annotators* whose repository no enrichment access reads and whose
//! annotations are volatile — dead *assertions* stay, because their tags
//! are visible in the output group maps.
//!
//! Pass timings are recorded both on the plan (the [`PassReport`] list)
//! and in the global metrics registry (`plan.pass.duration_us`
//! histogram, `plan.pass.runs{pass}` counters).

use crate::logical::{Binding, LogicalPlan, CONSOLIDATE_NODE, ENRICH_NODE};
use crate::physical::{
    EnrichGroup, PassReport, PhysicalAct, PhysicalAssert, PhysicalPlan, PlanConfig, ShortCircuit,
};
use crate::{PlanError, Result};
use qurator_telemetry::stats::StatsProfile;
use std::time::Instant;

/// Lowers a logical plan to a physical plan, running the optimizing
/// passes unless `config.optimize` is off (wave scheduling always runs —
/// it is required output, not an optimization).
pub fn lower(logical: &LogicalPlan, config: &PlanConfig) -> Result<PhysicalPlan> {
    lower_with_profile(logical, config, None)
}

/// Like [`lower`], but additionally consults a persisted observed-stats
/// profile (decayed per-node aggregates from previous runs of the same
/// view, see [`StatsProfile`]). When a profile is supplied, a
/// `stats-profile` pass runs after the optimizing passes and installs
/// the observed output cardinalities on
/// [`PhysicalPlan::observed_rows`] — the hook through which the cost
/// model reads real cardinalities instead of guessing. With `None` this
/// is exactly [`lower`], byte-for-byte.
pub fn lower_with_profile(
    logical: &LogicalPlan,
    config: &PlanConfig,
    profile: Option<&StatsProfile>,
) -> Result<PhysicalPlan> {
    let enrich = logical.enrich().cloned().unwrap_or_default();
    let mut plan = PhysicalPlan {
        view: logical.view.clone(),
        optimized: config.optimize,
        annotators: logical.annotators().cloned().collect(),
        persistence: logical.repository_persistence(),
        // unoptimized baseline: one access per fetch entry, in order
        enrich: enrich
            .fetches
            .iter()
            .map(|(evidence, repository)| EnrichGroup {
                repository: repository.clone(),
                evidence: vec![evidence.clone()],
                cache_local: false,
            })
            .collect(),
        assertions: resolve_dependencies(logical)?,
        actions: logical
            .actions()
            .map(|node| PhysicalAct {
                short_circuit: vec![None; node.conditions().len()],
                node: node.clone(),
            })
            .collect(),
        waves: Vec::new(),
        passes: Vec::new(),
        observed_rows: Vec::new(),
    };

    if config.optimize {
        run_pass(&mut plan, "dead-node-elim", dead_node_elim);
        run_pass(&mut plan, "enrich-fusion", enrich_fusion);
        run_pass(&mut plan, "cache-routing", cache_routing);
        run_pass(&mut plan, "action-short-circuit", action_short_circuit);
    }
    if let Some(profile) = profile {
        run_pass(&mut plan, "stats-profile", |plan| stats_profile(plan, profile));
    }
    run_pass(&mut plan, "wave-schedule", wave_schedule);
    Ok(plan)
}

/// Resolves each assertion's tag bindings to the producing assert nodes
/// (declaration order; validation guarantees producers precede readers).
fn resolve_dependencies(logical: &LogicalPlan) -> Result<Vec<PhysicalAssert>> {
    let mut out: Vec<PhysicalAssert> = Vec::new();
    let mut producers: Vec<(&str, &str)> = Vec::new(); // tag → node name
    for node in logical.assertions() {
        let mut depends_on: Vec<String> = Vec::new();
        for (_, binding) in &node.bindings {
            if let Binding::Tag(tag) = binding {
                let producer = producers
                    .iter()
                    .rev() // later declarations with the same tag win
                    .find(|(t, _)| t == tag)
                    .map(|(_, name)| name.to_string())
                    .ok_or_else(|| {
                        PlanError(format!("tag {tag:?} of node {:?} has no producer", node.name))
                    })?;
                if !depends_on.contains(&producer) {
                    depends_on.push(producer);
                }
            }
        }
        producers.push((&node.tag, &node.name));
        out.push(PhysicalAssert { node: node.clone(), depends_on });
    }
    Ok(out)
}

/// Runs one pass, timing it and recording its report + metrics.
fn run_pass(
    plan: &mut PhysicalPlan,
    name: &'static str,
    pass: impl FnOnce(&mut PhysicalPlan) -> PassOutcome,
) {
    let started = Instant::now();
    let outcome = pass(plan);
    let duration_us = started.elapsed().as_micros() as u64;
    let metrics = qurator_telemetry::metrics();
    metrics.histogram("plan.pass.duration_us").record(duration_us);
    metrics.counter_with("plan.pass.runs", &[("pass", name)]).inc();
    plan.passes.push(PassReport {
        pass: name,
        duration_us,
        changed: outcome.changed,
        notes: outcome.notes,
    });
}

struct PassOutcome {
    changed: bool,
    notes: Vec<String>,
}

/// dead-node-elim: an annotator writing a repository that no enrichment
/// access reads does work nobody in this view observes; when its
/// annotations are also volatile (non-persistent), nobody *outside* the
/// view can observe them either, so the node is removed outright.
/// Persistent writers are kept — later executions may enrich from them.
fn dead_node_elim(plan: &mut PhysicalPlan) -> PassOutcome {
    let mut notes = Vec::new();
    plan.annotators.retain(|a| {
        let read = plan.enrich.iter().any(|g| g.repository == a.repository);
        if read || a.persistent {
            true
        } else {
            notes.push(format!(
                "removed annotator {:?}: repository {:?} is volatile and never read",
                a.name, a.repository
            ));
            false
        }
    });
    PassOutcome { changed: !notes.is_empty(), notes }
}

/// enrich-fusion: group accesses by repository *name* in first-fetch
/// order and deduplicate evidence types within each group, so a
/// repository listed under several evidence IRIs is answered by one
/// grouped bulk lookup. Order preservation keeps merge semantics (later
/// fetches win conflicts) identical to the unfused plan — validation
/// guarantees each evidence type appears at most once, so regrouping by
/// repository never reorders a conflicting write.
fn enrich_fusion(plan: &mut PhysicalPlan) -> PassOutcome {
    let before = plan.enrich.len();
    let mut fused: Vec<EnrichGroup> = Vec::new();
    for access in plan.enrich.drain(..) {
        match fused.iter_mut().find(|g| g.repository == access.repository) {
            Some(group) => {
                for evidence in access.evidence {
                    if !group.evidence.contains(&evidence) {
                        group.evidence.push(evidence);
                    }
                }
            }
            None => fused.push(access),
        }
    }
    let after = fused.len();
    plan.enrich = fused;
    PassOutcome {
        changed: after != before,
        notes: if before == after {
            Vec::new()
        } else {
            vec![format!("{before} repository access(es) fused into {after} group(s)")]
        },
    }
}

/// cache-routing: an access whose repository is written by a surviving
/// annotator in this plan is served entirely by annotations computed
/// earlier in the same execution — the executor can treat it as a local
/// cache read (and the EXPLAIN output says so).
fn cache_routing(plan: &mut PhysicalPlan) -> PassOutcome {
    let mut notes = Vec::new();
    for group in &mut plan.enrich {
        let local = plan.annotators.iter().any(|a| a.repository == group.repository);
        if local && !group.cache_local {
            group.cache_local = true;
            notes.push(format!(
                "repository {:?} is served by in-view annotations",
                group.repository
            ));
        }
    }
    PassOutcome { changed: !notes.is_empty(), notes }
}

/// action-short-circuit: a condition that references no variables has
/// the same outcome for every item; fold it at plan time so the executor
/// skips per-item environment construction and evaluation. Conditions
/// that fail to parse or evaluate are left alone — the executor reports
/// those errors with full context.
fn action_short_circuit(plan: &mut PhysicalPlan) -> PassOutcome {
    let mut notes = Vec::new();
    let empty = qurator_expr::Env::new();
    for act in &mut plan.actions {
        let conditions = act.node.conditions();
        for (slot, (label, source)) in conditions.iter().enumerate() {
            let Ok(expr) = qurator_expr::parse(source) else { continue };
            if !expr.variables().is_empty() {
                continue;
            }
            let Ok(value) = expr.eval(&empty) else { continue };
            let verdict = if value.as_accepted() {
                ShortCircuit::AlwaysAccept
            } else {
                ShortCircuit::AlwaysReject
            };
            act.short_circuit[slot] = Some(verdict);
            notes.push(format!(
                "condition {source:?} of {label:?} always {}",
                match verdict {
                    ShortCircuit::AlwaysAccept => "accepts",
                    ShortCircuit::AlwaysReject => "rejects",
                }
            ));
        }
    }
    PassOutcome { changed: !notes.is_empty(), notes }
}

/// stats-profile: copy the decayed observed output cardinalities of
/// previous runs onto the plan, in process order, for nodes the profile
/// has seen. Purely informational today (EXPLAIN shows the figures);
/// the cost model reads `observed_rows` when it needs real
/// cardinalities.
fn stats_profile(plan: &mut PhysicalPlan, profile: &StatsProfile) -> PassOutcome {
    let names: Vec<String> = plan.process_order().iter().map(|s| s.to_string()).collect();
    let mut notes =
        vec![format!("profile: {} run(s) observed, alpha {}", profile.runs, profile.alpha)];
    for name in names {
        let Some(node) = profile.node(&name) else { continue };
        let rows = node.rows_out.round() as u64;
        notes.push(format!(
            "{name}: ~{rows} rows out, ~{} evidence",
            node.evidence.round() as u64
        ));
        plan.observed_rows.push((name, rows));
    }
    PassOutcome { changed: !plan.observed_rows.is_empty(), notes }
}

/// wave-schedule: antichains in dependency order — annotators first (the
/// Enrich node waits on their control links), then Enrich, then assert
/// nodes level by tag dependency, then Consolidate, then every action.
fn wave_schedule(plan: &mut PhysicalPlan) -> PassOutcome {
    let mut waves: Vec<Vec<String>> = Vec::new();
    if !plan.annotators.is_empty() {
        waves.push(plan.annotators.iter().map(|a| a.name.clone()).collect());
    }
    waves.push(vec![ENRICH_NODE.to_string()]);

    // assertion levels: 0 = fed by Enrich alone, else 1 + max(producers)
    let mut levels: Vec<(usize, &PhysicalAssert)> = Vec::new();
    for assert in &plan.assertions {
        let level = assert
            .depends_on
            .iter()
            .filter_map(|dep| levels.iter().find(|(_, a)| a.node.name == *dep).map(|(l, _)| l + 1))
            .max()
            .unwrap_or(0);
        levels.push((level, assert));
    }
    let max_level = levels.iter().map(|(l, _)| *l).max();
    if let Some(max_level) = max_level {
        for level in 0..=max_level {
            waves.push(
                levels
                    .iter()
                    .filter(|(l, _)| *l == level)
                    .map(|(_, a)| a.node.name.clone())
                    .collect(),
            );
        }
    }
    waves.push(vec![CONSOLIDATE_NODE.to_string()]);
    if !plan.actions.is_empty() {
        waves.push(plan.actions.iter().map(|a| a.node.name.clone()).collect());
    }
    plan.waves = waves;
    PassOutcome { changed: true, notes: vec![format!("{} wave(s)", plan.waves.len())] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{
        ActKind, ActNode, AnnotateNode, AssertNode, EnrichNode, LogicalNode, TagKind,
    };
    use qurator_rdf::term::Iri;

    fn iri(s: &str) -> Iri {
        Iri::new(format!("http://example.org/ont#{s}"))
    }

    fn annotate(name: &str, repo: &str, persistent: bool, provides: &[&str]) -> LogicalNode {
        LogicalNode::Annotate(AnnotateNode {
            name: name.into(),
            service_type: iri("A"),
            repository: repo.into(),
            persistent,
            provides: provides.iter().map(|p| iri(p)).collect(),
        })
    }

    fn assert_node(name: &str, tag: &str, bindings: Vec<(&str, Binding)>) -> LogicalNode {
        LogicalNode::Assert(AssertNode {
            name: name.into(),
            service_type: iri("QA"),
            tag: tag.into(),
            tag_kind: TagKind::Score,
            labels: Vec::new(),
            bindings: bindings.into_iter().map(|(v, b)| (v.to_string(), b)).collect(),
        })
    }

    fn base_plan() -> LogicalPlan {
        LogicalPlan {
            view: "t".into(),
            nodes: vec![
                annotate("ann", "cache", false, &["X", "Y"]),
                LogicalNode::Enrich(EnrichNode {
                    fetches: vec![(iri("X"), "cache".into()), (iri("Y"), "cache".into())],
                }),
                assert_node("qa1", "T1", vec![("x", Binding::Evidence(iri("X")))]),
                assert_node("qa2", "T2", vec![("t", Binding::Tag("T1".into()))]),
                LogicalNode::Consolidate,
                LogicalNode::Act(ActNode {
                    name: "keep".into(),
                    kind: ActKind::Filter { condition: "T2 > 0".into() },
                }),
            ],
        }
    }

    #[test]
    fn fusion_groups_same_repository_under_one_access() {
        let plan = lower(&base_plan(), &PlanConfig::default()).unwrap();
        assert_eq!(plan.enrich.len(), 1, "two fetches from one repository fuse: {:?}", plan.enrich);
        assert_eq!(plan.enrich[0].evidence, vec![iri("X"), iri("Y")]);
        assert!(plan.enrich[0].cache_local, "written by the in-plan annotator");
        assert_eq!(plan.fetch_count(), 2);
    }

    #[test]
    fn no_opt_keeps_one_access_per_fetch() {
        let plan = lower(&base_plan(), &PlanConfig { optimize: false }).unwrap();
        assert_eq!(plan.enrich.len(), 2);
        assert!(plan.enrich.iter().all(|g| !g.cache_local));
        assert_eq!(plan.passes.iter().map(|p| p.pass).collect::<Vec<_>>(), vec!["wave-schedule"]);
    }

    #[test]
    fn fusion_preserves_first_fetch_repository_order() {
        let mut logical = base_plan();
        logical.nodes[1] = LogicalNode::Enrich(EnrichNode {
            fetches: vec![
                (iri("X"), "beta".into()),
                (iri("Y"), "alpha".into()),
                (iri("Z"), "beta".into()),
            ],
        });
        let plan = lower(&logical, &PlanConfig::default()).unwrap();
        let repos: Vec<&str> = plan.enrich.iter().map(|g| g.repository.as_str()).collect();
        assert_eq!(repos, vec!["beta", "alpha"]);
        assert_eq!(plan.enrich[0].evidence, vec![iri("X"), iri("Z")]);
    }

    #[test]
    fn volatile_unread_annotators_are_eliminated_persistent_kept() {
        let mut logical = base_plan();
        logical.nodes.insert(1, annotate("scratch", "tmp", false, &["Z"]));
        logical.nodes.insert(2, annotate("archive", "vault", true, &["W"]));
        let plan = lower(&logical, &PlanConfig::default()).unwrap();
        let names: Vec<&str> = plan.annotators.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(names, vec!["ann", "archive"], "volatile unread writer dropped");
        // persistence facts survive elimination
        assert!(!plan.repository_persistent("tmp"));
        assert!(plan.repository_persistent("vault"));
        let elim = plan.passes.iter().find(|p| p.pass == "dead-node-elim").unwrap();
        assert!(elim.changed);
        assert!(elim.notes[0].contains("scratch"));
        // the unoptimized plan keeps the dead node
        let raw = lower(&logical, &PlanConfig { optimize: false }).unwrap();
        assert_eq!(raw.annotators.len(), 3);
    }

    #[test]
    fn constant_conditions_short_circuit() {
        let mut logical = base_plan();
        logical.nodes.push(LogicalNode::Act(ActNode {
            name: "triage".into(),
            kind: ActKind::Split {
                groups: vec![
                    ("all".into(), "true".into()),
                    ("none".into(), "1 > 2".into()),
                    ("some".into(), "T1 > 0".into()),
                ],
            },
        }));
        let plan = lower(&logical, &PlanConfig::default()).unwrap();
        assert_eq!(plan.actions[1].short_circuit.len(), 3);
        assert_eq!(plan.actions[1].short_circuit[0], Some(ShortCircuit::AlwaysAccept));
        assert_eq!(plan.actions[1].short_circuit[1], Some(ShortCircuit::AlwaysReject));
        assert_eq!(plan.actions[1].short_circuit[2], None);
        // the variable-bearing filter is untouched
        assert_eq!(plan.actions[0].short_circuit, vec![None]);
    }

    #[test]
    fn wave_schedule_levels_tag_dependencies() {
        let plan = lower(&base_plan(), &PlanConfig::default()).unwrap();
        assert_eq!(
            plan.waves,
            vec![
                vec!["ann".to_string()],
                vec![ENRICH_NODE.to_string()],
                vec!["qa1".to_string()],
                vec!["qa2".to_string()],
                vec![CONSOLIDATE_NODE.to_string()],
                vec!["keep".to_string()],
            ]
        );
        assert_eq!(plan.assertions[1].depends_on, vec!["qa1".to_string()]);
    }

    #[test]
    fn stats_profile_installs_observed_rows() {
        use qurator_telemetry::stats::{view_key, NodeStats, RunStats, StatsProfile};

        let logical = base_plan();
        let baseline = lower(&logical, &PlanConfig::default()).unwrap();
        assert!(baseline.observed_rows.is_empty(), "no profile, no observed figures");

        let mut run = RunStats { view: "t".into(), run_id: None, items: 5, ..Default::default() };
        run.nodes.insert(
            "qa1".into(),
            NodeStats { calls: 1, rows_in: 5, rows_out: 5, evidence: 0, hits: 5, wall_ns: 10 },
        );
        run.nodes.insert(
            "keep".into(),
            NodeStats { calls: 1, rows_in: 5, rows_out: 3, evidence: 0, hits: 3, wall_ns: 10 },
        );
        let node_names = baseline.process_order();
        let mut profile = StatsProfile::new("t", view_key("t", node_names.iter().copied()));
        profile.observe(&run);

        let plan = lower_with_profile(&logical, &PlanConfig::default(), Some(&profile)).unwrap();
        assert_eq!(plan.observed_rows("qa1"), Some(5));
        assert_eq!(plan.observed_rows("keep"), Some(3));
        assert_eq!(plan.observed_rows("ann"), None, "profile never saw it");
        let pass = plan.passes.iter().find(|p| p.pass == "stats-profile").unwrap();
        assert!(pass.changed);
        assert!(pass.notes[0].contains("1 run(s) observed"));
        // the profile pass never perturbs anything the executors consume
        assert_eq!(plan.waves, baseline.waves);
        assert_eq!(plan.enrich, baseline.enrich);
        assert_eq!(plan.actions, baseline.actions);
    }

    #[test]
    fn missing_tag_producer_is_a_plan_error() {
        let mut logical = base_plan();
        logical.nodes[2] = assert_node("qa1", "T1", vec![("t", Binding::Tag("Ghost".into()))]);
        assert!(lower(&logical, &PlanConfig::default()).is_err());
    }
}
