//! Schema validation for the `qv plan --format json` rendering — the
//! machine-checkable contract behind the `qv plan-check` CI gate.

use qurator_telemetry::json::{parse, Value};

/// Validates one `qv plan --format json` document. Returns the number of
/// plan nodes on success, or a description of the first violation.
pub fn validate_plan_json(text: &str) -> Result<usize, String> {
    let doc = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let obj = doc.as_object().ok_or("top level must be an object")?;

    require_str(&doc, "view")?;
    require_bool(&doc, "optimized")?;
    for key in ["passes", "waves", "annotate", "enrich", "assert", "act"] {
        if !obj.contains_key(key) {
            return Err(format!("missing required key {key:?}"));
        }
    }

    let passes = require_array(&doc, "passes")?;
    if passes.is_empty() {
        return Err("passes must not be empty (wave-schedule always runs)".into());
    }
    for (i, pass) in passes.iter().enumerate() {
        require_str(pass, "pass").map_err(|e| format!("passes[{i}]: {e}"))?;
        require_u64(pass, "duration_us").map_err(|e| format!("passes[{i}]: {e}"))?;
        require_bool(pass, "changed").map_err(|e| format!("passes[{i}]: {e}"))?;
        let notes = require_array(pass, "notes").map_err(|e| format!("passes[{i}]: {e}"))?;
        if notes.iter().any(|n| n.as_str().is_none()) {
            return Err(format!("passes[{i}]: notes must be strings"));
        }
    }

    let waves = require_array(&doc, "waves")?;
    if waves.is_empty() {
        return Err("waves must not be empty".into());
    }
    let mut scheduled = 0usize;
    for (i, wave) in waves.iter().enumerate() {
        let names = wave.as_array().ok_or(format!("waves[{i}] must be an array"))?;
        if names.is_empty() {
            return Err(format!("waves[{i}] is empty"));
        }
        if names.iter().any(|n| n.as_str().is_none()) {
            return Err(format!("waves[{i}]: node names must be strings"));
        }
        scheduled += names.len();
    }

    let mut nodes = 0usize;
    for (i, a) in require_array(&doc, "annotate")?.iter().enumerate() {
        require_str(a, "name").map_err(|e| format!("annotate[{i}]: {e}"))?;
        require_str(a, "service_type").map_err(|e| format!("annotate[{i}]: {e}"))?;
        require_str(a, "repository").map_err(|e| format!("annotate[{i}]: {e}"))?;
        require_bool(a, "persistent").map_err(|e| format!("annotate[{i}]: {e}"))?;
        require_array(a, "provides").map_err(|e| format!("annotate[{i}]: {e}"))?;
        nodes += 1;
    }
    for (i, g) in require_array(&doc, "enrich")?.iter().enumerate() {
        require_str(g, "repository").map_err(|e| format!("enrich[{i}]: {e}"))?;
        require_bool(g, "cache_local").map_err(|e| format!("enrich[{i}]: {e}"))?;
        let evidence = require_array(g, "evidence").map_err(|e| format!("enrich[{i}]: {e}"))?;
        if evidence.is_empty() {
            return Err(format!("enrich[{i}]: evidence must not be empty"));
        }
    }
    for (i, a) in require_array(&doc, "assert")?.iter().enumerate() {
        require_str(a, "name").map_err(|e| format!("assert[{i}]: {e}"))?;
        require_str(a, "tag").map_err(|e| format!("assert[{i}]: {e}"))?;
        let kind = require_str(a, "tag_kind").map_err(|e| format!("assert[{i}]: {e}"))?;
        if kind != "score" && kind != "class" {
            return Err(format!(
                "assert[{i}]: tag_kind must be \"score\" or \"class\", got {kind:?}"
            ));
        }
        for (j, b) in require_array(a, "bindings")
            .map_err(|e| format!("assert[{i}]: {e}"))?
            .iter()
            .enumerate()
        {
            require_str(b, "variable").map_err(|e| format!("assert[{i}].bindings[{j}]: {e}"))?;
            let kind =
                require_str(b, "kind").map_err(|e| format!("assert[{i}].bindings[{j}]: {e}"))?;
            if kind != "evidence" && kind != "tag" {
                return Err(format!(
                    "assert[{i}].bindings[{j}]: kind must be \"evidence\" or \"tag\""
                ));
            }
            require_str(b, "source").map_err(|e| format!("assert[{i}].bindings[{j}]: {e}"))?;
        }
        require_array(a, "depends_on").map_err(|e| format!("assert[{i}]: {e}"))?;
        nodes += 1;
    }
    for (i, act) in require_array(&doc, "act")?.iter().enumerate() {
        require_str(act, "name").map_err(|e| format!("act[{i}]: {e}"))?;
        let kind = require_str(act, "kind").map_err(|e| format!("act[{i}]: {e}"))?;
        if kind != "filter" && kind != "split" {
            return Err(format!("act[{i}]: kind must be \"filter\" or \"split\", got {kind:?}"));
        }
        let conditions = require_array(act, "conditions").map_err(|e| format!("act[{i}]: {e}"))?;
        if conditions.is_empty() {
            return Err(format!("act[{i}]: conditions must not be empty"));
        }
        for (j, c) in conditions.iter().enumerate() {
            require_str(c, "label").map_err(|e| format!("act[{i}].conditions[{j}]: {e}"))?;
            require_str(c, "condition").map_err(|e| format!("act[{i}].conditions[{j}]: {e}"))?;
            let verdict = c
                .get("short_circuit")
                .ok_or(format!("act[{i}].conditions[{j}]: missing short_circuit"))?;
            let ok = verdict.is_null()
                || matches!(verdict.as_str(), Some("always_accept") | Some("always_reject"));
            if !ok {
                return Err(format!(
                    "act[{i}].conditions[{j}]: short_circuit must be null, \"always_accept\" or \"always_reject\""
                ));
            }
        }
        nodes += 1;
    }

    // + Enrich + Consolidate: every plan schedules both exactly once
    if scheduled != nodes + 2 {
        return Err(format!(
            "schedule covers {scheduled} node(s) but the plan defines {} (+ Enrich + Consolidate)",
            nodes
        ));
    }
    Ok(nodes + 2)
}

fn require_array<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    v.get(key).and_then(|v| v.as_array()).ok_or(format!("{key:?} must be an array"))
}

fn require_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key).and_then(|v| v.as_str()).ok_or(format!("{key:?} must be a string"))
}

fn require_bool(v: &Value, key: &str) -> Result<bool, String> {
    v.get(key).and_then(|v| v.as_bool()).ok_or(format!("{key:?} must be a boolean"))
}

fn require_u64(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key).and_then(|v| v.as_u64()).ok_or(format!("{key:?} must be a non-negative integer"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{
        ActKind, ActNode, AnnotateNode, AssertNode, Binding, EnrichNode, LogicalNode, LogicalPlan,
        TagKind,
    };
    use crate::passes::lower;
    use crate::physical::PlanConfig;
    use crate::render::render_json;
    use qurator_rdf::term::Iri;

    fn rendered() -> String {
        let iri = |s: &str| Iri::new(format!("http://example.org/ont#{s}"));
        let logical = LogicalPlan {
            view: "sample".into(),
            nodes: vec![
                LogicalNode::Annotate(AnnotateNode {
                    name: "ann".into(),
                    service_type: iri("Imprint"),
                    repository: "cache".into(),
                    persistent: false,
                    provides: vec![iri("HitRatio")],
                }),
                LogicalNode::Enrich(EnrichNode {
                    fetches: vec![(iri("HitRatio"), "cache".into())],
                }),
                LogicalNode::Assert(AssertNode {
                    name: "qa".into(),
                    service_type: iri("Score"),
                    tag: "HR".into(),
                    tag_kind: TagKind::Score,
                    labels: Vec::new(),
                    bindings: vec![("h".into(), Binding::Evidence(iri("HitRatio")))],
                }),
                LogicalNode::Consolidate,
                LogicalNode::Act(ActNode {
                    name: "keep".into(),
                    kind: ActKind::Filter { condition: "HR > 0".into() },
                }),
            ],
        };
        render_json(&lower(&logical, &PlanConfig::default()).unwrap())
    }

    #[test]
    fn rendered_plans_validate() {
        let count = validate_plan_json(&rendered()).expect("schema-valid");
        assert_eq!(count, 5); // ann + Enrich + qa + Consolidate + keep
    }

    #[test]
    fn mutations_are_rejected() {
        let good = rendered();
        for (needle, replacement) in [
            ("\"optimized\": true", "\"optimized\": \"yes\""),
            ("\"tag_kind\": \"score\"", "\"tag_kind\": \"scored\""),
            ("\"kind\": \"filter\"", "\"kind\": \"filters\""),
            ("\"short_circuit\": null", "\"short_circuit\": true"),
            ("\"waves\": [", "\"tides\": ["),
        ] {
            let bad = good.replace(needle, replacement);
            assert_ne!(bad, good, "mutation {needle:?} did not apply");
            assert!(validate_plan_json(&bad).is_err(), "accepted mutated {needle:?}");
        }
        assert!(validate_plan_json("not json").is_err());
        assert!(validate_plan_json("[]").is_err());
    }
}
