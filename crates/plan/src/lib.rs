//! # qurator-plan
//!
//! The typed plan IR for quality views: one declarative description of
//! the abstract quality process (§4: Annotation → Data Enrichment →
//! Quality Assertion → Consolidate → Action) that every consumer shares.
//!
//! * [`LogicalPlan`] — the faithful, unoptimized lowering of a validated
//!   view spec: typed `Annotate` / `Enrich` / `Assert` / `Consolidate` /
//!   `Act` nodes with resolved evidence and variable signatures;
//! * [`passes::lower`] — an explicit pass pipeline (dead-node
//!   elimination, repository-access fusion, cache routing, action
//!   short-circuiting, wave scheduling) producing a [`PhysicalPlan`];
//! * [`render`] — EXPLAIN-style text and JSON renderers;
//! * [`schema`] — a validator for the JSON rendering (the
//!   `qv plan-check` gate).
//!
//! The crate is deliberately declarative: it knows evidence types,
//! repository *names*, service-type IRIs and condition source text, but
//! never touches services, repositories or workflow processors. Binding
//! a physical plan to executable operators is the embedder's job (in
//! this workspace: `qurator::exec`), which is what lets the direct
//! interpreter, the compiled wave engine and the static analyzer consume
//! the same plan without dependency cycles.

pub mod logical;
pub mod passes;
pub mod physical;
pub mod render;
pub mod schema;

pub use logical::{
    ActKind, ActNode, AnnotateNode, AssertNode, Binding, EnrichNode, LogicalNode, LogicalPlan,
    TagKind, CONSOLIDATE_NODE, ENRICH_NODE,
};
pub use passes::{lower, lower_with_profile};
pub use physical::{
    EnrichGroup, PassReport, PhysicalAct, PhysicalAssert, PhysicalPlan, PlanConfig, ShortCircuit,
};

/// Errors from plan lowering (a malformed logical plan — e.g. a tag
/// binding with no producing assertion — that validation should have
/// rejected upstream).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(pub String);

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "plan error: {}", self.0)
    }
}

impl std::error::Error for PlanError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PlanError>;
