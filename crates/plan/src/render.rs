//! EXPLAIN-style renderers for physical plans.
//!
//! [`render_text`] is deliberately deterministic — it prints what each
//! pass *did* (changed flag and notes) but never timings, so the output
//! is byte-stable across runs and suitable for golden-snapshot tests.
//! [`render_json`] carries the full plan including pass durations.
//!
//! [`render_analyze_text`] / [`render_analyze_json`] are the EXPLAIN
//! ANALYZE renderers: the plan tree annotated with the *observed*
//! per-node statistics of one run ([`RunStats`]), plus the planned
//! cardinalities when the plan was lowered with a stats profile. With
//! `timing: false` the text form omits run id and wall times, making it
//! byte-identical across backends and runs — the
//! `backend_equivalence`-style tests rely on this.

use crate::logical::{ActKind, Binding, CONSOLIDATE_NODE, ENRICH_NODE};
use crate::physical::{PhysicalPlan, ShortCircuit};
use qurator_telemetry::json::escape;
use qurator_telemetry::stats::RunStats;
use std::fmt::Write as _;

/// Renders the EXPLAIN text for a physical plan. Byte-deterministic for
/// a given plan: pass durations are deliberately omitted (the JSON
/// rendering and the `plan.pass.duration_us` metric carry them).
pub fn render_text(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    let mode = if plan.optimized { "optimized" } else { "unoptimized" };
    let _ = writeln!(out, "plan for view {:?} ({mode})", plan.view);

    let _ = writeln!(out, "passes:");
    for pass in &plan.passes {
        let mark = if pass.changed { "*" } else { " " };
        let _ = writeln!(out, "  {mark} {}", pass.pass);
        for note in &pass.notes {
            let _ = writeln!(out, "      - {note}");
        }
    }

    let _ = writeln!(out, "schedule:");
    for (index, wave) in plan.waves.iter().enumerate() {
        let _ = writeln!(out, "  wave {index}: {}", wave.join(", "));
    }

    let _ = writeln!(out, "nodes:");
    for a in &plan.annotators {
        let lifetime = if a.persistent { "persistent" } else { "volatile" };
        let provides: Vec<&str> = a.provides.iter().map(|e| e.local_name()).collect();
        let _ = writeln!(
            out,
            "  Annotate {:?} [{}] -> repository {:?} ({lifetime}) provides {}",
            a.name,
            a.service_type.local_name(),
            a.repository,
            provides.join(", ")
        );
    }
    for group in &plan.enrich {
        let evidence: Vec<&str> = group.evidence.iter().map(|e| e.local_name()).collect();
        let source = if group.cache_local { "in-view annotations" } else { "repository" };
        let _ =
            writeln!(out, "  Enrich <- {:?} ({source}): {}", group.repository, evidence.join(", "));
    }
    for assert in &plan.assertions {
        let _ = writeln!(
            out,
            "  Assert {:?} [{}] -> tag {} ({})",
            assert.node.name,
            assert.node.service_type.local_name(),
            assert.node.tag,
            assert.node.tag_kind.as_str()
        );
        for (variable, binding) in &assert.node.bindings {
            let source = match binding {
                Binding::Evidence(iri) => format!("evidence {}", iri.local_name()),
                Binding::Tag(tag) => format!("tag {tag}"),
            };
            let _ = writeln!(out, "      {variable} <- {source}");
        }
        if !assert.depends_on.is_empty() {
            let _ = writeln!(out, "      depends on: {}", assert.depends_on.join(", "));
        }
    }
    let _ = writeln!(out, "  Consolidate");
    for act in &plan.actions {
        let kind = match &act.node.kind {
            ActKind::Filter { .. } => "filter",
            ActKind::Split { .. } => "split",
        };
        let _ = writeln!(out, "  Act {:?} ({kind})", act.node.name);
        for (slot, (label, condition)) in act.node.conditions().iter().enumerate() {
            let verdict = match act.short_circuit.get(slot).copied().flatten() {
                Some(ShortCircuit::AlwaysAccept) => " [always accepts]",
                Some(ShortCircuit::AlwaysReject) => " [always rejects]",
                None => "",
            };
            let _ = writeln!(out, "      {label}: {condition}{verdict}");
        }
    }
    out
}

/// Renders the machine-readable JSON for a physical plan (validated by
/// [`crate::schema::validate_plan_json`], the `qv plan-check` gate).
pub fn render_json(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"view\": \"{}\",", escape(&plan.view));
    let _ = writeln!(out, "  \"optimized\": {},", plan.optimized);

    out.push_str("  \"passes\": [");
    for (i, pass) in plan.passes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let notes: Vec<String> = pass.notes.iter().map(|n| format!("\"{}\"", escape(n))).collect();
        let _ = write!(
            out,
            "\n    {{\"pass\": \"{}\", \"duration_us\": {}, \"changed\": {}, \"notes\": [{}]}}",
            escape(pass.pass),
            pass.duration_us,
            pass.changed,
            notes.join(", ")
        );
    }
    out.push_str("\n  ],\n");

    out.push_str("  \"waves\": [");
    for (i, wave) in plan.waves.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let names: Vec<String> = wave.iter().map(|n| format!("\"{}\"", escape(n))).collect();
        let _ = write!(out, "\n    [{}]", names.join(", "));
    }
    out.push_str("\n  ],\n");

    out.push_str("  \"annotate\": [");
    for (i, a) in plan.annotators.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let provides: Vec<String> =
            a.provides.iter().map(|e| format!("\"{}\"", escape(e.as_str()))).collect();
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"service_type\": \"{}\", \"repository\": \"{}\", \"persistent\": {}, \"provides\": [{}]}}",
            escape(&a.name),
            escape(a.service_type.as_str()),
            escape(&a.repository),
            a.persistent,
            provides.join(", ")
        );
    }
    out.push_str("\n  ],\n");

    out.push_str("  \"enrich\": [");
    for (i, g) in plan.enrich.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let evidence: Vec<String> =
            g.evidence.iter().map(|e| format!("\"{}\"", escape(e.as_str()))).collect();
        let _ = write!(
            out,
            "\n    {{\"repository\": \"{}\", \"cache_local\": {}, \"evidence\": [{}]}}",
            escape(&g.repository),
            g.cache_local,
            evidence.join(", ")
        );
    }
    out.push_str("\n  ],\n");

    out.push_str("  \"assert\": [");
    for (i, a) in plan.assertions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let bindings: Vec<String> = a
            .node
            .bindings
            .iter()
            .map(|(variable, binding)| {
                let (kind, source) = match binding {
                    Binding::Evidence(iri) => ("evidence", iri.as_str().to_string()),
                    Binding::Tag(tag) => ("tag", tag.clone()),
                };
                format!(
                    "{{\"variable\": \"{}\", \"kind\": \"{kind}\", \"source\": \"{}\"}}",
                    escape(variable),
                    escape(&source)
                )
            })
            .collect();
        let depends: Vec<String> =
            a.depends_on.iter().map(|d| format!("\"{}\"", escape(d))).collect();
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"service_type\": \"{}\", \"tag\": \"{}\", \"tag_kind\": \"{}\", \"bindings\": [{}], \"depends_on\": [{}]}}",
            escape(&a.node.name),
            escape(a.node.service_type.as_str()),
            escape(&a.node.tag),
            a.node.tag_kind.as_str(),
            bindings.join(", "),
            depends.join(", ")
        );
    }
    out.push_str("\n  ],\n");

    out.push_str("  \"act\": [");
    for (i, act) in plan.actions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let kind = match &act.node.kind {
            ActKind::Filter { .. } => "filter",
            ActKind::Split { .. } => "split",
        };
        let conditions: Vec<String> = act
            .node
            .conditions()
            .iter()
            .enumerate()
            .map(|(slot, (label, condition))| {
                let verdict = match act.short_circuit.get(slot).copied().flatten() {
                    Some(ShortCircuit::AlwaysAccept) => "\"always_accept\"",
                    Some(ShortCircuit::AlwaysReject) => "\"always_reject\"",
                    None => "null",
                };
                format!(
                    "{{\"label\": \"{}\", \"condition\": \"{}\", \"short_circuit\": {verdict}}}",
                    escape(label),
                    escape(condition)
                )
            })
            .collect();
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"kind\": \"{kind}\", \"conditions\": [{}]}}",
            escape(&act.node.name),
            conditions.join(", ")
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Every plan node in process order with its analyze `kind` label (the
/// vocabulary [`qurator_telemetry::schema::validate_analyze_json`]
/// accepts).
fn analyze_nodes(plan: &PhysicalPlan) -> Vec<(&str, &'static str)> {
    let mut out: Vec<(&str, &'static str)> = Vec::new();
    for a in &plan.annotators {
        out.push((a.name.as_str(), "annotate"));
    }
    out.push((ENRICH_NODE, "enrich"));
    for a in &plan.assertions {
        out.push((a.node.name.as_str(), "assert"));
    }
    out.push((CONSOLIDATE_NODE, "consolidate"));
    for a in &plan.actions {
        out.push((a.node.name.as_str(), "act"));
    }
    out
}

/// Renders the EXPLAIN ANALYZE text: the node tree annotated with one
/// run's observed counters. Nodes that recorded nothing (today only the
/// consolidation step, which is uninstrumented by design so the
/// interpreter and the compiled engine stay comparable) are omitted.
/// With `timing: false` the output carries no run id and no durations —
/// byte-identical for equal runs on any backend.
pub fn render_analyze_text(plan: &PhysicalPlan, stats: &RunStats, timing: bool) -> String {
    let mut out = String::new();
    let mode = if plan.optimized { "optimized" } else { "unoptimized" };
    let _ = writeln!(out, "analyze for view {:?} ({mode})", plan.view);
    if timing {
        match &stats.run_id {
            Some(run) => {
                let _ = writeln!(out, "run: {run}");
            }
            None => {
                let _ = writeln!(out, "run: -");
            }
        }
        let _ = writeln!(out, "total self time: {:.1} us", stats.total_wall_ns() as f64 / 1000.0);
    }
    let _ = writeln!(out, "items: {}", stats.items);
    let _ = writeln!(out, "nodes:");
    for (name, kind) in analyze_nodes(plan) {
        let Some(n) = stats.node(name) else { continue };
        let _ = write!(
            out,
            "  {kind} {name:?}: calls {} | rows {} -> {} | evidence {} | hits {}",
            n.calls, n.rows_in, n.rows_out, n.evidence, n.hits
        );
        if let Some(planned) = plan.observed_rows(name) {
            let _ = write!(out, " | planned ~{planned} rows");
        }
        if timing {
            let _ = write!(out, " | self {:.1} us", n.wall_ns as f64 / 1000.0);
        }
        out.push('\n');
    }
    out
}

/// Renders the machine-readable EXPLAIN ANALYZE document (validated by
/// [`qurator_telemetry::schema::validate_analyze_json`]).
/// `planned_rows` is the profile figure when the plan was lowered with
/// one, else `null`.
pub fn render_analyze_json(plan: &PhysicalPlan, stats: &RunStats) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"type\": \"analyze\",\n");
    let _ = writeln!(out, "  \"view\": \"{}\",", escape(&plan.view));
    let _ = writeln!(out, "  \"optimized\": {},", plan.optimized);
    match &stats.run_id {
        Some(run) => {
            let _ = writeln!(out, "  \"run_id\": \"{run}\",");
        }
        None => out.push_str("  \"run_id\": null,\n"),
    }
    let _ = writeln!(out, "  \"items\": {},", stats.items);
    out.push_str("  \"nodes\": [");
    let mut first = true;
    for (name, kind) in analyze_nodes(plan) {
        let Some(n) = stats.node(name) else { continue };
        if !first {
            out.push(',');
        }
        first = false;
        let planned = match plan.observed_rows(name) {
            Some(rows) => rows.to_string(),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "\n    {{\"node\": \"{}\", \"kind\": \"{kind}\", \"calls\": {}, \"rows_in\": {}, \"rows_out\": {}, \"evidence\": {}, \"hits\": {}, \"planned_rows\": {planned}, \"wall_us\": {:.3}}}",
            escape(name),
            n.calls,
            n.rows_in,
            n.rows_out,
            n.evidence,
            n.hits,
            n.wall_ns as f64 / 1000.0
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{
        ActKind, ActNode, AnnotateNode, AssertNode, EnrichNode, LogicalNode, LogicalPlan, TagKind,
    };
    use crate::passes::lower;
    use crate::physical::PlanConfig;
    use qurator_rdf::term::Iri;

    fn sample() -> PhysicalPlan {
        let iri = |s: &str| Iri::new(format!("http://example.org/ont#{s}"));
        let logical = LogicalPlan {
            view: "sample".into(),
            nodes: vec![
                LogicalNode::Annotate(AnnotateNode {
                    name: "ann".into(),
                    service_type: iri("Imprint"),
                    repository: "cache".into(),
                    persistent: false,
                    provides: vec![iri("HitRatio")],
                }),
                LogicalNode::Enrich(EnrichNode {
                    fetches: vec![(iri("HitRatio"), "cache".into())],
                }),
                LogicalNode::Assert(AssertNode {
                    name: "qa".into(),
                    service_type: iri("Score"),
                    tag: "HR".into(),
                    tag_kind: TagKind::Score,
                    labels: Vec::new(),
                    bindings: vec![("h".into(), Binding::Evidence(iri("HitRatio")))],
                }),
                LogicalNode::Consolidate,
                LogicalNode::Act(ActNode {
                    name: "keep".into(),
                    kind: ActKind::Filter { condition: "HR > 0".into() },
                }),
            ],
        };
        lower(&logical, &PlanConfig::default()).unwrap()
    }

    #[test]
    fn text_is_duration_free_and_complete() {
        let text = render_text(&sample());
        assert!(text.contains("plan for view \"sample\" (optimized)"));
        assert!(text.contains("enrich-fusion"));
        assert!(text.contains("wave 0: ann"));
        assert!(text.contains("Enrich <- \"cache\" (in-view annotations): HitRatio"));
        assert!(text.contains("keep: HR > 0"));
        assert!(!text.contains("duration"), "text rendering must stay deterministic");
        assert!(!text.contains("_us"));
    }

    #[test]
    fn json_round_trips_through_the_shared_parser() {
        let json = render_json(&sample());
        let value = qurator_telemetry::json::parse(&json).expect("valid JSON");
        assert_eq!(value.get("view").and_then(|v| v.as_str()), Some("sample"));
        assert_eq!(value.get("optimized").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(value.get("waves").and_then(|v| v.as_array()).map(|w| w.len()), Some(5));
        let passes = value.get("passes").and_then(|v| v.as_array()).unwrap();
        assert!(passes.iter().all(|p| p.get("duration_us").and_then(|d| d.as_u64()).is_some()));
    }

    fn sample_stats() -> RunStats {
        use qurator_telemetry::stats::NodeStats;
        let mut stats = RunStats { view: "sample".into(), run_id: None, items: 4, ..Default::default() };
        let node = |rows_out, evidence, hits, wall_ns| NodeStats {
            calls: 1,
            rows_in: 4,
            rows_out,
            evidence,
            hits,
            wall_ns,
        };
        stats.nodes.insert("ann".into(), node(4, 4, 0, 1500));
        stats.nodes.insert(ENRICH_NODE.into(), node(4, 4, 4, 2500));
        stats.nodes.insert("qa".into(), node(4, 0, 4, 500));
        stats.nodes.insert("keep".into(), node(2, 0, 2, 700));
        stats
    }

    #[test]
    fn analyze_text_without_timing_is_duration_free() {
        let text = render_analyze_text(&sample(), &sample_stats(), false);
        assert!(text.contains("analyze for view \"sample\" (optimized)"));
        assert!(text.contains("items: 4"));
        assert!(text.contains("annotate \"ann\": calls 1 | rows 4 -> 4 | evidence 4 | hits 0"));
        assert!(text.contains("enrich \"DataEnrichment\""));
        assert!(text.contains("act \"keep\": calls 1 | rows 4 -> 2"));
        assert!(!text.contains("Consolidate"), "uninstrumented node is omitted");
        assert!(!text.contains(" us"), "timing=false output must be duration-free");
        assert!(!text.contains("run:"));

        let timed = render_analyze_text(&sample(), &sample_stats(), true);
        assert!(timed.contains("run: -"));
        assert!(timed.contains("total self time: 5.2 us"));
        assert!(timed.contains("self 1.5 us"));
    }

    #[test]
    fn analyze_json_passes_the_schema_validator() {
        let plan = sample();
        let json = render_analyze_json(&plan, &sample_stats());
        let nodes = qurator_telemetry::schema::validate_analyze_json(&json).expect("valid analyze");
        assert_eq!(nodes, 4, "ann, Enrich, qa, keep — consolidate omitted");
        let value = qurator_telemetry::json::parse(&json).unwrap();
        let nodes = value.get("nodes").and_then(|v| v.as_array()).unwrap();
        // no profile on this plan: planned_rows is null everywhere
        assert!(nodes.iter().all(|n| matches!(
            n.get("planned_rows"),
            Some(qurator_telemetry::json::Value::Null)
        )));
    }

    #[test]
    fn quotes_in_names_are_escaped() {
        let mut plan = sample();
        plan.view = "we\"ird".into();
        let json = render_json(&plan);
        assert!(qurator_telemetry::json::parse(&json).is_ok());
    }
}
