//! EXPLAIN-style renderers for physical plans.
//!
//! [`render_text`] is deliberately deterministic — it prints what each
//! pass *did* (changed flag and notes) but never timings, so the output
//! is byte-stable across runs and suitable for golden-snapshot tests.
//! [`render_json`] carries the full plan including pass durations.

use crate::logical::{ActKind, Binding};
use crate::physical::{PhysicalPlan, ShortCircuit};
use qurator_telemetry::json::escape;
use std::fmt::Write as _;

/// Renders the EXPLAIN text for a physical plan. Byte-deterministic for
/// a given plan: pass durations are deliberately omitted (the JSON
/// rendering and the `plan.pass.duration_us` metric carry them).
pub fn render_text(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    let mode = if plan.optimized { "optimized" } else { "unoptimized" };
    let _ = writeln!(out, "plan for view {:?} ({mode})", plan.view);

    let _ = writeln!(out, "passes:");
    for pass in &plan.passes {
        let mark = if pass.changed { "*" } else { " " };
        let _ = writeln!(out, "  {mark} {}", pass.pass);
        for note in &pass.notes {
            let _ = writeln!(out, "      - {note}");
        }
    }

    let _ = writeln!(out, "schedule:");
    for (index, wave) in plan.waves.iter().enumerate() {
        let _ = writeln!(out, "  wave {index}: {}", wave.join(", "));
    }

    let _ = writeln!(out, "nodes:");
    for a in &plan.annotators {
        let lifetime = if a.persistent { "persistent" } else { "volatile" };
        let provides: Vec<&str> = a.provides.iter().map(|e| e.local_name()).collect();
        let _ = writeln!(
            out,
            "  Annotate {:?} [{}] -> repository {:?} ({lifetime}) provides {}",
            a.name,
            a.service_type.local_name(),
            a.repository,
            provides.join(", ")
        );
    }
    for group in &plan.enrich {
        let evidence: Vec<&str> = group.evidence.iter().map(|e| e.local_name()).collect();
        let source = if group.cache_local { "in-view annotations" } else { "repository" };
        let _ =
            writeln!(out, "  Enrich <- {:?} ({source}): {}", group.repository, evidence.join(", "));
    }
    for assert in &plan.assertions {
        let _ = writeln!(
            out,
            "  Assert {:?} [{}] -> tag {} ({})",
            assert.node.name,
            assert.node.service_type.local_name(),
            assert.node.tag,
            assert.node.tag_kind.as_str()
        );
        for (variable, binding) in &assert.node.bindings {
            let source = match binding {
                Binding::Evidence(iri) => format!("evidence {}", iri.local_name()),
                Binding::Tag(tag) => format!("tag {tag}"),
            };
            let _ = writeln!(out, "      {variable} <- {source}");
        }
        if !assert.depends_on.is_empty() {
            let _ = writeln!(out, "      depends on: {}", assert.depends_on.join(", "));
        }
    }
    let _ = writeln!(out, "  Consolidate");
    for act in &plan.actions {
        let kind = match &act.node.kind {
            ActKind::Filter { .. } => "filter",
            ActKind::Split { .. } => "split",
        };
        let _ = writeln!(out, "  Act {:?} ({kind})", act.node.name);
        for (slot, (label, condition)) in act.node.conditions().iter().enumerate() {
            let verdict = match act.short_circuit.get(slot).copied().flatten() {
                Some(ShortCircuit::AlwaysAccept) => " [always accepts]",
                Some(ShortCircuit::AlwaysReject) => " [always rejects]",
                None => "",
            };
            let _ = writeln!(out, "      {label}: {condition}{verdict}");
        }
    }
    out
}

/// Renders the machine-readable JSON for a physical plan (validated by
/// [`crate::schema::validate_plan_json`], the `qv plan-check` gate).
pub fn render_json(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"view\": \"{}\",", escape(&plan.view));
    let _ = writeln!(out, "  \"optimized\": {},", plan.optimized);

    out.push_str("  \"passes\": [");
    for (i, pass) in plan.passes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let notes: Vec<String> = pass.notes.iter().map(|n| format!("\"{}\"", escape(n))).collect();
        let _ = write!(
            out,
            "\n    {{\"pass\": \"{}\", \"duration_us\": {}, \"changed\": {}, \"notes\": [{}]}}",
            escape(pass.pass),
            pass.duration_us,
            pass.changed,
            notes.join(", ")
        );
    }
    out.push_str("\n  ],\n");

    out.push_str("  \"waves\": [");
    for (i, wave) in plan.waves.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let names: Vec<String> = wave.iter().map(|n| format!("\"{}\"", escape(n))).collect();
        let _ = write!(out, "\n    [{}]", names.join(", "));
    }
    out.push_str("\n  ],\n");

    out.push_str("  \"annotate\": [");
    for (i, a) in plan.annotators.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let provides: Vec<String> =
            a.provides.iter().map(|e| format!("\"{}\"", escape(e.as_str()))).collect();
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"service_type\": \"{}\", \"repository\": \"{}\", \"persistent\": {}, \"provides\": [{}]}}",
            escape(&a.name),
            escape(a.service_type.as_str()),
            escape(&a.repository),
            a.persistent,
            provides.join(", ")
        );
    }
    out.push_str("\n  ],\n");

    out.push_str("  \"enrich\": [");
    for (i, g) in plan.enrich.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let evidence: Vec<String> =
            g.evidence.iter().map(|e| format!("\"{}\"", escape(e.as_str()))).collect();
        let _ = write!(
            out,
            "\n    {{\"repository\": \"{}\", \"cache_local\": {}, \"evidence\": [{}]}}",
            escape(&g.repository),
            g.cache_local,
            evidence.join(", ")
        );
    }
    out.push_str("\n  ],\n");

    out.push_str("  \"assert\": [");
    for (i, a) in plan.assertions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let bindings: Vec<String> = a
            .node
            .bindings
            .iter()
            .map(|(variable, binding)| {
                let (kind, source) = match binding {
                    Binding::Evidence(iri) => ("evidence", iri.as_str().to_string()),
                    Binding::Tag(tag) => ("tag", tag.clone()),
                };
                format!(
                    "{{\"variable\": \"{}\", \"kind\": \"{kind}\", \"source\": \"{}\"}}",
                    escape(variable),
                    escape(&source)
                )
            })
            .collect();
        let depends: Vec<String> =
            a.depends_on.iter().map(|d| format!("\"{}\"", escape(d))).collect();
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"service_type\": \"{}\", \"tag\": \"{}\", \"tag_kind\": \"{}\", \"bindings\": [{}], \"depends_on\": [{}]}}",
            escape(&a.node.name),
            escape(a.node.service_type.as_str()),
            escape(&a.node.tag),
            a.node.tag_kind.as_str(),
            bindings.join(", "),
            depends.join(", ")
        );
    }
    out.push_str("\n  ],\n");

    out.push_str("  \"act\": [");
    for (i, act) in plan.actions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let kind = match &act.node.kind {
            ActKind::Filter { .. } => "filter",
            ActKind::Split { .. } => "split",
        };
        let conditions: Vec<String> = act
            .node
            .conditions()
            .iter()
            .enumerate()
            .map(|(slot, (label, condition))| {
                let verdict = match act.short_circuit.get(slot).copied().flatten() {
                    Some(ShortCircuit::AlwaysAccept) => "\"always_accept\"",
                    Some(ShortCircuit::AlwaysReject) => "\"always_reject\"",
                    None => "null",
                };
                format!(
                    "{{\"label\": \"{}\", \"condition\": \"{}\", \"short_circuit\": {verdict}}}",
                    escape(label),
                    escape(condition)
                )
            })
            .collect();
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"kind\": \"{kind}\", \"conditions\": [{}]}}",
            escape(&act.node.name),
            conditions.join(", ")
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logical::{
        ActKind, ActNode, AnnotateNode, AssertNode, EnrichNode, LogicalNode, LogicalPlan, TagKind,
    };
    use crate::passes::lower;
    use crate::physical::PlanConfig;
    use qurator_rdf::term::Iri;

    fn sample() -> PhysicalPlan {
        let iri = |s: &str| Iri::new(format!("http://example.org/ont#{s}"));
        let logical = LogicalPlan {
            view: "sample".into(),
            nodes: vec![
                LogicalNode::Annotate(AnnotateNode {
                    name: "ann".into(),
                    service_type: iri("Imprint"),
                    repository: "cache".into(),
                    persistent: false,
                    provides: vec![iri("HitRatio")],
                }),
                LogicalNode::Enrich(EnrichNode {
                    fetches: vec![(iri("HitRatio"), "cache".into())],
                }),
                LogicalNode::Assert(AssertNode {
                    name: "qa".into(),
                    service_type: iri("Score"),
                    tag: "HR".into(),
                    tag_kind: TagKind::Score,
                    labels: Vec::new(),
                    bindings: vec![("h".into(), Binding::Evidence(iri("HitRatio")))],
                }),
                LogicalNode::Consolidate,
                LogicalNode::Act(ActNode {
                    name: "keep".into(),
                    kind: ActKind::Filter { condition: "HR > 0".into() },
                }),
            ],
        };
        lower(&logical, &PlanConfig::default()).unwrap()
    }

    #[test]
    fn text_is_duration_free_and_complete() {
        let text = render_text(&sample());
        assert!(text.contains("plan for view \"sample\" (optimized)"));
        assert!(text.contains("enrich-fusion"));
        assert!(text.contains("wave 0: ann"));
        assert!(text.contains("Enrich <- \"cache\" (in-view annotations): HitRatio"));
        assert!(text.contains("keep: HR > 0"));
        assert!(!text.contains("duration"), "text rendering must stay deterministic");
        assert!(!text.contains("_us"));
    }

    #[test]
    fn json_round_trips_through_the_shared_parser() {
        let json = render_json(&sample());
        let value = qurator_telemetry::json::parse(&json).expect("valid JSON");
        assert_eq!(value.get("view").and_then(|v| v.as_str()), Some("sample"));
        assert_eq!(value.get("optimized").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(value.get("waves").and_then(|v| v.as_array()).map(|w| w.len()), Some(5));
        let passes = value.get("passes").and_then(|v| v.as_array()).unwrap();
        assert!(passes.iter().all(|p| p.get("duration_us").and_then(|d| d.as_u64()).is_some()));
    }

    #[test]
    fn quotes_in_names_are_escaped() {
        let mut plan = sample();
        plan.view = "we\"ird".into();
        let json = render_json(&plan);
        assert!(qurator_telemetry::json::parse(&json).is_ok());
    }
}
