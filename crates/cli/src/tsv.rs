//! Tab-separated data sets for the CLI.
//!
//! First row: header, first column must be `id`. Cells parse as numbers
//! when they look numeric, `true`/`false` as booleans, empty as null
//! (omitted), everything else as text.

use qurator::prelude::*;
use qurator_rdf::term::{Iri, Term};

/// Parses the TSV text into a data set.
pub fn read_dataset(text: &str) -> Result<DataSet, String> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
    let Some((_, header)) = lines.next() else {
        return Err("empty data file".into());
    };
    let columns: Vec<&str> = header.split('\t').map(str::trim).collect();
    if columns.first() != Some(&"id") {
        return Err(format!(
            "first header column must be 'id', found {:?}",
            columns.first().unwrap_or(&"")
        ));
    }
    let mut dataset = DataSet::new();
    for (line_no, line) in lines {
        let cells: Vec<&str> = line.split('\t').map(str::trim).collect();
        if cells.len() != columns.len() {
            return Err(format!(
                "line {}: expected {} columns, found {}",
                line_no + 1,
                columns.len(),
                cells.len()
            ));
        }
        let id = cells[0];
        let item = Iri::try_new(id)
            .map(Term::Iri)
            .map_err(|_| format!("line {}: invalid item IRI {id:?}", line_no + 1))?;
        let mut fields: Vec<(String, EvidenceValue)> = Vec::new();
        for (column, cell) in columns.iter().zip(&cells).skip(1) {
            if cell.is_empty() {
                continue;
            }
            fields.push((column.to_string(), parse_cell(cell)));
        }
        dataset.push(item, fields);
    }
    Ok(dataset)
}

fn parse_cell(cell: &str) -> EvidenceValue {
    if let Ok(n) = cell.parse::<f64>() {
        return EvidenceValue::Number(n);
    }
    match cell {
        "true" => EvidenceValue::Bool(true),
        "false" => EvidenceValue::Bool(false),
        other => EvidenceValue::Text(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "id\thitRatio\tmassCoverage\tlab\n\
        urn:lsid:t:h:1\t0.82\t31\taberdeen\n\
        urn:lsid:t:h:2\t0.4\t\tfalse\n";

    #[test]
    fn parses_sample() {
        let ds = read_dataset(SAMPLE).unwrap();
        assert_eq!(ds.len(), 2);
        let item1 = Term::iri("urn:lsid:t:h:1");
        assert_eq!(ds.field(&item1, "hitRatio"), EvidenceValue::Number(0.82));
        assert_eq!(ds.field(&item1, "lab"), EvidenceValue::Text("aberdeen".into()));
        let item2 = Term::iri("urn:lsid:t:h:2");
        assert_eq!(ds.field(&item2, "massCoverage"), EvidenceValue::Null, "empty cell omitted");
        assert_eq!(ds.field(&item2, "lab"), EvidenceValue::Bool(false));
    }

    #[test]
    fn rejects_bad_headers_and_rows() {
        assert!(read_dataset("").is_err());
        assert!(read_dataset("name\tx\nfoo\t1\n").is_err());
        assert!(read_dataset("id\tx\nurn:lsid:t:h:1\t1\t2\n").is_err());
        assert!(read_dataset("id\tx\nnot an iri\t1\n").is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let ds = read_dataset("id\tx\n\nurn:lsid:t:h:1\t5\n\n").unwrap();
        assert_eq!(ds.len(), 1);
    }
}
