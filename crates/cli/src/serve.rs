//! `qv serve` — a long-lived engine behind a minimal HTTP endpoint.
//!
//! The paper's deployment story (§7) is a *service*: quality views are
//! published once and exercised continuously as new submissions arrive.
//! This module gives the CLI that shape without pulling in an HTTP
//! framework: a hand-rolled `std::net::TcpListener` front-end speaking
//! just enough HTTP/1.1 for `curl`, the CI smoke job and the serving
//! load bench.
//!
//! Routes:
//!
//! | method | path             | body                                     |
//! |--------|------------------|------------------------------------------|
//! | GET    | `/`              | JSON index: views + endpoints            |
//! | GET    | `/healthz`       | `ok`                                     |
//! | GET    | `/metrics`       | Prometheus text exposition               |
//! | GET    | `/traces/recent` | JSON-lines from the trace ring buffer    |
//! | GET    | `/drift`         | drift-monitor state + events, JSON       |
//! | GET    | `/runs/<id>`     | correlation bundle for one run id        |
//! | GET    | `/log/recent`    | JSON-lines from the access-log ring      |
//! | GET    | `/slo`           | per-route error-budget status, JSON      |
//! | GET    | `/store`         | storage inventory + journal/compaction   |
//! | GET    | `/stats/<view>`  | decayed per-view observed-stats profile  |
//! | POST   | `/run/<view>`    | TSV submission in, group summary out     |
//!
//! ## Run correlation
//!
//! Every `POST /run/<view>` mints a [`RunId`] before the engine runs and
//! echoes it in the `X-QV-Run-Id` response header (and the JSON body).
//! The same id is stamped on the root span of the execution trace, the
//! retained-trace metadata, every decision-ledger record the run wrote,
//! and any drift threshold-crossing the run tripped — so
//! `GET /runs/<id>` can reassemble the whole story of one request after
//! the fact, and an access-log line is enough to start the chase.
//!
//! ## Concurrency model
//!
//! The accept loop used to handle requests serially on its own thread,
//! so one slow (or half-open) client stalled every other submission.
//! [`Server::run`] now runs a fixed pool instead:
//!
//! * the **accept thread** (the caller of `run`) accepts connections
//!   non-blockingly, polling the shutdown flag, and pushes each socket
//!   into a **bounded queue** (`Mutex<VecDeque>` + condvar,
//!   [`ServeConfig::queue_capacity`] deep, depth exported as the
//!   `serve.queue.depth` gauge);
//! * when the queue is full the connection is **shed** right there: the
//!   accept thread writes `503 Service Unavailable` with a
//!   `Retry-After` header and closes — load is refused visibly
//!   (`serve.shed.count`), never queued unboundedly or silently
//!   dropped;
//! * [`ServeConfig::workers`] **handler threads** pop connections and
//!   speak HTTP/1.1 keep-alive on them: up to
//!   [`ServeConfig::keep_alive_max`] requests per connection, a
//!   [`ServeConfig::read_timeout`] per read so an idle or stalled peer
//!   can hold a worker only briefly. A timeout mid-request is answered
//!   with `408 Request Timeout` (counted in `serve.read.timeout` — a
//!   slow-loris client is distinguishable from a malformed one); a
//!   timeout between requests just closes the idle connection.
//!
//! On SIGTERM the accept thread stops accepting, the workers finish
//! their in-flight request (keep-alive connections are told
//! `Connection: close`), and `run` returns `Ok(())` so the process
//! exits 0 — the CI `serve-smoke` drain contract.
//!
//! The request handler is a pure function ([`route`]) over a
//! [`ServeState`], so the routing table is unit-testable without
//! sockets; the connection layer above it owns framing, keep-alive and
//! error mapping (400 malformed / 408 timeout / 413 oversized / 503
//! shed).

use std::collections::{BTreeMap, VecDeque};
use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use qurator::prelude::*;
use qurator::spec::ActionKind;
use qurator_telemetry::json::escape;
use qurator_telemetry::{
    AccessLog, AccessRecord, Profile, RunId, SloConfig, SloTracker, TelemetryConfig, TraceRetainer,
};

use crate::tsv;

/// Tuning for the [`Server`] worker pool and HTTP connection handling.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Handler threads popping connections off the queue.
    pub workers: usize,
    /// Accepted-but-unhandled connections the queue holds before the
    /// accept thread sheds with 503.
    pub queue_capacity: usize,
    /// Requests served on one keep-alive connection before it is closed.
    pub keep_alive_max: usize,
    /// Per-read socket timeout: bounds how long a stalled client can
    /// hold a worker, and doubles as the keep-alive idle timeout.
    pub read_timeout: Duration,
    /// Seconds advertised in the `Retry-After` header of shed responses.
    pub retry_after_secs: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(2, 16),
            queue_capacity: 64,
            keep_alive_max: 100,
            read_timeout: Duration::from_secs(5),
            retry_after_secs: 1,
        }
    }
}

/// Observability knobs for one serve instance, on top of the
/// [`TelemetryConfig`] retention settings.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// File the structured access log is appended to (`--access-log`);
    /// the in-memory ring at `GET /log/recent` is kept either way.
    pub access_log_path: Option<PathBuf>,
    /// Records the in-memory access-log ring retains.
    pub access_log_capacity: usize,
    /// Latency / availability objectives for `GET /slo` and the
    /// `slo.*` gauges.
    pub slo: SloConfig,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions { access_log_path: None, access_log_capacity: 1024, slo: SloConfig::default() }
    }
}

/// How many per-item decision traces the serving ledger retains before
/// evicting oldest-first (a long-lived server must not grow without
/// bound as submissions stream in).
const SERVE_LEDGER_CAPACITY: usize = 8192;

/// Everything a request handler needs: the engine, its trace retainer,
/// the access log, the SLO tracker and the views published at startup.
pub struct ServeState {
    engine: QualityEngine,
    retainer: Arc<TraceRetainer>,
    access_log: Arc<AccessLog>,
    slo: SloTracker,
    views: BTreeMap<String, QualityViewSpec>,
}

impl ServeState {
    /// Publishes `views` on `engine` and switches the engine to
    /// continuous observability (bounded trace retention + drift
    /// monitoring) per `config`. Decision provenance is always on while
    /// serving — `GET /runs/<id>` correlates through the ledger — but
    /// bounded to [`SERVE_LEDGER_CAPACITY`] items. Fails only when the
    /// `--access-log` sink cannot be opened.
    pub fn new(
        engine: QualityEngine,
        views: Vec<QualityViewSpec>,
        config: &TelemetryConfig,
        options: ServeOptions,
    ) -> Result<Self, String> {
        let retainer = engine.enable_observability(config);
        engine.set_provenance_enabled(true);
        engine.ledger().set_trace_capacity(SERVE_LEDGER_CAPACITY);
        let access_log = Arc::new(match &options.access_log_path {
            Some(path) => AccessLog::with_sink(options.access_log_capacity, path)
                .map_err(|e| format!("cannot open access log {}: {e}", path.display()))?,
            None => AccessLog::new(options.access_log_capacity),
        });
        let slo = SloTracker::new(options.slo);
        let views = views.into_iter().map(|v| (v.name.clone(), v)).collect();
        Ok(ServeState { engine, retainer, access_log, slo, views })
    }

    /// Names of the published views, sorted.
    pub fn view_names(&self) -> Vec<&str> {
        self.views.keys().map(String::as_str).collect()
    }
}

/// Milliseconds since the Unix epoch, for access-log timestamps and SLO
/// window arithmetic.
fn now_ms() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default().as_millis() as u64
}

/// A finished HTTP response, pre-framing.
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: String,
    /// `Retry-After` seconds, set on shed (503) responses.
    pub retry_after: Option<u32>,
    /// The run minted for this request, echoed as `X-QV-Run-Id` and
    /// copied into the access-log record.
    pub run_id: Option<RunId>,
}

impl Response {
    fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            retry_after: None,
            run_id: None,
        }
    }

    fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into(),
            retry_after: None,
            run_id: None,
        }
    }

    fn error(status: u16, message: &str) -> Self {
        Response::json(status, format!("{{\"error\":\"{}\"}}", escape(message)))
    }

    /// The canned admission-control response: the queue is full, come
    /// back in `retry_after` seconds.
    pub fn shed(retry_after: u32) -> Self {
        let mut response =
            Response::error(503, "request queue is full; retry after the indicated delay");
        response.retry_after = Some(retry_after);
        response
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Clamps a request path to the closed set of metric/log route labels:
/// known endpoints keep their literal path, parameterised families
/// collapse to their prefix (`/run/<view>` → `/run`, `/runs/<id>` →
/// `/runs`), and anything else — including 404 probes — lands in
/// `"other"`, so a port scanner cannot mint unbounded label values in
/// the metrics registry.
pub fn route_label(path: &str) -> &'static str {
    match path {
        "/" => "/",
        "/healthz" => "/healthz",
        "/metrics" => "/metrics",
        "/traces/recent" => "/traces/recent",
        "/drift" => "/drift",
        "/log/recent" => "/log/recent",
        "/slo" => "/slo",
        "/store" => "/store",
        _ if path.starts_with("/run/") => "/run",
        _ if path.starts_with("/runs/") => "/runs",
        _ if path.starts_with("/stats/") => "/stats",
        _ => "other",
    }
}

/// Dispatches one request. Also records the `serve.requests{route,status}`
/// counter and the `serve.request.latency{route}` histogram (microseconds)
/// so the endpoint observes itself through the same registry it exports.
pub fn route(state: &ServeState, method: &str, target: &str, body: &str) -> Response {
    let started = Instant::now();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let response = route_inner(state, method, path, query, body);
    let label = route_label(path);
    let metrics = qurator_telemetry::metrics();
    metrics
        .counter_with(
            "serve.requests",
            &[("route", label), ("status", &response.status.to_string())],
        )
        .inc();
    metrics
        .histogram_with("serve.request.latency", &[("route", label)])
        .record(started.elapsed().as_micros() as u64);
    response
}

/// Parses a `limit=` query parameter with an explicit error channel: a
/// present-but-non-numeric value is a client mistake worth a 400, not a
/// silent fallback to the default.
fn parse_limit(query: Option<&str>, default: usize) -> Result<usize, String> {
    let Some(raw) = query
        .and_then(|q| q.split('&').find_map(|kv| kv.strip_prefix("limit=")).map(str::to_string))
    else {
        return Ok(default);
    };
    raw.parse::<usize>().map_err(|_| format!("limit {raw:?} is not a non-negative integer"))
}

fn route_inner(
    state: &ServeState,
    method: &str,
    path: &str,
    query: Option<&str>,
    body: &str,
) -> Response {
    match (method, path) {
        ("GET", "/") => Response::json(200, index_json(state)),
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/metrics") => {
            // lazy SLO tick: budgets are recomputed whenever someone
            // scrapes, so the hot request path never pays for them
            state.slo.tick(qurator_telemetry::metrics(), now_ms());
            Response::text(200, qurator_telemetry::metrics().render_prometheus())
        }
        ("GET", "/traces/recent") => match parse_limit(query, 32) {
            Err(message) => Response::error(400, &message),
            Ok(limit) => Response {
                status: 200,
                content_type: "application/x-ndjson",
                body: state.retainer.recent_jsonl(limit),
                retry_after: None,
                run_id: None,
            },
        },
        ("GET", "/drift") => Response::json(200, qurator_telemetry::drift::global().to_json()),
        ("GET", "/log/recent") => match parse_limit(query, 32) {
            Err(message) => Response::error(400, &message),
            Ok(limit) => Response {
                status: 200,
                content_type: "application/x-ndjson",
                body: state.access_log.recent_jsonl(limit),
                retry_after: None,
                run_id: None,
            },
        },
        ("GET", "/slo") => {
            Response::json(200, state.slo.to_json(qurator_telemetry::metrics(), now_ms()))
        }
        ("GET", "/store") => Response::json(200, store_json(state)),
        ("GET", runs) if runs.starts_with("/runs/") => run_bundle(state, &runs["/runs/".len()..]),
        ("GET", stats) if stats.starts_with("/stats/") => {
            view_stats(state, &stats["/stats/".len()..])
        }
        ("POST", run) if run.starts_with("/run/") => run_view(state, &run["/run/".len()..], body),
        (
            _,
            "/" | "/healthz" | "/metrics" | "/traces/recent" | "/drift" | "/log/recent" | "/slo"
            | "/store",
        ) => Response::error(405, &format!("{method} not allowed here")),
        (_, run) if run.starts_with("/run/") => Response::error(405, "use POST with a TSV body"),
        (_, runs) if runs.starts_with("/runs/") => {
            Response::error(405, &format!("{method} not allowed here"))
        }
        (_, stats) if stats.starts_with("/stats/") => {
            Response::error(405, &format!("{method} not allowed here"))
        }
        _ => Response::error(404, &format!("no route for {path}")),
    }
}

/// `GET /runs/<id>`: the correlation bundle for one run — the retained
/// span trace (when the sampler kept it), the decision-ledger slice the
/// run wrote, any ledger events (drift crossings) it tripped, the
/// per-node self-time profile of the trace, and the run's observed
/// plan-node statistics (`"stats"`, the EXPLAIN ANALYZE counters). 404
/// only when *nothing* references the id.
fn run_bundle(state: &ServeState, id: &str) -> Response {
    let Some(run) = RunId::parse(id) else {
        return Response::error(400, &format!("run id {id:?} is not 16 hex chars"));
    };
    let retained = state.retainer.find_run(run);
    let traces = state.engine.ledger().for_run(run);
    let events = state.engine.ledger().events_for_run(run);
    if retained.is_none() && traces.is_empty() && events.is_empty() {
        return Response::error(
            404,
            &format!("run {run} is not referenced by any retained trace or ledger record"),
        );
    }
    let trace_json = match &retained {
        None => "null".to_string(),
        Some(kept) => {
            let spans: Vec<String> = kept.trace.to_jsonl().lines().map(str::to_string).collect();
            format!(
                "{{\"view\":\"{}\",\"reason\":\"{}\",\"root_duration_ns\":{},\"rejected\":{},\"spans\":[{}]}}",
                escape(&kept.view),
                kept.reason.as_str(),
                kept.root_duration_ns,
                kept.rejected,
                spans.join(",")
            )
        }
    };
    let profile_json = match &retained {
        None => "null".to_string(),
        Some(kept) => {
            let profile = Profile::from_traces([&kept.trace]);
            let nodes: Vec<String> = profile
                .nodes()
                .iter()
                .map(|(name, stat)| {
                    format!(
                        "{{\"node\":\"{}\",\"calls\":{},\"self_ns\":{}}}",
                        escape(name),
                        stat.calls,
                        stat.self_ns
                    )
                })
                .collect();
            format!("[{}]", nodes.join(","))
        }
    };
    let stats_json = match state.engine.run_stats(run) {
        Some(stats) => stats.to_json(),
        None => "null".to_string(),
    };
    let ledger_json: Vec<String> = traces.iter().map(|t| t.to_json()).collect();
    let events_json: Vec<String> = events
        .iter()
        .map(|e| {
            format!(
                "{{\"kind\":\"{}\",\"subject\":\"{}\",\"detail\":\"{}\",\"seq\":{}}}",
                escape(&e.kind),
                escape(&e.subject),
                escape(&e.detail),
                e.seq
            )
        })
        .collect();
    Response::json(
        200,
        format!(
            "{{\"run_id\":\"{run}\",\"trace\":{trace_json},\"ledger\":[{}],\"events\":[{}],\"profile\":{profile_json},\"stats\":{stats_json}}}",
            ledger_json.join(","),
            events_json.join(",")
        ),
    )
}

fn index_json(state: &ServeState) -> String {
    let views: Vec<String> =
        state.view_names().iter().map(|v| format!("\"{}\"", escape(v))).collect();
    format!(
        "{{\"service\":\"qv serve\",\"views\":[{}],\"endpoints\":[\"GET /healthz\",\"GET /metrics\",\"GET /traces/recent\",\"GET /drift\",\"GET /runs/<id>\",\"GET /log/recent\",\"GET /slo\",\"GET /store\",\"GET /stats/<view>\",\"POST /run/<view>\"]}}",
        views.join(",")
    )
}

/// `GET /stats/<view>`: the decayed per-view observed-statistics profile
/// (the same document `--stats-out` writes and `lower_with_profile`
/// reads). 404 distinguishes an unpublished view from a published view
/// that has not executed yet.
fn view_stats(state: &ServeState, view: &str) -> Response {
    if !state.views.contains_key(view) {
        return Response::error(
            404,
            &format!("unknown view {view:?}; published: {}", state.view_names().join(", ")),
        );
    }
    match state.engine.stats_profile(view) {
        Some(profile) => Response::json(200, profile.to_json()),
        None => Response::error(404, &format!("view {view:?} has no recorded runs yet")),
    }
}

/// `GET /store`: the storage inventory — which backend answers each
/// repository and how much it holds. The restart-survival CI job diffs
/// this across a SIGTERM to prove annotations persisted.
fn store_json(state: &ServeState) -> String {
    let catalog = state.engine.catalog();
    let root = match catalog.store_root() {
        Some(path) => format!("\"{}\"", escape(&path.display().to_string())),
        None => "null".to_string(),
    };
    let repos: Vec<String> = catalog
        .names()
        .iter()
        .filter_map(|name| {
            let repo = catalog.get(name)?;
            let status = repo.storage_status();
            let opt = |v: Option<u64>| v.map_or("null".to_string(), |v| v.to_string());
            Some(format!(
                "{{\"name\":\"{}\",\"persistent\":{},\"backend\":\"{}\",\"triples\":{},\"terms\":{},\
                 \"journal_records\":{},\"base_triples\":{},\"dict_bytes\":{},\"compactions\":{},\
                 \"last_compaction_us\":{},\"last_compaction_folded\":{}}}",
                escape(name),
                repo.is_persistent(),
                status.backend,
                status.triples,
                status.terms,
                status.journal_records,
                status.base_triples,
                status.dict_bytes,
                status.compactions,
                opt(status.last_compaction_us),
                opt(status.last_compaction_folded),
            ))
        })
        .collect();
    format!("{{\"store_root\":{root},\"repositories\":[{}]}}", repos.join(","))
}

/// `POST /run/<view>`: parse the TSV body, mint a [`RunId`], enact the
/// view under it, summarise the resulting groups. Rejections (for filter
/// actions) are derived the same way the engine's retention metadata is:
/// items in minus items out. The run id is echoed on every response that
/// reached the engine — including engine errors, whose traces are
/// retained and correlatable too.
fn run_view(state: &ServeState, view: &str, body: &str) -> Response {
    let Some(spec) = state.views.get(view) else {
        return Response::error(
            404,
            &format!("unknown view {view:?}; published: {}", state.view_names().join(", ")),
        );
    };
    let dataset = match tsv::read_dataset(body) {
        Ok(d) => d,
        Err(e) => return Response::error(400, &e),
    };
    let run = RunId::mint();
    let outcome = match state.engine.execute_view_run(spec, &dataset, run) {
        Ok(o) => o,
        Err(e) => {
            let mut response = Response::error(400, &e.to_string());
            response.run_id = Some(run);
            return response;
        }
    };
    // Durability barrier before acknowledging: disk-backed repositories
    // group-commit their journal here, so a crash right after this
    // response cannot lose the run's annotations.
    if let Err(e) = state.engine.flush_stores() {
        let mut response =
            Response::error(500, &format!("run executed but the store flush failed: {e}"));
        response.run_id = Some(run);
        return response;
    }
    let mut rejected = 0usize;
    for action in &spec.actions {
        if matches!(action.kind, ActionKind::Filter { .. }) {
            if let Some(group) = outcome.groups.iter().find(|g| g.name == action.name) {
                rejected += dataset.len().saturating_sub(group.dataset.len());
            }
        }
    }
    let groups: Vec<String> = outcome
        .groups
        .iter()
        .map(|g| {
            let items: Vec<String> = g
                .dataset
                .items()
                .iter()
                .map(|i| format!("\"{}\"", escape(&i.to_string())))
                .collect();
            format!(
                "{{\"name\":\"{}\",\"count\":{},\"items\":[{}]}}",
                escape(&g.name),
                g.dataset.len(),
                items.join(",")
            )
        })
        .collect();
    let mut response = Response::json(
        200,
        format!(
            "{{\"view\":\"{}\",\"run_id\":\"{run}\",\"input\":{},\"rejected\":{},\"groups\":[{}]}}",
            escape(view),
            dataset.len(),
            rejected,
            groups.join(",")
        ),
    );
    response.run_id = Some(run);
    response
}

/// Upper bounds on what we will buffer from one request.
const MAX_HEAD_BYTES: usize = 64 * 1024;
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// One parsed request plus the connection disposition it asked for.
struct Request {
    method: String,
    target: String,
    body: String,
    /// Client asked to close (or spoke HTTP/1.0 without keep-alive).
    close: bool,
}

/// Why reading a request off the connection failed, mapped to the HTTP
/// status the connection layer answers with before closing.
enum ReadError {
    /// Unparseable framing (bad request line, malformed or conflicting
    /// `Content-Length`, connection torn down mid-request) → 400.
    Malformed(String),
    /// The per-read socket timeout fired *mid-request* (bytes were
    /// already read) → 408; slow-loris, not malformed.
    Timeout,
    /// Head or declared body over the buffer bounds → 431 / 413.
    TooLarge(u16, &'static str),
    /// Framing we deliberately don't speak (chunked bodies) → 501.
    Unsupported(&'static str),
    /// The socket died (reset, broken pipe): nothing to answer.
    Io(String),
}

/// A connection with its carry-over read buffer: with keep-alive (and
/// pipelining) bytes past the current request's body belong to the next
/// request, so they stay buffered across [`Conn::read_request`] calls.
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn { stream, buf: Vec::with_capacity(1024) }
    }

    /// Reads one request. `Ok(None)` means the peer closed (or sat idle
    /// past the read timeout) *between* requests — a clean keep-alive
    /// close, not an error.
    fn read_request(&mut self) -> Result<Option<Request>, ReadError> {
        let mut chunk = [0u8; 4096];
        let head_end = loop {
            if let Some(pos) = find_head_end(&self.buf) {
                break pos;
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return Err(ReadError::TooLarge(431, "request head too large"));
            }
            match self.stream.read(&mut chunk) {
                Ok(0) if self.buf.is_empty() => return Ok(None),
                Ok(0) => return Err(ReadError::Malformed("connection closed mid-request".into())),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if is_timeout(&e) && self.buf.is_empty() => return Ok(None),
                Err(e) if is_timeout(&e) => return Err(ReadError::Timeout),
                Err(e) => return Err(ReadError::Io(e.to_string())),
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or_default();
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or_default().to_string();
        let target = parts.next().unwrap_or_default().to_string();
        let version = parts.next().unwrap_or("HTTP/1.1");
        if method.is_empty() || !target.starts_with('/') {
            return Err(ReadError::Malformed(format!("malformed request line {request_line:?}")));
        }

        let mut content_length: Option<usize> = None;
        let mut close = version.eq_ignore_ascii_case("HTTP/1.0");
        for line in lines {
            let Some((key, value)) = line.split_once(':') else { continue };
            let key = key.trim();
            let value = value.trim();
            if key.eq_ignore_ascii_case("content-length") {
                // duplicate headers and folded `a, b` lists are accepted
                // only when every value agrees; anything non-numeric is a
                // hard 400 — silently reading 0 would drop the body
                for part in value.split(',') {
                    let part = part.trim();
                    if part.is_empty() || !part.bytes().all(|b| b.is_ascii_digit()) {
                        return Err(ReadError::Malformed(format!(
                            "malformed Content-Length {part:?}"
                        )));
                    }
                    let parsed: usize = part
                        .parse()
                        .map_err(|_| ReadError::TooLarge(413, "Content-Length overflows usize"))?;
                    match content_length {
                        Some(previous) if previous != parsed => {
                            return Err(ReadError::Malformed(format!(
                                "conflicting Content-Length values {previous} and {parsed}"
                            )));
                        }
                        _ => content_length = Some(parsed),
                    }
                }
            } else if key.eq_ignore_ascii_case("transfer-encoding") {
                return Err(ReadError::Unsupported(
                    "chunked transfer encoding is not supported; send Content-Length",
                ));
            } else if key.eq_ignore_ascii_case("connection") {
                if value.eq_ignore_ascii_case("close") {
                    close = true;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    close = false;
                }
            }
        }
        let content_length = content_length.unwrap_or(0);
        if content_length > MAX_BODY_BYTES {
            return Err(ReadError::TooLarge(413, "body too large"));
        }

        self.buf.drain(..head_end + 4);
        while self.buf.len() < content_length {
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(ReadError::Malformed("connection closed mid-body".into())),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if is_timeout(&e) => return Err(ReadError::Timeout),
                Err(e) => return Err(ReadError::Io(e.to_string())),
            }
        }
        let rest = self.buf.split_off(content_length);
        let body = String::from_utf8_lossy(&self.buf).into_owned();
        self.buf = rest;
        Ok(Some(Request { method, target, body, close }))
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(stream: &mut TcpStream, response: &Response, close: bool) -> std::io::Result<()> {
    let retry_after = match response.retry_after {
        Some(secs) => format!("Retry-After: {secs}\r\n"),
        None => String::new(),
    };
    let run_id = match response.run_id {
        Some(run) => format!("X-QV-Run-Id: {run}\r\n"),
        None => String::new(),
    };
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{}{}Connection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        retry_after,
        run_id,
        if close { "close" } else { "keep-alive" },
    )?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// `QV_SERVE_LOG=debug` turns on per-connection stderr diagnostics
/// (peer addresses of failed writes); off by default so the serving hot
/// path never formats strings.
fn debug_log_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| {
        std::env::var("QV_SERVE_LOG").map(|v| v.eq_ignore_ascii_case("debug")).unwrap_or(false)
    })
}

/// Sends `response` and accounts for the outcome: broken-pipe writes are
/// counted (`serve.write_error`) and logged at debug level with the peer
/// address instead of vanishing. Returns whether the connection is still
/// usable.
fn send_response(stream: &mut TcpStream, response: &Response, close: bool) -> bool {
    match write_response(stream, response, close) {
        Ok(()) => !close,
        Err(e) => {
            qurator_telemetry::metrics().counter("serve.write_error").inc();
            if debug_log_enabled() {
                let peer = stream
                    .peer_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| "<unknown>".into());
                eprintln!("qv serve: write to {peer} failed: {e}");
            }
            false
        }
    }
}

/// Counts a request that failed before routing (parse error, timeout) in
/// the same `serve.requests` family routed requests use, under the
/// pseudo-route `-`.
fn record_early(status: u16) {
    qurator_telemetry::metrics()
        .counter_with("serve.requests", &[("route", "-"), ("status", &status.to_string())])
        .inc();
}

/// Serves one connection: keep-alive request loop with per-read
/// timeouts, bounded request count, and error mapping.
fn handle_connection(
    state: &ServeState,
    config: &ServeConfig,
    stream: TcpStream,
    shutdown: &AtomicBool,
) {
    // accepted sockets may inherit the listener's non-blocking mode
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let peer = stream.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "-".into());
    let mut conn = Conn::new(stream);
    for served in 1..=config.keep_alive_max {
        if shutdown.load(Ordering::Relaxed) {
            // draining: no new requests on this connection
            return;
        }
        match conn.read_request() {
            Ok(None) => return, // idle or closed between requests
            Ok(Some(request)) => {
                let started = Instant::now();
                let response = route(state, &request.method, &request.target, &request.body);
                let path = request.target.split('?').next().unwrap_or(&request.target);
                state.access_log.record(AccessRecord {
                    seq: 0,
                    ts_ms: now_ms(),
                    peer: peer.clone(),
                    route: route_label(path).to_string(),
                    status: response.status,
                    bytes: response.body.len() as u64,
                    latency_us: started.elapsed().as_micros() as u64,
                    run_id: response.run_id,
                    shed: false,
                    timeout: false,
                });
                let close = request.close
                    || served == config.keep_alive_max
                    || shutdown.load(Ordering::Relaxed);
                if !send_response(&mut conn.stream, &response, close) {
                    return;
                }
            }
            Err(error) => {
                let response = match error {
                    ReadError::Malformed(message) => Response::error(400, &message),
                    ReadError::Timeout => {
                        qurator_telemetry::metrics().counter("serve.read.timeout").inc();
                        Response::error(408, "timed out reading the request")
                    }
                    ReadError::TooLarge(status, message) => Response::error(status, message),
                    ReadError::Unsupported(message) => Response::error(501, message),
                    ReadError::Io(message) => {
                        qurator_telemetry::metrics().counter("serve.read.error").inc();
                        if debug_log_enabled() {
                            eprintln!("qv serve: read failed: {message}");
                        }
                        return; // nothing to answer on a dead socket
                    }
                };
                record_early(response.status);
                state.access_log.record(AccessRecord {
                    seq: 0,
                    ts_ms: now_ms(),
                    peer: peer.clone(),
                    route: "-".to_string(),
                    status: response.status,
                    bytes: response.body.len() as u64,
                    latency_us: 0,
                    run_id: None,
                    shed: false,
                    timeout: response.status == 408,
                });
                send_response(&mut conn.stream, &response, true);
                return;
            }
        }
    }
}

/// The bounded hand-off between the accept thread and the workers.
/// `try_push` refuses (for shedding) instead of blocking; `pop` blocks
/// until a connection or shutdown-and-drained.
struct ConnQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
    depth: Arc<qurator_telemetry::Gauge>,
}

struct QueueInner {
    connections: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        ConnQueue {
            inner: Mutex::new(QueueInner { connections: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
            depth: qurator_telemetry::metrics().gauge("serve.queue.depth"),
        }
    }

    /// Queues an accepted connection, or hands it back when full.
    fn try_push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed || inner.connections.len() >= self.capacity {
            return Err(stream);
        }
        inner.connections.push_back(stream);
        self.depth.set(inner.connections.len() as i64);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next connection; `None` once closed and drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(stream) = inner.connections.pop_front() {
                self.depth.set(inner.connections.len() as i64);
                return Some(stream);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap();
        }
    }

    /// Stops the queue: workers drain what is already queued, then exit.
    fn close(&self) {
        self.inner.lock().unwrap().closed = true;
        self.ready.notify_all();
    }
}

/// The HTTP front-end. Binding to port 0 picks a free port (tests and
/// the CI smoke job read the real address back via
/// [`Server::local_addr`]).
pub struct Server {
    listener: TcpListener,
    state: ServeState,
    config: ServeConfig,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, port 0 for ephemeral) with
    /// the given pool configuration.
    pub fn bind(addr: &str, state: ServeState, config: ServeConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        Ok(Server { listener, state, config })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener.local_addr().map_err(|e| e.to_string())
    }

    /// The effective pool configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Serves until `shutdown` flips true (the signal handler's job),
    /// then drains: accepting stops, queued and in-flight requests
    /// finish, the workers join, and `run` returns cleanly.
    pub fn run(self, shutdown: &AtomicBool) -> Result<(), String> {
        let Server { listener, state, config } = self;
        listener.set_nonblocking(true).map_err(|e| e.to_string())?;
        let queue = ConnQueue::new(config.queue_capacity);
        std::thread::scope(|scope| {
            for _ in 0..config.workers.max(1) {
                let (state, config, queue) = (&state, &config, &queue);
                scope.spawn(move || {
                    while let Some(stream) = queue.pop() {
                        handle_connection(state, config, stream, shutdown);
                    }
                });
            }
            let result = accept_loop(&listener, &queue, &config, &state, shutdown);
            queue.close();
            result
        })
    }
}

/// Accepts until shutdown; full-queue connections are shed with 503 +
/// `Retry-After` right here, so the accept thread never blocks on a
/// client and admission stays bounded.
fn accept_loop(
    listener: &TcpListener,
    queue: &ConnQueue,
    config: &ServeConfig,
    state: &ServeState,
    shutdown: &AtomicBool,
) -> Result<(), String> {
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                if let Err(mut refused) = queue.try_push(stream) {
                    qurator_telemetry::metrics().counter("serve.shed.count").inc();
                    record_early(503);
                    let response = Response::shed(config.retry_after_secs);
                    state.access_log.record(AccessRecord {
                        seq: 0,
                        ts_ms: now_ms(),
                        peer: peer.to_string(),
                        route: "-".to_string(),
                        status: response.status,
                        bytes: response.body.len() as u64,
                        latency_us: 0,
                        run_id: None,
                        shed: true,
                        timeout: false,
                    });
                    let _ = refused.set_nonblocking(false);
                    let _ = refused.set_write_timeout(Some(Duration::from_secs(1)));
                    send_response(&mut refused, &response, true);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(format!("accept: {e}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_telemetry::json;

    const VIEW: &str = r#"
<QualityView name="serve-test">
  <Annotator serviceName="imprint" serviceType="q:ImprintOutputAnnotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:HitRatio"/>
      <var evidence="q:MassCoverage"/>
      <var evidence="q:PeptidesCount"/>
    </variables>
  </Annotator>
  <QualityAssertion serviceName="score" serviceType="q:UniversalPIScore2"
                    tagName="HR_MC" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="coverage" evidence="q:MassCoverage"/>
      <var variableName="hitratio" evidence="q:HitRatio"/>
      <var variableName="peptidescount" evidence="q:PeptidesCount"/>
    </variables>
  </QualityAssertion>
  <action name="keep">
    <filter><condition>HR_MC &gt; 0</condition></filter>
  </action>
</QualityView>"#;

    const DATA: &str = "id\thitRatio\tmassCoverage\tpeptidesCount\n\
urn:lsid:t:h:good\t0.9\t40\t12\n\
urn:lsid:t:h:bad\t0.1\t3\t1\n";

    fn state() -> ServeState {
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        let spec = qurator::xmlio::parse_quality_view(VIEW).unwrap();
        ServeState::new(engine, vec![spec], &TelemetryConfig::default(), ServeOptions::default())
            .unwrap()
    }

    /// A server on an ephemeral port running on a background thread.
    fn spawn(config: ServeConfig) -> (SocketAddr, Arc<AtomicBool>, std::thread::JoinHandle<()>) {
        let server = Server::bind("127.0.0.1:0", state(), config).unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let thread = std::thread::spawn(move || server.run(&flag).unwrap());
        (addr, shutdown, thread)
    }

    /// One-shot exchange: write `payload`, read to EOF.
    fn request(addr: SocketAddr, payload: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(payload.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    /// Reads exactly one framed response off a keep-alive connection:
    /// `(status, headers, body)`.
    fn read_response(stream: &mut TcpStream) -> (u16, String, String) {
        let mut buf = Vec::new();
        let mut chunk = [0u8; 1024];
        let head_end = loop {
            if let Some(pos) = find_head_end(&buf) {
                break pos;
            }
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "connection closed before a full response head");
            buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8(buf[..head_end].to_vec()).unwrap();
        let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                l.split_once(':').filter(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            })
            .map(|(_, v)| v.trim().parse().unwrap())
            .unwrap();
        let mut body = buf[head_end + 4..].to_vec();
        while body.len() < content_length {
            let n = stream.read(&mut chunk).unwrap();
            assert!(n > 0, "connection closed mid-body");
            body.extend_from_slice(&chunk[..n]);
        }
        body.truncate(content_length);
        (status, head, String::from_utf8(body).unwrap())
    }

    fn get(path: &str, close: bool) -> String {
        format!(
            "GET {path} HTTP/1.1\r\nHost: x\r\n{}\r\n",
            if close { "Connection: close\r\n" } else { "" }
        )
    }

    fn post_run(body: &str, close: bool) -> String {
        format!(
            "POST /run/serve-test HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n{}\r\n{body}",
            body.len(),
            if close { "Connection: close\r\n" } else { "" }
        )
    }

    #[test]
    fn healthz_and_index_respond() {
        let state = state();
        let r = route(&state, "GET", "/healthz", "");
        assert_eq!((r.status, r.body.as_str()), (200, "ok\n"));
        let r = route(&state, "GET", "/", "");
        let value = json::parse(&r.body).unwrap();
        let views = value.get("views").and_then(|v| v.as_array()).unwrap();
        assert_eq!(views[0].as_str(), Some("serve-test"));
    }

    #[test]
    fn unknown_routes_and_wrong_methods_are_rejected() {
        let state = state();
        assert_eq!(route(&state, "GET", "/nope", "").status, 404);
        assert_eq!(route(&state, "POST", "/metrics", "").status, 405);
        assert_eq!(route(&state, "GET", "/run/serve-test", "").status, 405);
        assert_eq!(route(&state, "POST", "/runs/0011223344556677", "").status, 405);
        assert_eq!(route(&state, "POST", "/run/missing", DATA).status, 404);
        assert_eq!(route(&state, "POST", "/run/serve-test", "not a tsv").status, 400);
    }

    #[test]
    fn store_endpoint_reports_backends() {
        let state = state();
        assert_eq!(route(&state, "POST", "/store", "").status, 405);

        // Before any run: no store root, no repositories yet.
        let r = route(&state, "GET", "/store", "");
        assert_eq!(r.status, 200, "{}", r.body);
        let value = json::parse(&r.body).unwrap();
        assert!(value.get("store_root").unwrap().is_null());
        assert_eq!(value.get("repositories").and_then(|v| v.as_array()).unwrap().len(), 0);

        // A run creates the view's cache repository lazily; it shows up
        // as a memory backend.
        assert_eq!(route(&state, "POST", "/run/serve-test", DATA).status, 200);
        let r = route(&state, "GET", "/store", "");
        let value = json::parse(&r.body).unwrap();
        let repos = value.get("repositories").and_then(|v| v.as_array()).unwrap();
        let cache = repos
            .iter()
            .find(|r| r.get("name").and_then(|v| v.as_str()) == Some("cache"))
            .expect("cache repository listed");
        assert_eq!(cache.get("backend").and_then(|v| v.as_str()), Some("memory"));
        assert_eq!(cache.get("persistent").and_then(|v| v.as_bool()), Some(false));
    }

    #[test]
    fn store_endpoint_reports_disk_backend_under_a_store_root() {
        let tmp = qurator_rdf::storage::test_support::TempDir::new("serve-store");
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        engine.set_store_root(tmp.path()).unwrap();
        let view = VIEW
            .replace(
                "repositoryRef=\"cache\" persistent=\"false\"",
                "repositoryRef=\"archive\" persistent=\"true\"",
            )
            .replace("repositoryRef=\"cache\"", "repositoryRef=\"archive\"");
        let spec = qurator::xmlio::parse_quality_view(&view).unwrap();
        let state = ServeState::new(
            engine,
            vec![spec],
            &TelemetryConfig::default(),
            ServeOptions::default(),
        )
        .unwrap();

        // The run's annotations land on disk and are flushed before the
        // 200 is acknowledged.
        assert_eq!(route(&state, "POST", "/run/serve-test", DATA).status, 200);
        let r = route(&state, "GET", "/store", "");
        let value = json::parse(&r.body).unwrap();
        assert_eq!(
            value.get("store_root").and_then(|v| v.as_str()),
            Some(tmp.path().to_str().unwrap())
        );
        let repos = value.get("repositories").and_then(|v| v.as_array()).unwrap();
        let archive = repos
            .iter()
            .find(|r| r.get("name").and_then(|v| v.as_str()) == Some("archive"))
            .expect("archive repository listed");
        assert_eq!(archive.get("backend").and_then(|v| v.as_str()), Some("disk"));
        assert_eq!(archive.get("persistent").and_then(|v| v.as_bool()), Some(true));
        assert!(archive.get("triples").and_then(|v| v.as_f64()).unwrap() > 0.0);
        // storage-layer facts: the run's writes are journaled (flushed,
        // not yet compacted) and the dictionary holds interned terms
        assert!(archive.get("journal_records").and_then(|v| v.as_u64()).unwrap() > 0);
        assert!(archive.get("dict_bytes").and_then(|v| v.as_u64()).unwrap() > 0);
        assert_eq!(archive.get("base_triples").and_then(|v| v.as_u64()), Some(0));
        assert_eq!(archive.get("compactions").and_then(|v| v.as_u64()), Some(0));
        assert!(archive.get("last_compaction_us").unwrap().is_null());
    }

    #[test]
    fn stats_endpoint_serves_the_observed_profile() {
        let state = state();
        assert_eq!(route(&state, "POST", "/stats/serve-test", "").status, 405);
        assert_eq!(route(&state, "GET", "/stats/missing", "").status, 404);
        // published but never executed: a distinct 404
        let r = route(&state, "GET", "/stats/serve-test", "");
        assert_eq!(r.status, 404, "{}", r.body);
        assert!(r.body.contains("no recorded runs"), "{}", r.body);

        for _ in 0..2 {
            assert_eq!(route(&state, "POST", "/run/serve-test", DATA).status, 200);
        }
        let r = route(&state, "GET", "/stats/serve-test", "");
        assert_eq!(r.status, 200, "{}", r.body);
        let nodes = qurator_telemetry::schema::validate_stats_profile_json(&r.body).unwrap();
        assert!(nodes > 0, "profiled nodes expected: {}", r.body);
        let value = json::parse(&r.body).unwrap();
        assert_eq!(value.get("view").and_then(|v| v.as_str()), Some("serve-test"));
        assert_eq!(value.get("runs").and_then(|v| v.as_u64()), Some(2));
    }

    #[test]
    fn run_bundle_joins_the_observed_stats() {
        let state = state();
        let r = route(&state, "POST", "/run/serve-test", DATA);
        assert_eq!(r.status, 200, "{}", r.body);
        let run = r.run_id.unwrap();
        let bundle = route(&state, "GET", &format!("/runs/{run}"), "");
        let value = json::parse(&bundle.body).unwrap();
        let stats = value.get("stats").expect("stats joined into the bundle");
        assert_eq!(stats.get("run_id").and_then(|v| v.as_str()), Some(run.to_string().as_str()));
        assert_eq!(stats.get("items").and_then(|v| v.as_u64()), Some(2));
        let nodes = stats.get("nodes").and_then(|v| v.as_object()).unwrap();
        assert!(!nodes.is_empty(), "{}", bundle.body);
    }

    /// Satellite regression: a scanner probing arbitrary paths must not
    /// mint one metric series per probe — every unknown path collapses
    /// into the single `route="other"` label.
    #[test]
    fn unknown_paths_share_one_metric_label() {
        assert_eq!(route_label("/admin/../etc/passwd"), "other");
        assert_eq!(route_label("/nope"), "other");
        assert_eq!(route_label("/run/any-view"), "/run");
        assert_eq!(route_label("/runs/0011223344556677"), "/runs");
        assert_eq!(route_label("/metrics"), "/metrics");

        let state = state();
        for path in ["/scan-a", "/scan-b", "/scan-c"] {
            assert_eq!(route(&state, "GET", path, "").status, 404);
        }
        let rendered = qurator_telemetry::metrics().render_prometheus();
        assert!(rendered.contains("serve.requests{route=\"other\",status=\"404\"}"), "{rendered}");
        for path in ["/scan-a", "/scan-b", "/scan-c"] {
            assert!(!rendered.contains(path), "probe path {path} leaked into metrics");
        }
    }

    /// Satellite regression: `?limit=` that does not parse is a 400 with
    /// a JSON error body, not a silent fall-back to the default.
    #[test]
    fn non_numeric_limit_is_a_400_json_error() {
        let state = state();
        for target in ["/traces/recent?limit=abc", "/log/recent?limit=-3"] {
            let r = route(&state, "GET", target, "");
            assert_eq!(r.status, 400, "{target}: {}", r.body);
            assert_eq!(r.content_type, "application/json");
            let value = json::parse(&r.body).unwrap();
            assert!(
                value.get("error").and_then(|v| v.as_str()).unwrap().contains("limit"),
                "{}",
                r.body
            );
        }
        // a well-formed limit still works
        assert_eq!(route(&state, "GET", "/traces/recent?limit=5", "").status, 200);
    }

    #[test]
    fn run_responses_carry_a_run_id_resolvable_at_runs() {
        let state = state();
        let r = route(&state, "POST", "/run/serve-test", DATA);
        assert_eq!(r.status, 200, "{}", r.body);
        let minted = r.run_id.expect("run id minted for a routed run");
        let value = json::parse(&r.body).unwrap();
        assert_eq!(value.get("run_id").and_then(|v| v.as_str()), Some(minted.to_string().as_str()));

        // the bundle endpoint reassembles the run: trace + ledger slice
        let bundle = route(&state, "GET", &format!("/runs/{minted}"), "");
        assert_eq!(bundle.status, 200, "{}", bundle.body);
        let value = json::parse(&bundle.body).unwrap();
        assert_eq!(value.get("run_id").and_then(|v| v.as_str()), Some(minted.to_string().as_str()));
        let ledger = value.get("ledger").and_then(|v| v.as_array()).unwrap();
        assert_eq!(ledger.len(), 2, "one decision trace per submitted item");
        assert!(ledger.iter().all(|t| {
            t.get("run_id").and_then(|v| v.as_str()) == Some(minted.to_string().as_str())
        }));
        // the run rejected an item, so its trace was retained and profiled
        let trace = value.get("trace").unwrap();
        let spans = trace.get("spans").and_then(|v| v.as_array()).unwrap();
        assert!(!spans.is_empty());
        assert!(!value.get("profile").and_then(|v| v.as_array()).unwrap().is_empty());

        // malformed and unknown ids are told apart
        assert_eq!(route(&state, "GET", "/runs/not-hex", "").status, 400);
        assert_eq!(route(&state, "GET", "/runs/00000000deadbeef", "").status, 404);
    }

    #[test]
    fn slo_endpoint_reports_budgets_for_served_routes() {
        let state = state();
        assert_eq!(route(&state, "POST", "/run/serve-test", DATA).status, 200);
        let r = route(&state, "GET", "/slo", "");
        assert_eq!(r.status, 200);
        let value = json::parse(&r.body).unwrap();
        assert!(value.get("availability").and_then(|v| v.as_f64()).unwrap() > 0.9);
        let routes = value.get("routes").and_then(|v| v.as_array()).unwrap();
        assert!(
            routes.iter().any(|r| r.get("route").and_then(|v| v.as_str()) == Some("/run")),
            "{}",
            r.body
        );
    }

    #[test]
    fn run_endpoint_enacts_and_the_trace_lands_in_the_ring() {
        let state = state();
        let r = route(&state, "POST", "/run/serve-test", DATA);
        assert_eq!(r.status, 200, "{}", r.body);
        let value = json::parse(&r.body).unwrap();
        assert_eq!(value.get("input").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(value.get("rejected").and_then(|v| v.as_u64()), Some(1));
        let groups = value.get("groups").and_then(|v| v.as_array()).unwrap();
        assert_eq!(groups[0].get("name").and_then(|v| v.as_str()), Some("keep"));
        assert_eq!(groups[0].get("count").and_then(|v| v.as_u64()), Some(1));

        // the run rejected an item, so retention must have kept its trace
        let r = route(&state, "GET", "/traces/recent", "");
        assert_eq!(r.status, 200);
        assert!(qurator_telemetry::schema::validate_trace_jsonl(&r.body).unwrap() > 0);
        assert!(r.body.contains("\"reason\":\"rejected\""), "{}", r.body);

        // metrics include the serve-side series this request just recorded
        let r = route(&state, "GET", "/metrics", "");
        assert!(r.body.contains("serve.requests{route=\"/run\",status=\"200\"}"), "{}", r.body);
        assert!(qurator_telemetry::schema::validate_metrics_text(&r.body).unwrap() > 0);

        // drift endpoint is live (enabled by enable_observability)
        let r = route(&state, "GET", "/drift", "");
        let value = json::parse(&r.body).unwrap();
        assert_eq!(value.get("enabled").and_then(|v| v.as_bool()), Some(true));
    }

    #[test]
    fn traces_recent_honours_the_limit_parameter() {
        let state = state();
        for _ in 0..3 {
            assert_eq!(route(&state, "POST", "/run/serve-test", DATA).status, 200);
        }
        let all = route(&state, "GET", "/traces/recent", "");
        let one = route(&state, "GET", "/traces/recent?limit=1", "");
        let headers =
            |body: &str| body.lines().filter(|l| l.contains("\"type\":\"trace\"")).count();
        assert!(headers(&all.body) >= 3, "{}", all.body);
        assert_eq!(headers(&one.body), 1);
    }

    #[test]
    fn server_speaks_http_over_a_real_socket() {
        let (addr, shutdown, thread) = spawn(ServeConfig::default());

        let health = request(addr, &get("/healthz", true));
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        let run = request(addr, &post_run(DATA, true));
        assert!(run.starts_with("HTTP/1.1 200 OK\r\n"), "{run}");
        assert!(run.contains("\"rejected\":1"), "{run}");

        let bad = request(addr, "BROKEN\r\n\r\n");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");

        shutdown.store(true, Ordering::Relaxed);
        thread.join().unwrap();
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_socket() {
        let (addr, shutdown, thread) = spawn(ServeConfig::default());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(get("/healthz", false).as_bytes()).unwrap();
        let (status, head, body) = read_response(&mut stream);
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        assert!(head.contains("Connection: keep-alive"), "{head}");

        // same socket, second request — including a POST with a body
        stream.write_all(post_run(DATA, false).as_bytes()).unwrap();
        let (status, _, body) = read_response(&mut stream);
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("\"rejected\":1"), "{body}");

        // Connection: close is honoured: response, then EOF
        stream.write_all(get("/healthz", true).as_bytes()).unwrap();
        let (status, head, _) = read_response(&mut stream);
        assert_eq!(status, 200);
        assert!(head.contains("Connection: close"), "{head}");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "expected EOF after Connection: close");

        shutdown.store(true, Ordering::Relaxed);
        thread.join().unwrap();
    }

    #[test]
    fn run_id_header_and_access_log_flow_over_a_real_socket() {
        let (addr, shutdown, thread) = spawn(ServeConfig::default());

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(post_run(DATA, false).as_bytes()).unwrap();
        let (status, head, body) = read_response(&mut stream);
        assert_eq!(status, 200, "{body}");
        let echoed = head
            .lines()
            .find_map(|l| l.strip_prefix("X-QV-Run-Id: "))
            .expect("run id header on POST /run responses")
            .trim()
            .to_string();
        assert!(qurator_telemetry::RunId::parse(&echoed).is_some(), "{echoed}");
        assert!(body.contains(&format!("\"run_id\":\"{echoed}\"")), "{body}");

        // the access log saw the request, tagged with the same run id,
        // and the ring endpoint serves schema-valid JSONL
        stream.write_all(get("/log/recent", true).as_bytes()).unwrap();
        let (status, _, log) = read_response(&mut stream);
        assert_eq!(status, 200);
        assert!(qurator_telemetry::schema::validate_access_log_jsonl(&log).unwrap() >= 1, "{log}");
        let run_line = log
            .lines()
            .find(|l| l.contains(&format!("\"run_id\":\"{echoed}\"")))
            .expect("access-log line for the run");
        assert!(run_line.contains("\"route\":\"/run\""), "{run_line}");
        assert!(run_line.contains("\"status\":200"), "{run_line}");

        shutdown.store(true, Ordering::Relaxed);
        thread.join().unwrap();
    }

    #[test]
    fn keep_alive_request_cap_closes_the_connection() {
        let config = ServeConfig { keep_alive_max: 2, ..ServeConfig::default() };
        let (addr, shutdown, thread) = spawn(config);

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(get("/healthz", false).as_bytes()).unwrap();
        let (_, head, _) = read_response(&mut stream);
        assert!(head.contains("Connection: keep-alive"), "{head}");
        stream.write_all(get("/healthz", false).as_bytes()).unwrap();
        let (_, head, _) = read_response(&mut stream);
        // the cap turns the final response into a close
        assert!(head.contains("Connection: close"), "{head}");
        let mut rest = Vec::new();
        stream.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());

        shutdown.store(true, Ordering::Relaxed);
        thread.join().unwrap();
    }

    #[test]
    fn malformed_and_conflicting_content_length_get_400() {
        let (addr, shutdown, thread) = spawn(ServeConfig::default());

        // unparseable: previously read as 0, silently dropping the body
        let r = request(addr, "POST /run/serve-test HTTP/1.1\r\nContent-Length: abc\r\n\r\n");
        assert!(r.starts_with("HTTP/1.1 400"), "{r}");
        assert!(r.contains("malformed Content-Length"), "{r}");

        // two disagreeing values: request smuggling shape, hard reject
        let r = request(
            addr,
            "POST /run/serve-test HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 7\r\n\r\nabcdefg",
        );
        assert!(r.starts_with("HTTP/1.1 400"), "{r}");
        assert!(r.contains("conflicting Content-Length"), "{r}");

        // duplicates that agree are fine
        let body = DATA;
        let r = request(
            addr,
            &format!(
                "POST /run/serve-test HTTP/1.1\r\nContent-Length: {0}\r\nContent-Length: {0}\r\nConnection: close\r\n\r\n{1}",
                body.len(),
                body
            ),
        );
        assert!(r.starts_with("HTTP/1.1 200"), "{r}");

        // chunked framing is refused, not misread
        let r = request(
            addr,
            "POST /run/serve-test HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
        );
        assert!(r.starts_with("HTTP/1.1 501"), "{r}");

        shutdown.store(true, Ordering::Relaxed);
        thread.join().unwrap();
    }

    #[test]
    fn stalled_mid_request_client_gets_408() {
        let config =
            ServeConfig { read_timeout: Duration::from_millis(200), ..ServeConfig::default() };
        let (addr, shutdown, thread) = spawn(config);

        let mut stream = TcpStream::connect(addr).unwrap();
        // half a request line, then silence: a slow-loris shape
        stream.write_all(b"POST /run/serve-t").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 408"), "{out}");

        shutdown.store(true, Ordering::Relaxed);
        thread.join().unwrap();
    }

    #[test]
    fn idle_keep_alive_connections_are_closed_quietly() {
        let config =
            ServeConfig { read_timeout: Duration::from_millis(200), ..ServeConfig::default() };
        let (addr, shutdown, thread) = spawn(config);

        // connect and send nothing: idle, not slow-loris — EOF, no 408
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert_eq!(out, "");

        shutdown.store(true, Ordering::Relaxed);
        thread.join().unwrap();
    }

    #[test]
    fn full_queue_sheds_with_503_and_retry_after() {
        let config = ServeConfig {
            workers: 1,
            queue_capacity: 1,
            read_timeout: Duration::from_secs(2),
            ..ServeConfig::default()
        };
        let (addr, shutdown, thread) = spawn(config);

        // occupy the single worker with a stalled request …
        let mut stalled = TcpStream::connect(addr).unwrap();
        stalled.write_all(b"POST /run/serve-t").unwrap();
        std::thread::sleep(Duration::from_millis(150));
        // … fill the queue with a second pending connection …
        let mut queued = TcpStream::connect(addr).unwrap();
        queued.write_all(b"GET /h").unwrap();
        std::thread::sleep(Duration::from_millis(150));
        // … and the third connection must be shed by the accept thread
        let mut shed = TcpStream::connect(addr).unwrap();
        let (status, head, body) = read_response(&mut shed);
        assert_eq!(status, 503, "{body}");
        assert!(head.contains("Retry-After: 1"), "{head}");

        shutdown.store(true, Ordering::Relaxed);
        thread.join().unwrap();
    }

    /// The tentpole regression test: one stalled client must not delay
    /// healthy clients, which previously queued behind it for the full
    /// read timeout.
    #[test]
    fn stalled_client_does_not_stall_healthy_clients() {
        let config = ServeConfig {
            workers: 4,
            read_timeout: Duration::from_secs(3),
            ..ServeConfig::default()
        };
        let stall_bound = Duration::from_secs(1); // << read_timeout
        let (addr, shutdown, thread) = spawn(config);

        // the stalled client connects first and holds its worker
        let mut stalled = TcpStream::connect(addr).unwrap();
        stalled
            .write_all(b"POST /run/serve-test HTTP/1.1\r\nContent-Length: 999\r\n\r\npartial")
            .unwrap();
        std::thread::sleep(Duration::from_millis(100));

        let started = Instant::now();
        let healthy: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let r = request(addr, &post_run(DATA, true));
                    assert!(r.starts_with("HTTP/1.1 200"), "{r}");
                })
            })
            .collect();
        for h in healthy {
            h.join().unwrap();
        }
        let elapsed = started.elapsed();
        assert!(
            elapsed < stall_bound,
            "healthy requests took {elapsed:?}, stalled behind the slow client"
        );

        // the stalled client is eventually told 408, not silently dropped
        let mut out = String::new();
        stalled.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 408"), "{out}");

        shutdown.store(true, Ordering::Relaxed);
        thread.join().unwrap();
    }
}
