//! `qv serve` — a long-lived engine behind a minimal HTTP endpoint.
//!
//! The paper's deployment story (§7) is a *service*: quality views are
//! published once and exercised continuously as new submissions arrive.
//! This module gives the CLI that shape without pulling in an HTTP
//! framework: a hand-rolled `std::net::TcpListener` loop speaking just
//! enough HTTP/1.1 for `curl` and the CI smoke job.
//!
//! Routes:
//!
//! | method | path             | body                                     |
//! |--------|------------------|------------------------------------------|
//! | GET    | `/`              | JSON index: views + endpoints            |
//! | GET    | `/healthz`       | `ok`                                     |
//! | GET    | `/metrics`       | Prometheus text exposition               |
//! | GET    | `/traces/recent` | JSON-lines from the trace ring buffer    |
//! | GET    | `/drift`         | drift-monitor state + events, JSON       |
//! | POST   | `/run/<view>`    | TSV submission in, group summary out     |
//!
//! The request handler is a pure function ([`route`]) over a
//! [`ServeState`], so the routing table is unit-testable without sockets;
//! [`Server::run`] adds the accept loop (non-blocking, polling a shutdown
//! flag so SIGTERM produces a clean exit) and the HTTP framing.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use qurator::prelude::*;
use qurator::spec::ActionKind;
use qurator_telemetry::json::escape;
use qurator_telemetry::{TelemetryConfig, TraceRetainer};

use crate::tsv;

/// Everything a request handler needs: the engine, its trace retainer
/// and the views published at startup.
pub struct ServeState {
    engine: QualityEngine,
    retainer: Arc<TraceRetainer>,
    views: BTreeMap<String, QualityViewSpec>,
}

impl ServeState {
    /// Publishes `views` on `engine` and switches the engine to
    /// continuous observability (bounded trace retention + drift
    /// monitoring) per `config`.
    pub fn new(
        engine: QualityEngine,
        views: Vec<QualityViewSpec>,
        config: &TelemetryConfig,
    ) -> Self {
        let retainer = engine.enable_observability(config);
        let views = views.into_iter().map(|v| (v.name.clone(), v)).collect();
        ServeState { engine, retainer, views }
    }

    /// Names of the published views, sorted.
    pub fn view_names(&self) -> Vec<&str> {
        self.views.keys().map(String::as_str).collect()
    }
}

/// A finished HTTP response, pre-framing.
pub struct Response {
    pub status: u16,
    pub content_type: &'static str,
    pub body: String,
}

impl Response {
    fn text(status: u16, body: impl Into<String>) -> Self {
        Response { status, content_type: "text/plain; charset=utf-8", body: body.into() }
    }

    fn json(status: u16, body: impl Into<String>) -> Self {
        Response { status, content_type: "application/json", body: body.into() }
    }

    fn error(status: u16, message: &str) -> Self {
        Response::json(status, format!("{{\"error\":\"{}\"}}", escape(message)))
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        _ => "Internal Server Error",
    }
}

/// Dispatches one request. Also records the `serve.requests{route,status}`
/// counter and the `serve.request.latency{route}` histogram (microseconds)
/// so the endpoint observes itself through the same registry it exports.
pub fn route(state: &ServeState, method: &str, target: &str, body: &str) -> Response {
    let started = Instant::now();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let response = route_inner(state, method, path, query, body);
    let route_label = if path.starts_with("/run/") { "/run" } else { path };
    let metrics = qurator_telemetry::metrics();
    metrics
        .counter_with(
            "serve.requests",
            &[("route", route_label), ("status", &response.status.to_string())],
        )
        .inc();
    metrics
        .histogram_with("serve.request.latency", &[("route", route_label)])
        .record(started.elapsed().as_micros() as u64);
    response
}

fn route_inner(
    state: &ServeState,
    method: &str,
    path: &str,
    query: Option<&str>,
    body: &str,
) -> Response {
    match (method, path) {
        ("GET", "/") => Response::json(200, index_json(state)),
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/metrics") => {
            Response::text(200, qurator_telemetry::metrics().render_prometheus())
        }
        ("GET", "/traces/recent") => {
            let limit = query
                .and_then(|q| {
                    q.split('&').find_map(|kv| kv.strip_prefix("limit=")?.parse::<usize>().ok())
                })
                .unwrap_or(32);
            Response {
                status: 200,
                content_type: "application/x-ndjson",
                body: state.retainer.recent_jsonl(limit),
            }
        }
        ("GET", "/drift") => Response::json(200, qurator_telemetry::drift::global().to_json()),
        ("POST", run) if run.starts_with("/run/") => run_view(state, &run["/run/".len()..], body),
        (_, "/" | "/healthz" | "/metrics" | "/traces/recent" | "/drift") => {
            Response::error(405, &format!("{method} not allowed here"))
        }
        (_, run) if run.starts_with("/run/") => Response::error(405, "use POST with a TSV body"),
        _ => Response::error(404, &format!("no route for {path}")),
    }
}

fn index_json(state: &ServeState) -> String {
    let views: Vec<String> =
        state.view_names().iter().map(|v| format!("\"{}\"", escape(v))).collect();
    format!(
        "{{\"service\":\"qv serve\",\"views\":[{}],\"endpoints\":[\"GET /healthz\",\"GET /metrics\",\"GET /traces/recent\",\"GET /drift\",\"POST /run/<view>\"]}}",
        views.join(",")
    )
}

/// `POST /run/<view>`: parse the TSV body, enact the view, summarise the
/// resulting groups. Rejections (for filter actions) are derived the same
/// way the engine's retention metadata is: items in minus items out.
fn run_view(state: &ServeState, view: &str, body: &str) -> Response {
    let Some(spec) = state.views.get(view) else {
        return Response::error(
            404,
            &format!("unknown view {view:?}; published: {}", state.view_names().join(", ")),
        );
    };
    let dataset = match tsv::read_dataset(body) {
        Ok(d) => d,
        Err(e) => return Response::error(400, &e),
    };
    let outcome = match state.engine.execute_view(spec, &dataset) {
        Ok(o) => o,
        Err(e) => return Response::error(400, &e.to_string()),
    };
    let mut rejected = 0usize;
    for action in &spec.actions {
        if matches!(action.kind, ActionKind::Filter { .. }) {
            if let Some(group) = outcome.groups.iter().find(|g| g.name == action.name) {
                rejected += dataset.len().saturating_sub(group.dataset.len());
            }
        }
    }
    let groups: Vec<String> = outcome
        .groups
        .iter()
        .map(|g| {
            let items: Vec<String> = g
                .dataset
                .items()
                .iter()
                .map(|i| format!("\"{}\"", escape(&i.to_string())))
                .collect();
            format!(
                "{{\"name\":\"{}\",\"count\":{},\"items\":[{}]}}",
                escape(&g.name),
                g.dataset.len(),
                items.join(",")
            )
        })
        .collect();
    Response::json(
        200,
        format!(
            "{{\"view\":\"{}\",\"input\":{},\"rejected\":{},\"groups\":[{}]}}",
            escape(view),
            dataset.len(),
            rejected,
            groups.join(",")
        ),
    )
}

/// Upper bounds on what we will buffer from one request.
const MAX_HEAD_BYTES: usize = 64 * 1024;
const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Reads one HTTP/1.1 request off the stream: `(method, target, body)`.
fn read_request(stream: &mut TcpStream) -> Result<(String, String, String), String> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err("request head too large".into());
        }
        let n = stream.read(&mut chunk).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-request".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let target = parts.next().unwrap_or_default().to_string();
    if method.is_empty() || !target.starts_with('/') {
        return Err(format!("malformed request line {request_line:?}"));
    }
    let content_length = lines
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err("body too large".into());
    }
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| format!("read body: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-body".into());
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok((method, target, String::from_utf8_lossy(&body).into_owned()))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(stream: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    )?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

fn handle(state: &ServeState, mut stream: TcpStream) {
    // accepted sockets may inherit the listener's non-blocking mode
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let response = match read_request(&mut stream) {
        Ok((method, target, body)) => route(state, &method, &target, &body),
        Err(e) => Response::error(400, &e),
    };
    let _ = write_response(&mut stream, &response);
}

/// The accept loop. Binding to port 0 picks a free port (tests and the
/// CI smoke job read the real address back via [`Server::local_addr`]).
pub struct Server {
    listener: TcpListener,
    state: ServeState,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, port 0 for ephemeral).
    pub fn bind(addr: &str, state: ServeState) -> Result<Server, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
        Ok(Server { listener, state })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener.local_addr().map_err(|e| e.to_string())
    }

    /// Serves until `shutdown` flips true (the signal handler's job).
    /// Requests are handled serially on this thread — the engine's own
    /// enactment parallelism is where the cores go.
    pub fn run(self, shutdown: &AtomicBool) -> Result<(), String> {
        self.listener.set_nonblocking(true).map_err(|e| e.to_string())?;
        loop {
            if shutdown.load(Ordering::Relaxed) {
                return Ok(());
            }
            match self.listener.accept() {
                Ok((stream, _)) => handle(&self.state, stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(format!("accept: {e}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qurator_telemetry::json;

    const VIEW: &str = r#"
<QualityView name="serve-test">
  <Annotator serviceName="imprint" serviceType="q:ImprintOutputAnnotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:HitRatio"/>
      <var evidence="q:MassCoverage"/>
      <var evidence="q:PeptidesCount"/>
    </variables>
  </Annotator>
  <QualityAssertion serviceName="score" serviceType="q:UniversalPIScore2"
                    tagName="HR_MC" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="coverage" evidence="q:MassCoverage"/>
      <var variableName="hitratio" evidence="q:HitRatio"/>
      <var variableName="peptidescount" evidence="q:PeptidesCount"/>
    </variables>
  </QualityAssertion>
  <action name="keep">
    <filter><condition>HR_MC &gt; 0</condition></filter>
  </action>
</QualityView>"#;

    const DATA: &str = "id\thitRatio\tmassCoverage\tpeptidesCount\n\
urn:lsid:t:h:good\t0.9\t40\t12\n\
urn:lsid:t:h:bad\t0.1\t3\t1\n";

    fn state() -> ServeState {
        let engine = QualityEngine::with_proteomics_defaults().unwrap();
        let spec = qurator::xmlio::parse_quality_view(VIEW).unwrap();
        ServeState::new(engine, vec![spec], &TelemetryConfig::default())
    }

    #[test]
    fn healthz_and_index_respond() {
        let state = state();
        let r = route(&state, "GET", "/healthz", "");
        assert_eq!((r.status, r.body.as_str()), (200, "ok\n"));
        let r = route(&state, "GET", "/", "");
        let value = json::parse(&r.body).unwrap();
        let views = value.get("views").and_then(|v| v.as_array()).unwrap();
        assert_eq!(views[0].as_str(), Some("serve-test"));
    }

    #[test]
    fn unknown_routes_and_wrong_methods_are_rejected() {
        let state = state();
        assert_eq!(route(&state, "GET", "/nope", "").status, 404);
        assert_eq!(route(&state, "POST", "/metrics", "").status, 405);
        assert_eq!(route(&state, "GET", "/run/serve-test", "").status, 405);
        assert_eq!(route(&state, "POST", "/run/missing", DATA).status, 404);
        assert_eq!(route(&state, "POST", "/run/serve-test", "not a tsv").status, 400);
    }

    #[test]
    fn run_endpoint_enacts_and_the_trace_lands_in_the_ring() {
        let state = state();
        let r = route(&state, "POST", "/run/serve-test", DATA);
        assert_eq!(r.status, 200, "{}", r.body);
        let value = json::parse(&r.body).unwrap();
        assert_eq!(value.get("input").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(value.get("rejected").and_then(|v| v.as_u64()), Some(1));
        let groups = value.get("groups").and_then(|v| v.as_array()).unwrap();
        assert_eq!(groups[0].get("name").and_then(|v| v.as_str()), Some("keep"));
        assert_eq!(groups[0].get("count").and_then(|v| v.as_u64()), Some(1));

        // the run rejected an item, so retention must have kept its trace
        let r = route(&state, "GET", "/traces/recent", "");
        assert_eq!(r.status, 200);
        assert!(qurator_telemetry::schema::validate_trace_jsonl(&r.body).unwrap() > 0);
        assert!(r.body.contains("\"reason\":\"rejected\""), "{}", r.body);

        // metrics include the serve-side series this request just recorded
        let r = route(&state, "GET", "/metrics", "");
        assert!(r.body.contains("serve.requests{route=\"/run\",status=\"200\"}"), "{}", r.body);
        assert!(qurator_telemetry::schema::validate_metrics_text(&r.body).unwrap() > 0);

        // drift endpoint is live (enabled by enable_observability)
        let r = route(&state, "GET", "/drift", "");
        let value = json::parse(&r.body).unwrap();
        assert_eq!(value.get("enabled").and_then(|v| v.as_bool()), Some(true));
    }

    #[test]
    fn traces_recent_honours_the_limit_parameter() {
        let state = state();
        for _ in 0..3 {
            assert_eq!(route(&state, "POST", "/run/serve-test", DATA).status, 200);
        }
        let all = route(&state, "GET", "/traces/recent", "");
        let one = route(&state, "GET", "/traces/recent?limit=1", "");
        let headers =
            |body: &str| body.lines().filter(|l| l.contains("\"type\":\"trace\"")).count();
        assert!(headers(&all.body) >= 3, "{}", all.body);
        assert_eq!(headers(&one.body), 1);
    }

    #[test]
    fn server_speaks_http_over_a_real_socket() {
        let server = Server::bind("127.0.0.1:0", state()).unwrap();
        let addr = server.local_addr().unwrap();
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = shutdown.clone();
        let thread = std::thread::spawn(move || server.run(&flag));

        let request = |payload: String| -> String {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(payload.as_bytes()).unwrap();
            let mut out = String::new();
            stream.read_to_string(&mut out).unwrap();
            out
        };
        let health = request("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n".into());
        assert!(health.starts_with("HTTP/1.1 200 OK\r\n"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");

        let run = request(format!(
            "POST /run/serve-test HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
            DATA.len(),
            DATA
        ));
        assert!(run.starts_with("HTTP/1.1 200 OK\r\n"), "{run}");
        assert!(run.contains("\"rejected\":1"), "{run}");

        let bad = request("BROKEN\r\n\r\n".into());
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");

        shutdown.store(true, Ordering::Relaxed);
        thread.join().unwrap().unwrap();
    }
}
