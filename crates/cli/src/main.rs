//! `qv` — the Quality Views command line.
//!
//! ```text
//! qv validate <view.xml>                         check a view against the stock IQ model
//! qv check    <view.xml|query.rq>                static analysis with source-span
//!             [--format text|json]               diagnostics (lint + bindings +
//!             [--deny warnings]                  compiled workflow + whole-plan
//!             [--fix [--dry-run]]                dataflow; SPARQL for .rq; --fix
//!                                                applies machine-applicable
//!                                                suggestions, --dry-run diffs them
//! qv compile  <view.xml> [--dot]                 show the compiled workflow (§6.1)
//! qv plan     <view.xml> [--no-opt]              EXPLAIN: the physical plan both
//!             [--format text|json]               executors run (passes, waves, nodes)
//! qv plan-check <plan.json>                      validate an exported plan rendering
//! qv fmt      <view.xml>                         canonical pretty-print
//! qv run      <view.xml> --data <hits.tsv>       execute over a TSV data set
//!             [--group NAME] [--explain]
//!             [--analyze [--format text|json]]    EXPLAIN ANALYZE: per-node
//!             [--store DIR] [--stats-out FILE]    observed statistics; --store
//!             [--trace-out FILE] [--metrics-out FILE]  persists the stats profile
//! qv explain  <view.xml> --data <hits.tsv>       decision provenance for one item:
//!             --item <id-or-suffix>              evidence fetched, tags assigned,
//!             [--spans]                          actions taken (`why(item)`)
//! qv profile  <view.xml> --data <hits.tsv>       per-plan-node self-time profile;
//!             [--runs N] [--folded out.txt]      folded stacks for flamegraph
//!             [--analyze]                        tools; --analyze appends the
//!                                                observed-statistics tree
//! qv load     <triples.ttl> --store <dir>        stream a Turtle file into an
//!             [--repo NAME]                      on-disk annotation store without
//!                                                materializing the graph in RAM
//! qv serve    <view.xml>... --addr HOST:PORT     long-lived engine over HTTP:
//!             [--store <dir>]                    GET /healthz /metrics /drift /slo
//!             [--workers N] [--queue N]          GET /traces/recent /log/recent
//!             [--keep-alive-max N]               GET /runs/<id> (correlation bundle)
//!             [--read-timeout-ms N]              GET /store (storage inventory)
//!             [--trace-capacity N]               POST /run/<view> with a TSV body
//!             [--sample-rate F]                  (worker pool + bounded queue;
//!             [--drift-window N]                 full queue -> 503 + Retry-After;
//!             [--drift-threshold F]              every run echoes X-QV-Run-Id;
//!             [--access-log FILE]                GET /stats/<view> (observed
//!             [--slo-p99-ms N] [--slo-availability F]  profile; with --store,
//!                                                persistent repos survive
//!                                                restarts and crashes)
//! qv bench-check <BENCH_*.json|dir|--all>        validate bench result artifacts
//!                                                (a directory checks every
//!                                                BENCH_*.json inside it)
//! qv telemetry-check <trace.jsonl> [metrics.txt] validate exported telemetry files
//!             [--access-log access.jsonl]        (metrics are also linted against
//!             [--analyze analyze.json]           the metric-name convention and
//!             [--stats-profile profile.json]     the committed allowlist)
//! qv library  <catalog.xml> [--search TEXT]      browse a shared view catalog (§7 iv)
//! ```
//!
//! The TSV data format: a header row starting with `id`, one data row per
//! item. Numeric-looking cells become numbers, everything else text:
//!
//! ```text
//! id\thitRatio\tmassCoverage\tpeptidesCount
//! urn:lsid:uniprot.org:uniprot:P30089\t0.82\t31\t9
//! ```

mod serve;
mod tsv;

use qurator::library::ViewLibrary;
use qurator::operators::ConditionOutcome;
use qurator::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("qv: {message}");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err(usage());
    };
    match command.as_str() {
        "validate" => cmd_validate(args.get(1).ok_or_else(usage)?),
        "check" => cmd_check(args),
        "compile" => cmd_compile(args.get(1).ok_or_else(usage)?, args.contains(&"--dot".into())),
        "plan" => cmd_plan(args),
        "plan-check" => cmd_plan_check(args.get(1).ok_or_else(usage)?),
        "fmt" => cmd_fmt(args.get(1).ok_or_else(usage)?),
        "run" => cmd_run(args),
        "load" => cmd_load(args),
        "explain" => cmd_explain(args),
        "profile" => cmd_profile(args),
        "serve" => cmd_serve(args),
        "telemetry-check" => cmd_telemetry_check(args),
        "bench-check" => cmd_bench_check(args),
        "library" => cmd_library(args),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

fn usage() -> String {
    "usage:\n  qv validate <view.xml>\n  qv check <view.xml|query.rq> [--format text|json] [--deny warnings] [--fix [--dry-run]]\n  qv compile <view.xml> [--dot]\n  qv plan <view.xml> [--no-opt] [--format text|json]\n  qv plan-check <plan.json>\n  qv fmt <view.xml>\n  qv run <view.xml> --data <hits.tsv> [--group NAME] [--explain] [--analyze [--format text|json]] [--store DIR] [--stats-out FILE] [--trace-out FILE] [--metrics-out FILE] [--profile-out FILE]\n  qv load <triples.ttl> --store <dir> [--repo NAME]\n  qv explain <view.xml> --data <hits.tsv> --item <id-or-suffix> [--spans]\n  qv profile <view.xml> --data <hits.tsv> [--runs N] [--folded out.txt] [--analyze]\n  qv serve <view.xml>... --addr HOST:PORT [--store DIR] [--workers N] [--queue N] [--keep-alive-max N] [--read-timeout-ms N] [--trace-capacity N] [--sample-rate F] [--drift-window N] [--drift-threshold F] [--access-log FILE] [--slo-p99-ms N] [--slo-availability F]\n  qv telemetry-check <trace.jsonl> [metrics.txt] [--access-log access.jsonl] [--analyze analyze.json] [--stats-profile profile.json]\n  qv bench-check <BENCH_*.json|dir|--all>\n  qv library <catalog.xml> [--search TEXT]"
        .to_string()
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))
}

fn load_view(path: &str) -> Result<QualityViewSpec, String> {
    qurator::xmlio::parse_quality_view(&read_file(path)?).map_err(|e| e.to_string())
}

fn stock_engine() -> Result<QualityEngine, String> {
    QualityEngine::with_proteomics_defaults().map_err(|e| e.to_string())
}

fn cmd_validate(path: &str) -> Result<(), String> {
    let spec = load_view(path)?;
    let engine = stock_engine()?;
    let view = engine.validate(&spec).map_err(|e| e.to_string())?;
    println!("view {:?} is valid", spec.name);
    println!("  annotators: {}", spec.annotators.len());
    println!("  assertions: {} (tags: {})", spec.assertions.len(), spec.tag_names().join(", "));
    println!("  actions:    {}", spec.actions.len());
    println!("  enrichment plan:");
    for (evidence, repo) in &view.enrichment_plan {
        println!("    {} <- repository {:?}", engine.iq().compact(evidence), repo);
    }
    Ok(())
}

/// `qv check`: collect-all static analysis. Unlike `qv validate` (which
/// stops at the first problem and ignores warnings) this runs every
/// QV/WF pass, renders each finding with its source position, and exits
/// non-zero when errors — or, under `--deny warnings`, warnings — are
/// present. `.rq`/`.sparql` files get the SQ passes instead.
///
/// `--fix` applies every machine-applicable suggestion in place and
/// re-lints until no more apply (the fixer is convergent); with
/// `--dry-run` it prints the unified diff instead of writing, and exits
/// non-zero when fixes would apply — the `cargo fmt --check` shape CI
/// uses to keep shipped views fix-clean.
fn cmd_check(args: &[String]) -> Result<(), String> {
    let path = args.get(1).filter(|a| !a.starts_with("--")).ok_or_else(usage)?;
    let format = flag_value(args, "--format").unwrap_or("text");
    if format != "text" && format != "json" {
        return Err(format!("unknown --format {format:?} (expected text or json)"));
    }
    let deny_warnings = match flag_value(args, "--deny") {
        None => false,
        Some("warnings") => true,
        Some(other) => return Err(format!("unknown --deny {other:?} (expected warnings)")),
    };
    let fix = args.contains(&"--fix".into());
    let dry_run = args.contains(&"--dry-run".into());
    if dry_run && !fix {
        return Err("--dry-run requires --fix".to_string());
    }

    let source = read_file(path)?;
    let sparql = path.ends_with(".rq") || path.ends_with(".sparql");
    if fix && sparql {
        return Err("--fix applies to quality views, not SPARQL queries".to_string());
    }
    let check_view = |text: &str| -> Result<Vec<qurator_qvlint::Diagnostic>, String> {
        let (spec, root) =
            qurator::xmlio::parse_quality_view_with_source(text).map_err(|e| e.to_string())?;
        Ok(stock_engine()?.check(&spec, Some(&root)))
    };

    if fix {
        // apply → re-lint → apply … until converged (deleting one dead
        // group can expose another fix, and spans shift between rounds)
        let mut fixed = source.clone();
        let mut applied = Vec::new();
        for _ in 0..8 {
            let diags = check_view(&fixed)?;
            let report = qurator_qvlint::fix::apply_machine_fixes(&fixed, &diags);
            if !report.changed() {
                break;
            }
            applied.extend(report.applied);
            fixed = report.fixed;
        }
        if dry_run {
            if fixed == source {
                println!("{path}: no machine-applicable fixes");
                return Ok(());
            }
            print!("{}", qurator_qvlint::fix::unified_diff(&source, &fixed, path));
            return Err(format!(
                "{path}: {} machine-applicable fix{} would apply (run `qv check --fix` to \
                 write them)",
                applied.len(),
                if applied.len() == 1 { "" } else { "es" },
            ));
        }
        if fixed != source {
            std::fs::write(path, &fixed).map_err(|e| format!("cannot write {path:?}: {e}"))?;
            for f in &applied {
                println!("fixed [{}] at {}:{}:{} — {}", f.code, path, f.line, f.col, f.message);
            }
        }
        let diags = check_view(&fixed)?;
        match format {
            "json" => print!("{}", qurator_qvlint::render::render_json(&diags, path)),
            _ => print!("{}", qurator_qvlint::render::render_text(&diags, path, &fixed)),
        }
        let warnings = diags.iter().any(|d| d.severity == qurator_qvlint::Severity::Warning);
        if qurator_qvlint::has_errors(&diags) || (deny_warnings && warnings) {
            return Err(format!("{path}: {}", qurator_qvlint::summary(&diags)));
        }
        return Ok(());
    }

    let diags =
        if sparql { qurator_qvlint::sparql::analyze_sparql(&source) } else { check_view(&source)? };

    match format {
        "json" => print!("{}", qurator_qvlint::render::render_json(&diags, path)),
        _ => print!("{}", qurator_qvlint::render::render_text(&diags, path, &source)),
    }

    let warnings = diags.iter().any(|d| d.severity == qurator_qvlint::Severity::Warning);
    if qurator_qvlint::has_errors(&diags) || (deny_warnings && warnings) {
        return Err(format!("{path}: {}", qurator_qvlint::summary(&diags)));
    }
    Ok(())
}

fn cmd_compile(path: &str, dot: bool) -> Result<(), String> {
    let spec = load_view(path)?;
    let engine = stock_engine()?;
    let workflow = engine.compile(&spec).map_err(|e| e.to_string())?;
    if dot {
        print!("{}", workflow.to_dot());
        return Ok(());
    }
    println!("compiled workflow {:?}", workflow.name());
    println!(
        "  {} processors, {} data links, {} control links",
        workflow.len(),
        workflow.data_links().len(),
        workflow.control_links().len()
    );
    println!("  topological order: {:?}", workflow.topological_order().map_err(|e| e.to_string())?);
    println!("  outputs: {:?}", workflow.outputs().map(|(n, _)| n).collect::<Vec<_>>());
    Ok(())
}

/// `qv plan`: the EXPLAIN surface — render the physical plan a view
/// lowers to, with the pass pipeline's reports, the wave schedule and
/// each node's configuration. `--no-opt` shows the unoptimized baseline.
fn cmd_plan(args: &[String]) -> Result<(), String> {
    let path = args.get(1).filter(|a| !a.starts_with("--")).ok_or_else(usage)?;
    let format = flag_value(args, "--format").unwrap_or("text");
    if format != "text" && format != "json" {
        return Err(format!("unknown --format {format:?} (expected text or json)"));
    }
    let config = qurator_plan::PlanConfig { optimize: !args.contains(&"--no-opt".into()) };
    let spec = load_view(path)?;
    let engine = stock_engine()?;
    let plan = engine.plan_with(&spec, &config).map_err(|e| e.to_string())?;
    match format {
        "json" => println!("{}", qurator_plan::render::render_json(&plan)),
        _ => print!("{}", qurator_plan::render::render_text(&plan)),
    }
    Ok(())
}

/// `qv plan-check`: validate a `qv plan --format json` export against the
/// in-tree plan schema (the CI gate for golden plan renderings).
fn cmd_plan_check(path: &str) -> Result<(), String> {
    let nodes = qurator_plan::schema::validate_plan_json(&read_file(path)?)
        .map_err(|e| format!("{path}: {e}"))?;
    println!("{path}: ok ({nodes} node(s))");
    Ok(())
}

fn cmd_fmt(path: &str) -> Result<(), String> {
    let spec = load_view(path)?;
    print!("{}", qurator::xmlio::spec_to_xml(&spec));
    Ok(())
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let view_path = args.get(1).ok_or_else(usage)?;
    let data_path = flag_value(args, "--data").ok_or_else(usage)?;
    let explain = args.contains(&"--explain".into());
    let analyze = args.contains(&"--analyze".into());
    let format = flag_value(args, "--format").unwrap_or("text");
    if format != "text" && format != "json" {
        return Err(format!("unknown --format {format:?} (expected text or json)"));
    }
    if format == "json" && !analyze {
        return Err("--format applies to the --analyze rendering (add --analyze)".into());
    }

    let spec = load_view(view_path)?;
    let dataset = tsv::read_dataset(&read_file(data_path)?)?;
    let engine = stock_engine()?;
    if let Some(dir) = flag_value(args, "--store") {
        engine.set_store_root(dir).map_err(|e| e.to_string())?;
    }
    // lowered before the run: any `planned ~N rows` annotations come from
    // the profile a *previous* run persisted, not from this execution
    let plan = analyze
        .then(|| engine.plan_with_stats(&spec, &qurator_plan::PlanConfig::default()))
        .transpose()
        .map_err(|e| e.to_string())?;
    let run = qurator_telemetry::RunId::mint();
    let outcome = engine.execute_view_run(&spec, &dataset, run).map_err(|e| e.to_string())?;

    // `--analyze --format json` is the machine surface: stdout carries
    // the analyze document alone, so it can be piped straight into
    // `qv telemetry-check --analyze`
    if format == "text" {
        println!("run id: {run}");
        println!("input items: {}", dataset.len());
        for group in &outcome.groups {
            println!("\ngroup {:?}: {} item(s)", group.name, group.dataset.len());
            for item in group.dataset.items() {
                let tags: Vec<String> = group
                    .map
                    .item(item)
                    .map(|row| row.tag_entries().map(|(t, v)| format!("{t}={v}")).collect())
                    .unwrap_or_default();
                println!("  {}  [{}]", item, tags.join(", "));
            }
        }
    }

    if let Some(plan) = &plan {
        let stats = engine.last_run_stats().ok_or("no run statistics were recorded")?;
        match format {
            "json" => println!("{}", qurator_plan::render::render_analyze_json(plan, &stats)),
            _ => print!("\n{}", qurator_plan::render::render_analyze_text(plan, &stats, true)),
        }
    }
    if let Some(path) = flag_value(args, "--stats-out") {
        let profile = engine
            .stats_profile(&spec.name)
            .ok_or("no stats profile was recorded (is stats collection disabled?)")?;
        std::fs::write(path, profile.to_json())
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        if format == "text" {
            println!("stats profile ({} run(s) observed) -> {path}", profile.runs);
        }
    }

    if explain {
        println!("\n== per-item explanations ==");
        let requested = flag_value(args, "--group");
        for action in &spec.actions {
            if let Some(name) = requested {
                if action.name != name {
                    continue;
                }
            }
            let compiled = match &action.kind {
                qurator::spec::ActionKind::Filter { condition } => {
                    qurator::operators::CompiledAction::Filter { condition: condition.clone() }
                }
                qurator::spec::ActionKind::Split { groups } => {
                    qurator::operators::CompiledAction::Split { groups: groups.clone() }
                }
            };
            // rebuild the consolidated map by re-running up to the actions
            let view = engine.validate(&spec).map_err(|e| e.to_string())?;
            let processor = qurator::operators::ActionProcessor::new(
                action.name.clone(),
                compiled,
                engine.iq().clone(),
            );
            // the outcome's groups do not retain rejected rows, so
            // recompute the full consolidated map with a pass-through probe
            let map = rebuild_map(&engine, &view, &dataset)?;
            for explanation in processor.explain(&dataset, &map).map_err(|e| e.to_string())? {
                let outcomes: Vec<String> = explanation
                    .outcomes
                    .iter()
                    .map(|(name, outcome)| {
                        format!(
                            "{name}:{}",
                            match outcome {
                                ConditionOutcome::Accepted => "accept",
                                ConditionOutcome::Rejected => "reject",
                                ConditionOutcome::Unknown => "null",
                            }
                        )
                    })
                    .collect();
                println!("  {}  {}", explanation.item, outcomes.join(" "));
            }
        }
    }
    write_telemetry(args, &engine)?;
    engine.finish_execution();
    Ok(())
}

/// Handles `--trace-out` / `--metrics-out` after an execution.
fn write_telemetry(args: &[String], engine: &QualityEngine) -> Result<(), String> {
    if let Some(path) = flag_value(args, "--trace-out") {
        let trace = engine.last_trace().ok_or("no span trace was recorded")?;
        qurator_telemetry::export::write_trace_jsonl(&trace, std::path::Path::new(path))
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        println!("\ntrace: {} span(s) -> {path}", trace.len());
    }
    if let Some(path) = flag_value(args, "--metrics-out") {
        qurator_telemetry::export::write_metrics_text(
            qurator_telemetry::metrics(),
            std::path::Path::new(path),
        )
        .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        println!("metrics -> {path}");
    }
    if let Some(path) = flag_value(args, "--profile-out") {
        let trace = engine.last_trace().ok_or("no span trace was recorded")?;
        let profile = qurator_telemetry::Profile::from_traces([&trace]);
        std::fs::write(path, profile.to_folded())
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        println!("profile: {} node(s) -> {path}", profile.nodes().len());
    }
    Ok(())
}

/// `qv profile`: enact the view over the data set (optionally several
/// times) and fold the span traces into a per-plan-node self-time
/// profile; `--folded` exports flamegraph-compatible folded stacks.
fn cmd_profile(args: &[String]) -> Result<(), String> {
    let view_path = args.get(1).filter(|a| !a.starts_with("--")).ok_or_else(usage)?;
    let data_path = flag_value(args, "--data").ok_or_else(usage)?;
    let runs: u32 = match flag_value(args, "--runs") {
        None => 1,
        Some(n) => n.parse().map_err(|_| format!("--runs {n:?} is not a number"))?,
    };
    if runs == 0 {
        return Err("--runs must be at least 1".into());
    }

    let spec = load_view(view_path)?;
    let dataset = tsv::read_dataset(&read_file(data_path)?)?;
    let engine = stock_engine()?;
    // one invocation = one run id, stamped on every iteration's trace
    let run = qurator_telemetry::RunId::mint();
    let mut profile = qurator_telemetry::Profile::new();
    for _ in 0..runs {
        engine.execute_view_run(&spec, &dataset, run).map_err(|e| e.to_string())?;
        let trace = engine.last_trace().ok_or("no span trace was recorded")?;
        profile.add_trace(&trace);
    }
    println!("run id: {run}");
    println!("{}", profile.render_table());
    if args.contains(&"--analyze".into()) {
        // the decayed profile now holds all N iterations, so the plan's
        // `planned ~N rows` column reflects what this session observed
        let plan = engine
            .plan_with_stats(&spec, &qurator_plan::PlanConfig::default())
            .map_err(|e| e.to_string())?;
        let stats = engine.last_run_stats().ok_or("no run statistics were recorded")?;
        print!("\n{}", qurator_plan::render::render_analyze_text(&plan, &stats, true));
    }
    if let Some(path) = flag_value(args, "--folded") {
        std::fs::write(path, profile.to_folded())
            .map_err(|e| format!("cannot write {path:?}: {e}"))?;
        println!("folded stacks -> {path}");
    }
    engine.finish_execution();
    Ok(())
}

/// `qv load`: bulk-load a Turtle file into an on-disk annotation store.
/// The loader streams — dictionary + sorted runs on disk — so ingest is
/// bounded-memory regardless of the input size; `qv serve --store`
/// reopens the result as the repository named by `--repo`.
fn cmd_load(args: &[String]) -> Result<(), String> {
    let data_path = args.get(1).filter(|a| !a.starts_with("--")).ok_or_else(usage)?;
    let store_dir = flag_value(args, "--store").ok_or("load needs --store <dir>")?;
    let repo = flag_value(args, "--repo").unwrap_or("archive");
    if repo.is_empty() || repo.contains(['/', '\\']) || repo == "." || repo == ".." {
        return Err(format!("--repo {repo:?} is not a valid repository name"));
    }

    let text = read_file(data_path)?;
    let target = std::path::Path::new(store_dir).join(repo);
    let started = std::time::Instant::now();
    let stats = qurator_rdf::storage::BulkLoader::new(&target)
        .load_turtle(&text)
        .map_err(|e| format!("loading {data_path:?} into {}: {e}", target.display()))?;
    let elapsed = started.elapsed();
    let secs = elapsed.as_secs_f64();
    println!("loaded {data_path:?} into {} (repository {repo:?})", target.display());
    println!(
        "  {} triple(s) read, {} stored ({} duplicate(s) dropped)",
        stats.triples_read,
        stats.triples_stored,
        stats.triples_read - stats.triples_stored
    );
    println!("  {} term(s) interned, {} sorted run(s) merged", stats.terms, stats.runs);
    println!(
        "  {:.3}s ({:.0} triples/s)",
        secs,
        if secs > 0.0 { stats.triples_read as f64 / secs } else { 0.0 }
    );
    Ok(())
}

/// The SIGTERM/SIGINT flag `qv serve`'s accept loop polls.
static SHUTDOWN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

extern "C" fn on_shutdown_signal(_signum: i32) {
    SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Registers the handler via raw libc `signal(2)` — storing to an atomic
/// is async-signal-safe, and the FFI declaration keeps the CLI free of a
/// signal-handling dependency.
#[cfg(unix)]
fn install_shutdown_handler() {
    unsafe extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_shutdown_signal);
        signal(SIGINT, on_shutdown_signal);
    }
}

#[cfg(not(unix))]
fn install_shutdown_handler() {}

/// `qv serve`: publish one or more views behind the HTTP endpoint and
/// serve until SIGTERM/SIGINT.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut config = qurator_telemetry::TelemetryConfig::default();
    let mut pool = serve::ServeConfig::default();
    let mut options = serve::ServeOptions::default();
    let mut view_paths: Vec<&str> = Vec::new();
    let mut addr = "127.0.0.1:7878";
    let mut store_dir: Option<&str> = None;
    let mut i = 1;
    while i < args.len() {
        let flag_arg = |name: &str| -> Result<&str, String> {
            args.get(i + 1).map(String::as_str).ok_or(format!("{name} needs a value"))
        };
        match args[i].as_str() {
            "--addr" => {
                addr = flag_arg("--addr")?;
                i += 2;
            }
            "--store" => {
                store_dir = Some(flag_arg("--store")?);
                i += 2;
            }
            "--workers" => {
                let v = flag_arg("--workers")?;
                pool.workers = v.parse().map_err(|_| format!("--workers {v:?} is not a number"))?;
                if pool.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
                i += 2;
            }
            "--queue" => {
                let v = flag_arg("--queue")?;
                pool.queue_capacity =
                    v.parse().map_err(|_| format!("--queue {v:?} is not a number"))?;
                i += 2;
            }
            "--keep-alive-max" => {
                let v = flag_arg("--keep-alive-max")?;
                pool.keep_alive_max =
                    v.parse().map_err(|_| format!("--keep-alive-max {v:?} is not a number"))?;
                if pool.keep_alive_max == 0 {
                    return Err("--keep-alive-max must be at least 1".into());
                }
                i += 2;
            }
            "--read-timeout-ms" => {
                let v = flag_arg("--read-timeout-ms")?;
                let ms: u64 =
                    v.parse().map_err(|_| format!("--read-timeout-ms {v:?} is not a number"))?;
                if ms == 0 {
                    return Err("--read-timeout-ms must be at least 1".into());
                }
                pool.read_timeout = std::time::Duration::from_millis(ms);
                i += 2;
            }
            "--trace-capacity" => {
                let v = flag_arg("--trace-capacity")?;
                config.trace_capacity =
                    v.parse().map_err(|_| format!("--trace-capacity {v:?} is not a number"))?;
                i += 2;
            }
            "--sample-rate" => {
                let v = flag_arg("--sample-rate")?;
                config.sample_rate =
                    v.parse().map_err(|_| format!("--sample-rate {v:?} is not a number"))?;
                i += 2;
            }
            "--drift-window" => {
                let v = flag_arg("--drift-window")?;
                config.drift.window =
                    v.parse().map_err(|_| format!("--drift-window {v:?} is not a number"))?;
                i += 2;
            }
            "--drift-threshold" => {
                let v = flag_arg("--drift-threshold")?;
                config.drift.threshold =
                    v.parse().map_err(|_| format!("--drift-threshold {v:?} is not a number"))?;
                i += 2;
            }
            "--access-log" => {
                options.access_log_path = Some(flag_arg("--access-log")?.into());
                i += 2;
            }
            "--slo-p99-ms" => {
                let v = flag_arg("--slo-p99-ms")?;
                let ms: u64 =
                    v.parse().map_err(|_| format!("--slo-p99-ms {v:?} is not a number"))?;
                if ms == 0 {
                    return Err("--slo-p99-ms must be at least 1".into());
                }
                options.slo.p99_target_us = ms.saturating_mul(1000);
                i += 2;
            }
            "--slo-availability" => {
                let v = flag_arg("--slo-availability")?;
                let objective: f64 =
                    v.parse().map_err(|_| format!("--slo-availability {v:?} is not a number"))?;
                if !(0.0..1.0).contains(&objective) {
                    return Err("--slo-availability must be in [0, 1)".into());
                }
                options.slo.availability = objective;
                i += 2;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown serve flag {other:?}\n{}", usage()));
            }
            path => {
                view_paths.push(path);
                i += 1;
            }
        }
    }
    if view_paths.is_empty() {
        return Err(format!("serve needs at least one view\n{}", usage()));
    }

    let engine = stock_engine()?;
    // Fail fast — before binding the socket — when the store directory is
    // locked by another process or holds a corrupt store: a server that
    // silently started empty would shadow the persisted annotations.
    if let Some(dir) = store_dir {
        let reopened = engine.set_store_root(dir).map_err(|e| e.to_string())?;
        match reopened.len() {
            0 => println!("qv serve: store root {dir} (no existing repositories)"),
            _ => println!("qv serve: store root {dir} (reopened: {})", reopened.join(", ")),
        }
    }
    let mut views = Vec::new();
    for path in view_paths {
        let spec = load_view(path)?;
        engine.validate(&spec).map_err(|e| format!("{path}: {e}"))?;
        views.push(spec);
    }
    let state = serve::ServeState::new(engine, views, &config, options)?;
    let names = state.view_names().join(", ");
    let server = serve::Server::bind(addr, state, pool)?;
    let local = server.local_addr()?;
    let pool = server.config();
    println!(
        "qv serve: listening on http://{local} (views: {names}; {} worker(s), queue {})",
        pool.workers, pool.queue_capacity
    );
    install_shutdown_handler();
    server.run(&SHUTDOWN)?;
    println!("qv serve: shutdown signal received, drained in-flight requests, exiting");
    Ok(())
}

/// `qv bench-check`: validate `BENCH_*.json` artifacts (as written by
/// the `bench` crate's experiment binaries) against the in-tree schema.
/// Accepts a single file, a directory (every `BENCH_*.json` inside it),
/// or `--all` (the current directory) — the CI gate over the whole
/// artifact set.
fn cmd_bench_check(args: &[String]) -> Result<(), String> {
    let target = args.get(1).ok_or_else(usage)?;
    let dir = if target == "--all" {
        std::path::PathBuf::from(".")
    } else {
        let path = std::path::PathBuf::from(target);
        if !path.is_dir() {
            return check_bench_file(&path);
        }
        path
    };
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no BENCH_*.json artifacts under {}", dir.display()));
    }
    for path in &paths {
        check_bench_file(path)?;
    }
    println!("{} artifact(s) ok", paths.len());
    Ok(())
}

fn check_bench_file(path: &std::path::Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let samples = qurator_telemetry::schema::validate_bench_json(&text)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    println!("{}: ok ({samples} sample(s))", path.display());
    Ok(())
}

/// `qv explain`: run the view with the decision ledger enabled and print
/// the provenance trace (evidence, assertions, actions) for one item.
fn cmd_explain(args: &[String]) -> Result<(), String> {
    let view_path = args.get(1).ok_or_else(usage)?;
    let data_path = flag_value(args, "--data").ok_or_else(usage)?;
    let needle = flag_value(args, "--item").ok_or_else(usage)?;
    let show_spans = args.contains(&"--spans".into());

    let spec = load_view(view_path)?;
    let dataset = tsv::read_dataset(&read_file(data_path)?)?;
    let engine = stock_engine()?;
    engine.set_provenance_enabled(true);
    engine.execute_view(&spec, &dataset).map_err(|e| e.to_string())?;

    let traces = engine.explain_item(needle);
    if traces.is_empty() {
        return Err(format!(
            "no decision trace for {needle:?}; known items: {}",
            engine.ledger().items().join(", ")
        ));
    }
    let span_trace = engine.last_trace();
    for trace in &traces {
        print!("{}", trace.render_with(if show_spans { span_trace.as_ref() } else { None }));
    }
    write_telemetry(args, &engine)?;
    engine.finish_execution();
    Ok(())
}

/// `qv telemetry-check`: validate an exported trace (and optionally a
/// metrics dump and/or an access log) against the in-tree schemas. A
/// metrics dump is additionally linted against the metric-name
/// convention and the committed allowlist
/// (`qurator_telemetry::naming::ALLOWLIST`).
fn cmd_telemetry_check(args: &[String]) -> Result<(), String> {
    let trace_path = args.get(1).ok_or_else(usage)?;
    let spans = qurator_telemetry::schema::validate_trace_jsonl(&read_file(trace_path)?)
        .map_err(|e| format!("{trace_path}: {e}"))?;
    println!("{trace_path}: ok ({spans} span(s))");
    if let Some(metrics_path) = args.get(2).filter(|a| !a.starts_with("--")) {
        let text = read_file(metrics_path)?;
        let series = qurator_telemetry::schema::validate_metrics_text(&text)
            .map_err(|e| format!("{metrics_path}: {e}"))?;
        println!("{metrics_path}: ok ({series} series)");
        let names = qurator_telemetry::naming::lint_metrics_text(&text)
            .map_err(|violations| format!("{metrics_path}:\n  {}", violations.join("\n  ")))?;
        println!("{metrics_path}: naming ok ({names} metric name(s) against the allowlist)");
    }
    if let Some(log_path) = flag_value(args, "--access-log") {
        let records = qurator_telemetry::schema::validate_access_log_jsonl(&read_file(log_path)?)
            .map_err(|e| format!("{log_path}: {e}"))?;
        println!("{log_path}: ok ({records} record(s))");
    }
    if let Some(path) = flag_value(args, "--analyze") {
        let nodes = qurator_telemetry::schema::validate_analyze_json(&read_file(path)?)
            .map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: ok ({nodes} analyzed node(s))");
    }
    if let Some(path) = flag_value(args, "--stats-profile") {
        let nodes = qurator_telemetry::schema::validate_stats_profile_json(&read_file(path)?)
            .map_err(|e| format!("{path}: {e}"))?;
        println!("{path}: ok ({nodes} profiled node(s))");
    }
    Ok(())
}

/// Re-runs annotation + enrichment + assertions to obtain the consolidated
/// map the actions saw (for explanations).
fn rebuild_map(
    engine: &QualityEngine,
    view: &qurator::validate::ValidatedView,
    dataset: &DataSet,
) -> Result<AnnotationMap, String> {
    // run the interpreter with a pass-through action to capture the map
    let mut probe = view.spec.clone();
    probe.actions = vec![qurator::spec::ActionDecl {
        name: "__all__".into(),
        kind: qurator::spec::ActionKind::Filter { condition: "true".into() },
    }];
    let outcome = engine.execute_view(&probe, dataset).map_err(|e| e.to_string())?;
    Ok(outcome.groups[0].map.clone())
}

fn cmd_library(args: &[String]) -> Result<(), String> {
    let path = args.get(1).ok_or_else(usage)?;
    let library = ViewLibrary::from_xml(&read_file(path)?).map_err(|e| e.to_string())?;
    let entries: Vec<_> = match flag_value(args, "--search") {
        Some(text) => library.search(text),
        None => library.iter().collect(),
    };
    println!("{} view(s)", entries.len());
    for entry in entries {
        println!(
            "\n{}  (by {})\n  {}\n  evidence: {} | tags: {} | keywords: {}",
            entry.spec.name,
            entry.metadata.author,
            entry.metadata.description,
            entry.spec.referenced_evidence().join(", "),
            entry.spec.tag_names().join(", "),
            entry.metadata.keywords.join(", "),
        );
    }
    Ok(())
}

#[cfg(test)]
mod check_tests {
    use super::*;

    fn write_temp(name: &str, content: &str) -> String {
        let dir = std::env::temp_dir().join("qv-cli-check-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        path.to_string_lossy().into_owned()
    }

    fn run(args: &[&str]) -> Result<(), String> {
        dispatch(&args.iter().map(|a| a.to_string()).collect::<Vec<_>>())
    }

    /// A view with no findings at all: the one tag is read by the action.
    const CLEAN_VIEW: &str = r#"<QualityView name="mini">
  <Annotator serviceName="imprint" serviceType="q:ImprintOutputAnnotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:HitRatio"/>
    </variables>
  </Annotator>
  <QualityAssertion serviceName="hr" serviceType="q:UniversalPIScore"
                    tagName="HR" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="hitratio" evidence="q:HitRatio"/>
    </variables>
  </QualityAssertion>
  <action name="keep">
    <filter><condition>HR &gt; 0</condition></filter>
  </action>
</QualityView>
"#;

    #[test]
    fn clean_view_passes_even_with_deny_warnings() {
        let path = write_temp("clean.qv", CLEAN_VIEW);
        run(&["check", &path]).unwrap();
        run(&["check", &path, "--deny", "warnings"]).unwrap();
        run(&["check", &path, "--format", "json"]).unwrap();
    }

    #[test]
    fn unsatisfiable_condition_fails_the_check() {
        let broken = CLEAN_VIEW.replace("HR &gt; 0", "HR &gt; 5 and HR &lt; 2");
        let path = write_temp("unsat.qv", &broken);
        let e = run(&["check", &path]).unwrap_err();
        assert!(e.contains("1 error"), "{e}");
    }

    #[test]
    fn warnings_gate_only_under_deny() {
        // an extra unused tag: QV019 warning, no errors
        let warned = CLEAN_VIEW.replace(
            "<action name=\"keep\">",
            r#"<QualityAssertion serviceName="hr2" serviceType="q:UniversalPIScore"
                    tagName="HR2" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="hitratio" evidence="q:HitRatio"/>
    </variables>
  </QualityAssertion>
  <action name="keep">"#,
        );
        let path = write_temp("warned.qv", &warned);
        run(&["check", &path]).unwrap();
        let e = run(&["check", &path, "--deny", "warnings"]).unwrap_err();
        assert!(e.contains("warning"), "{e}");
    }

    #[test]
    fn sparql_files_get_the_sq_passes() {
        let path = write_temp(
            "enrich.rq",
            "PREFIX q: <http://x#>\nSELECT ?s ?typo WHERE { ?s q:p ?v . }\n",
        );
        let e = run(&["check", &path]).unwrap_err();
        assert!(e.contains("1 error"), "{e}");
        let clean =
            write_temp("clean.rq", "PREFIX q: <http://x#>\nSELECT ?s ?v WHERE { ?s q:p ?v . }\n");
        run(&["check", &clean]).unwrap();
    }

    #[test]
    fn bad_flags_are_rejected() {
        let path = write_temp("flags.qv", CLEAN_VIEW);
        assert!(run(&["check", &path, "--format", "yaml"]).is_err());
        assert!(run(&["check", &path, "--deny", "everything"]).is_err());
    }

    #[test]
    fn plan_renders_text_and_json() {
        let path = write_temp("plan.qv", CLEAN_VIEW);
        run(&["plan", &path]).unwrap();
        run(&["plan", &path, "--no-opt"]).unwrap();
        run(&["plan", &path, "--format", "json"]).unwrap();
        assert!(run(&["plan", &path, "--format", "yaml"]).is_err());
        assert!(run(&["plan"]).is_err());
    }

    /// CLEAN_VIEW with a dead splitter branch: the classifier's domain is
    /// {low, mid, high}, so the second group can never match (QV025).
    fn dead_branch_view() -> String {
        CLEAN_VIEW.replace(
            r#"  <action name="keep">
    <filter><condition>HR &gt; 0</condition></filter>
  </action>"#,
            r#"  <QualityAssertion serviceName="score" serviceType="q:UniversalPIScore2"
                    tagName="HR_MC" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="coverage" evidence="q:MassCoverage"/>
      <var variableName="hitratio" evidence="q:HitRatio"/>
      <var variableName="peptidescount" evidence="q:PeptidesCount"/>
    </variables>
  </QualityAssertion>
  <QualityAssertion serviceName="classify" serviceType="q:PIScoreClassifier"
                    tagName="ScoreClass" tagSynType="q:class"
                    tagSemType="q:PIScoreClassification">
    <variables repositoryRef="cache">
      <var variableName="score" evidence="tag:HR_MC"/>
    </variables>
  </QualityAssertion>
  <action name="route">
    <splitter>
      <group name="live"><condition>HR &gt; 0 and ScoreClass in q:high</condition></group>
      <group name="dead"><condition>not (ScoreClass in q:low, q:mid, q:high)</condition></group>
    </splitter>
  </action>"#,
        ).replace(
            "      <var evidence=\"q:HitRatio\"/>",
            "      <var evidence=\"q:HitRatio\"/>\n      <var evidence=\"q:MassCoverage\"/>\n      <var evidence=\"q:PeptidesCount\"/>",
        )
    }

    #[test]
    fn fix_applies_machine_applicable_suggestions_in_place() {
        let path = write_temp("fixable.qv", &dead_branch_view());
        // the dead branch is only a warning, so plain check passes …
        run(&["check", &path]).unwrap();
        // … but --deny warnings rejects it until --fix removes it
        assert!(run(&["check", &path, "--deny", "warnings"]).is_err());
        run(&["check", &path, "--fix"]).unwrap();
        let fixed = std::fs::read_to_string(&path).unwrap();
        assert!(!fixed.contains("name=\"dead\""), "dead group survived --fix:\n{fixed}");
        assert!(fixed.contains("name=\"live\""), "--fix deleted the live group:\n{fixed}");
        run(&["check", &path, "--deny", "warnings"]).unwrap();
    }

    #[test]
    fn fix_dry_run_reports_without_writing() {
        let before = dead_branch_view();
        let path = write_temp("dryrun.qv", &before);
        // dry-run exits nonzero when fixes would apply, and leaves the file alone
        assert!(run(&["check", &path, "--fix", "--dry-run"]).is_err());
        assert_eq!(std::fs::read_to_string(&path).unwrap(), before);
        // a clean view sails through
        let clean = write_temp("dryrun-clean.qv", CLEAN_VIEW);
        run(&["check", &clean, "--fix", "--dry-run"]).unwrap();
    }

    #[test]
    fn fix_flags_are_validated() {
        let path = write_temp("fixflags.qv", CLEAN_VIEW);
        // --dry-run without --fix is meaningless
        assert!(run(&["check", &path, "--dry-run"]).is_err());
        // --fix is a view-language feature, not a SPARQL one
        let rq = write_temp("fixflags.rq", "SELECT ?s WHERE { ?s ?p ?o . }\n");
        assert!(run(&["check", &rq, "--fix"]).is_err());
    }

    #[test]
    fn run_analyze_renders_observed_stats_and_exports_the_profile() {
        let view = write_temp("analyze.qv", CLEAN_VIEW);
        let data = write_temp("analyze.tsv", "id\thitRatio\nurn:a\t0.9\nurn:b\t0.1\n");
        run(&["run", &view, "--data", &data, "--analyze"]).unwrap();
        run(&["run", &view, "--data", &data, "--analyze", "--format", "json"]).unwrap();
        // --format gates the analyze rendering, not the run itself
        assert!(run(&["run", &view, "--data", &data, "--format", "json"]).is_err());
        assert!(run(&["run", &view, "--data", &data, "--analyze", "--format", "yaml"]).is_err());
        let out = std::env::temp_dir().join("qv-cli-check-tests").join("profile.json");
        let out = out.to_string_lossy().into_owned();
        run(&["run", &view, "--data", &data, "--stats-out", &out]).unwrap();
        let profile = std::fs::read_to_string(&out).unwrap();
        let nodes = qurator_telemetry::schema::validate_stats_profile_json(&profile).unwrap();
        assert!(nodes > 0, "empty stats profile:\n{profile}");
    }

    #[test]
    fn bench_check_accepts_a_directory_of_artifacts() {
        let artifact = r#"{"name":"demo","git_rev":"abc123","config":{"items":"4"},
            "samples":3,"median_ms":1.0,"p95_ms":2.0,"metrics":{"overhead_pct":1.5}}"#;
        let dir = std::env::temp_dir().join("qv-cli-bench-check-dir");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("BENCH_demo.json"), artifact).unwrap();
        std::fs::write(dir.join("not-a-bench.json"), "{}").unwrap();
        let dir_arg = dir.to_string_lossy().into_owned();
        run(&["bench-check", &dir_arg]).unwrap();
        // a single file still works, and a broken artifact fails the sweep
        let single = dir.join("BENCH_demo.json").to_string_lossy().into_owned();
        run(&["bench-check", &single]).unwrap();
        std::fs::write(dir.join("BENCH_broken.json"), "{}").unwrap();
        assert!(run(&["bench-check", &dir_arg]).is_err());
        std::fs::remove_file(dir.join("BENCH_broken.json")).unwrap();
        // an artifact-free directory is an error, not a silent pass
        let empty = std::env::temp_dir().join("qv-cli-bench-check-empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(run(&["bench-check", &empty.to_string_lossy()]).is_err());
    }

    #[test]
    fn telemetry_check_lints_metric_names() {
        let trace = write_temp("lint-trace.jsonl", "");
        let good = write_temp("lint-good.txt", "serve.requests{route=\"/run\"} 3\n");
        run(&["telemetry-check", &trace, &good]).unwrap();
        let bad = write_temp("lint-bad.txt", "rogue_metric_total 1\n");
        let e = run(&["telemetry-check", &trace, &bad]).unwrap_err();
        assert!(e.contains("allowlist"), "{e}");
    }

    #[test]
    fn plan_check_validates_a_json_export() {
        let view_path = write_temp("export.qv", CLEAN_VIEW);
        let spec = load_view(&view_path).unwrap();
        let plan = stock_engine().unwrap().plan(&spec).unwrap();
        let json_path = write_temp("plan.json", &qurator_plan::render::render_json(&plan));
        run(&["plan-check", &json_path]).unwrap();
        let bad = write_temp("bad-plan.json", "{}");
        assert!(run(&["plan-check", &bad]).is_err());
    }
}
