//! Observability invariants that only show up under concurrency: the
//! trace retainer is offered traces from many engine threads at once
//! while an operator hits `GET /traces/recent`. The export must be
//! schema-valid at every instant (never a torn header or a span line
//! from a half-admitted trace) and run ids must stay unique across
//! everything retained.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use qurator_telemetry::schema::validate_trace_jsonl;
use qurator_telemetry::span::{SpanKind, SpanTrace, TraceSession};
use qurator_telemetry::{RunId, TelemetryConfig, TraceMeta, TraceRetainer};

/// A minimal finished trace: one view root with a phase child, the root
/// stamped with the run id the way the engine stamps it.
fn finished_trace(view: &str, run: RunId) -> SpanTrace {
    let session = TraceSession::new();
    let mut rec = session.recorder();
    let root = rec.start(format!("view:{view}"), SpanKind::View, None);
    rec.attr(root, "run_id", run.to_string());
    let phase = rec.start("phase:assertions", SpanKind::Phase, Some(root));
    rec.end(phase);
    rec.end(root);
    SpanTrace::from_spans(rec.finish())
}

fn keep_all_retainer(capacity: usize) -> TraceRetainer {
    TraceRetainer::new(&TelemetryConfig {
        trace_capacity: capacity,
        sample_rate: 1.0,
        ..TelemetryConfig::default()
    })
}

#[test]
fn recent_jsonl_stays_schema_valid_under_concurrent_offer() {
    const WRITERS: usize = 4;
    const OFFERS_PER_WRITER: usize = 200;

    let retainer = Arc::new(keep_all_retainer(512));
    let done = Arc::new(AtomicBool::new(false));

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let retainer = Arc::clone(&retainer);
            std::thread::spawn(move || {
                for i in 0..OFFERS_PER_WRITER {
                    let run = RunId::mint();
                    let view = format!("view-{w}-{i}");
                    let meta =
                        TraceMeta { view: view.clone(), run_id: run, error: false, rejected: 0 };
                    retainer.offer(finished_trace(&view, run), meta);
                }
            })
        })
        .collect();

    // the operator thread: export mid-flight, over and over, and insist
    // every snapshot parses against the trace schema
    let reader = {
        let retainer = Arc::clone(&retainer);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut exports = 0u64;
            while !done.load(Ordering::Relaxed) {
                let jsonl = retainer.recent_jsonl(usize::MAX);
                if !jsonl.is_empty() {
                    validate_trace_jsonl(&jsonl).expect("mid-flight export schema-valid");
                    exports += 1;
                }
            }
            exports
        })
    };

    for writer in writers {
        writer.join().expect("writer thread");
    }
    done.store(true, Ordering::Relaxed);
    let exports = reader.join().expect("reader thread");
    assert!(exports > 0, "reader never saw a non-empty export");

    assert_eq!(retainer.offered(), (WRITERS * OFFERS_PER_WRITER) as u64);
    assert!(retainer.resident() <= retainer.capacity());

    // the settled export is schema-valid too, and every retained trace
    // carries a distinct minted run id
    let final_jsonl = retainer.recent_jsonl(usize::MAX);
    validate_trace_jsonl(&final_jsonl).expect("final export schema-valid");
    let retained = retainer.recent(usize::MAX);
    let ids: HashSet<u64> = retained.iter().map(|r| r.run_id.as_u64()).collect();
    assert_eq!(ids.len(), retained.len(), "duplicate run ids among retained traces");
    assert!(!ids.contains(&0), "unminted (zero) run id retained");
}

#[test]
fn find_run_resolves_while_writers_churn_the_rings() {
    let retainer = Arc::new(keep_all_retainer(64));

    // pin one run we will look up, then churn well past capacity from
    // other threads so eviction runs concurrently with the lookup
    let pinned = RunId::mint();
    let meta = TraceMeta {
        view: "pinned".into(),
        run_id: pinned,
        error: true, // always kept
        rejected: 0,
    };
    retainer.offer(finished_trace("pinned", pinned), meta);

    let churn: Vec<_> = (0..2)
        .map(|w| {
            let retainer = Arc::clone(&retainer);
            std::thread::spawn(move || {
                for i in 0..100 {
                    let run = RunId::mint();
                    let view = format!("churn-{w}-{i}");
                    let meta =
                        TraceMeta { view: view.clone(), run_id: run, error: false, rejected: 0 };
                    retainer.offer(finished_trace(&view, run), meta);
                    // lookups interleaved with offers must never tear
                    let found = retainer.find_run(run).expect("just-offered run resolvable");
                    assert_eq!(found.run_id, run);
                    assert_eq!(found.view, view);
                }
            })
        })
        .collect();
    for handle in churn {
        handle.join().expect("churn thread");
    }

    // run ids parse back to themselves — the correlation key round-trips
    let retained = retainer.recent(usize::MAX);
    assert!(!retained.is_empty());
    for r in &retained {
        let text = r.run_id.to_string();
        assert_eq!(RunId::parse(&text), Some(r.run_id), "{text}");
    }
}
