//! Process-level lifecycle tests for `qv serve`: the real binary, real
//! sockets, real signals. The in-process HTTP tests live in
//! `src/serve.rs`; this file pins the contract CI's `serve-smoke` job
//! relies on — most importantly that SIGTERM *drains*: a request that is
//! mid-flight when the signal lands is answered before the process exits
//! 0.

#![cfg(unix)]

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn sample(path: &str) -> String {
    format!("{}/../../samples/{path}", env!("CARGO_MANIFEST_DIR"))
}

/// Starts `qv serve` on an ephemeral port, returning the child, the
/// bound address parsed from the startup line, and the still-open
/// stdout reader (dropping it would break the server's shutdown print).
fn spawn_serve(extra: &[&str]) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_qv"))
        .arg("serve")
        .arg(sample("paper_view.xml"))
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn qv serve");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("startup line");
    let addr = line
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split([' ', '/']).next())
        .unwrap_or_else(|| panic!("no address in {line:?}"))
        .to_string();
    (child, addr, reader)
}

fn sigterm(child: &Child) {
    let status =
        Command::new("kill").args(["-TERM", &child.id().to_string()]).status().expect("run kill");
    assert!(status.success());
}

fn wait_exit(mut child: Child) -> bool {
    for _ in 0..100 {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status.success();
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let _ = child.kill();
    panic!("qv serve did not exit within 10s of SIGTERM");
}

/// Reads one framed HTTP response; returns (status line, body).
fn read_response(stream: &mut TcpStream) -> (String, String) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "EOF before response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let content_length: usize = head
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())
        .unwrap_or(0);
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "EOF mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    (
        head.lines().next().unwrap_or_default().to_string(),
        String::from_utf8_lossy(&body).into_owned(),
    )
}

#[test]
fn keep_alive_then_clean_sigterm_exit() {
    let (child, addr, _stdout) = spawn_serve(&[]);

    // two requests on one keep-alive socket against the live binary
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    for _ in 0..2 {
        stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let (status, body) = read_response(&mut stream);
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");
    }
    drop(stream);

    sigterm(&child);
    assert!(wait_exit(child), "expected exit 0 after SIGTERM");
}

#[test]
fn sigterm_drains_the_in_flight_request_before_exiting() {
    let (child, addr, _stdout) = spawn_serve(&["--read-timeout-ms", "10000"]);
    let tsv = std::fs::read(sample("hits.tsv")).expect("hits.tsv");

    // start a POST but hold back half the body: in flight, not complete
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let head = format!(
        "POST /run/ispider-pmf-quality HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
        tsv.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(&tsv[..tsv.len() / 2]).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(200)); // worker is mid-read

    sigterm(&child);
    std::thread::sleep(Duration::from_millis(200)); // signal lands mid-flight

    // the drain contract: the held-back half still gets read, the
    // request is answered, and only then does the process exit 0
    stream.write_all(&tsv[tsv.len() / 2..]).unwrap();
    let (status, body) = read_response(&mut stream);
    assert!(status.contains("200"), "{status}: {body}");
    assert!(body.contains("\"groups\""), "{body}");

    assert!(wait_exit(child), "expected exit 0 after draining");
}

#[test]
fn rejects_bad_serve_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_qv"))
        .args(["serve", &sample("paper_view.xml"), "--workers", "0"])
        .output()
        .expect("run qv");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workers"), "{out:?}");
}
