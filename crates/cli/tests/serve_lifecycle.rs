//! Process-level lifecycle tests for `qv serve`: the real binary, real
//! sockets, real signals. The in-process HTTP tests live in
//! `src/serve.rs`; this file pins the contract CI's `serve-smoke` job
//! relies on — most importantly that SIGTERM *drains*: a request that is
//! mid-flight when the signal lands is answered before the process exits
//! 0.

#![cfg(unix)]

use std::io::{BufRead as _, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

fn sample(path: &str) -> String {
    format!("{}/../../samples/{path}", env!("CARGO_MANIFEST_DIR"))
}

/// Starts `qv serve` on an ephemeral port, returning the child, the
/// bound address parsed from the startup banner, and the still-open
/// stdout reader (dropping it would break the server's shutdown print).
/// With `--store` the banner is two lines (store root, then listening),
/// so this scans until the `http://` line.
fn spawn_serve_view(
    view: &str,
    extra: &[&str],
) -> (Child, String, BufReader<std::process::ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_qv"))
        .arg("serve")
        .arg(sample(view))
        .args(["--addr", "127.0.0.1:0"])
        .args(extra)
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn qv serve");
    let mut reader = BufReader::new(child.stdout.take().expect("stdout"));
    let addr = loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("startup line") > 0, "EOF before banner");
        if let Some(rest) = line.split("http://").nth(1) {
            break rest.split([' ', '/']).next().expect("address").to_string();
        }
    };
    (child, addr, reader)
}

fn spawn_serve(extra: &[&str]) -> (Child, String, BufReader<std::process::ChildStdout>) {
    spawn_serve_view("paper_view.xml", extra)
}

fn sigterm(child: &Child) {
    let status =
        Command::new("kill").args(["-TERM", &child.id().to_string()]).status().expect("run kill");
    assert!(status.success());
}

fn wait_exit(mut child: Child) -> bool {
    for _ in 0..100 {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status.success();
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let _ = child.kill();
    panic!("qv serve did not exit within 10s of SIGTERM");
}

/// Reads one framed HTTP response; returns (full head, body).
fn read_response_full(stream: &mut TcpStream) -> (String, String) {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "EOF before response head");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let content_length: usize = head
        .lines()
        .filter_map(|l| l.split_once(':'))
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.trim().parse().ok())
        .unwrap_or(0);
    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk).expect("read body");
        assert!(n > 0, "EOF mid-body");
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    (head, String::from_utf8_lossy(&body).into_owned())
}

/// Reads one framed HTTP response; returns (status line, body).
fn read_response(stream: &mut TcpStream) -> (String, String) {
    let (head, body) = read_response_full(stream);
    (head.lines().next().unwrap_or_default().to_string(), body)
}

#[test]
fn keep_alive_then_clean_sigterm_exit() {
    let (child, addr, _stdout) = spawn_serve(&[]);

    // two requests on one keep-alive socket against the live binary
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    for _ in 0..2 {
        stream.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let (status, body) = read_response(&mut stream);
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");
    }
    drop(stream);

    sigterm(&child);
    assert!(wait_exit(child), "expected exit 0 after SIGTERM");
}

#[test]
fn sigterm_drains_the_in_flight_request_before_exiting() {
    let (child, addr, _stdout) = spawn_serve(&["--read-timeout-ms", "10000"]);
    let tsv = std::fs::read(sample("hits.tsv")).expect("hits.tsv");

    // start a POST but hold back half the body: in flight, not complete
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let head = format!(
        "POST /run/ispider-pmf-quality HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
        tsv.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(&tsv[..tsv.len() / 2]).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(200)); // worker is mid-read

    sigterm(&child);
    std::thread::sleep(Duration::from_millis(200)); // signal lands mid-flight

    // the drain contract: the held-back half still gets read, the
    // request is answered, and only then does the process exit 0
    stream.write_all(&tsv[tsv.len() / 2..]).unwrap();
    let (status, body) = read_response(&mut stream);
    assert!(status.contains("200"), "{status}: {body}");
    assert!(body.contains("\"groups\""), "{body}");

    assert!(wait_exit(child), "expected exit 0 after draining");
}

/// The acceptance pin for run correlation against the real binary: a
/// POSTed run's `X-QV-Run-Id` resolves at `GET /runs/<id>` to a bundle
/// whose trace spans and ledger records all carry that id, the access
/// log (ring and `--access-log` file sink) records the request under
/// the same id, and `GET /slo` reports budgets for the route.
#[test]
fn run_id_correlates_request_trace_ledger_and_access_log() {
    let log_path = std::env::temp_dir()
        .join(format!("qv-serve-lifecycle-access-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log_path);
    let (child, addr, _stdout) = spawn_serve(&[
        "--access-log",
        log_path.to_str().unwrap(),
        "--slo-p99-ms",
        "250",
        "--slo-availability",
        "0.999",
    ]);
    let tsv = std::fs::read_to_string(sample("hits.tsv")).expect("hits.tsv");

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let request = format!(
        "POST /run/ispider-pmf-quality HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{tsv}",
        tsv.len()
    );
    stream.write_all(request.as_bytes()).unwrap();
    let (head, body) = read_response_full(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let run_id = head
        .lines()
        .find_map(|l| l.strip_prefix("X-QV-Run-Id: "))
        .expect("X-QV-Run-Id header on POST /run")
        .trim()
        .to_string();
    assert_eq!(run_id.len(), 16, "{run_id}");
    assert!(run_id.bytes().all(|b| b.is_ascii_hexdigit()), "{run_id}");
    assert!(body.contains(&format!("\"run_id\":\"{run_id}\"")), "{body}");

    // the bundle endpoint reassembles the run on the same socket
    stream.write_all(format!("GET /runs/{run_id} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes()).unwrap();
    let (head, bundle) = read_response_full(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}: {bundle}");
    let value = qurator_telemetry::json::parse(&bundle).expect("bundle parses");
    assert_eq!(value.get("run_id").and_then(|v| v.as_str()), Some(run_id.as_str()));
    // the retained trace's root span carries the id as an attribute
    let spans = value
        .get("trace")
        .and_then(|t| t.get("spans"))
        .and_then(|s| s.as_array())
        .expect("retained trace spans");
    assert!(
        spans.iter().any(|s| {
            s.get("attrs")
                .and_then(|a| a.get("run_id"))
                .and_then(|v| v.as_str())
                .is_some_and(|v| v == run_id)
        }),
        "{bundle}"
    );
    // every ledger record the run wrote carries the id
    let ledger = value.get("ledger").and_then(|v| v.as_array()).expect("ledger slice");
    assert!(!ledger.is_empty(), "{bundle}");
    assert!(ledger
        .iter()
        .all(|t| t.get("run_id").and_then(|v| v.as_str()) == Some(run_id.as_str())));

    // the access-log ring recorded the run under the same id
    stream.write_all(b"GET /log/recent HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let (head, log) = read_response_full(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(qurator_telemetry::schema::validate_access_log_jsonl(&log).unwrap() >= 1, "{log}");
    assert!(log.contains(&format!("\"run_id\":\"{run_id}\"")), "{log}");

    // SLO budgets exist for the /run route
    stream.write_all(b"GET /slo HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
    let (head, slo) = read_response_full(&mut stream);
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let value = qurator_telemetry::json::parse(&slo).expect("slo parses");
    let routes = value.get("routes").and_then(|v| v.as_array()).expect("routes");
    assert!(
        routes.iter().any(|r| r.get("route").and_then(|v| v.as_str()) == Some("/run")),
        "{slo}"
    );
    drop(stream);

    sigterm(&child);
    assert!(wait_exit(child), "expected exit 0 after SIGTERM");

    // the --access-log file sink holds the same schema-valid stream
    let sink = std::fs::read_to_string(&log_path).expect("access log file");
    assert!(qurator_telemetry::schema::validate_access_log_jsonl(&sink).unwrap() >= 1, "{sink}");
    assert!(sink.contains(&format!("\"run_id\":\"{run_id}\"")), "{sink}");
    let _ = std::fs::remove_file(&log_path);
}

/// One HTTP exchange against the live binary; returns (status line, body).
fn exchange(addr: &str, request: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    read_response(&mut stream)
}

fn post_archive_run(addr: &str) -> (String, String) {
    let tsv = std::fs::read_to_string(sample("hits.tsv")).expect("hits.tsv");
    exchange(
        addr,
        &format!(
            "POST /run/archived-hit-quality HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\
             Connection: close\r\n\r\n{tsv}",
            tsv.len()
        ),
    )
}

/// The archive repository's triple count as reported by `GET /store`.
fn archive_triples(addr: &str) -> f64 {
    let (status, body) =
        exchange(addr, "GET /store HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
    assert!(status.contains("200"), "{status}: {body}");
    let value = qurator_telemetry::json::parse(&body).expect("store json");
    let repos = value.get("repositories").and_then(|v| v.as_array()).expect("repositories");
    let archive = repos
        .iter()
        .find(|r| r.get("name").and_then(|v| v.as_str()) == Some("archive"))
        .unwrap_or_else(|| panic!("no archive repository in {body}"));
    assert_eq!(archive.get("backend").and_then(|v| v.as_str()), Some("disk"), "{body}");
    archive.get("triples").and_then(|v| v.as_f64()).expect("triples")
}

/// The tentpole acceptance pin: annotations written through `qv serve
/// --store` survive a SIGTERM restart — the reopened store serves the
/// same triples without re-running the view.
#[test]
fn annotations_survive_a_sigterm_restart() {
    let store = qurator_rdf::storage::test_support::TempDir::new("serve-restart");
    let store_dir = store.path().to_str().unwrap().to_string();

    let (child, addr, _stdout) =
        spawn_serve_view("persistent_archive.xml", &["--store", &store_dir]);
    let (status, body) = post_archive_run(&addr);
    assert!(status.contains("200"), "{status}: {body}");
    let triples = archive_triples(&addr);
    assert!(triples > 0.0, "run stored no annotations");
    sigterm(&child);
    assert!(wait_exit(child), "expected exit 0 after SIGTERM");

    // Restart over the same directory: the archive is reopened as-is.
    let (child, addr, _stdout) =
        spawn_serve_view("persistent_archive.xml", &["--store", &store_dir]);
    assert_eq!(archive_triples(&addr), triples, "annotations lost across restart");
    sigterm(&child);
    assert!(wait_exit(child));
}

/// Crash-safety: a run acknowledged with 200 is flushed before the ack,
/// so even SIGKILL — no drain, no Drop — loses nothing, and the stale
/// lock left behind by the dead process is stolen on restart.
#[test]
fn annotations_survive_a_hard_kill() {
    let store = qurator_rdf::storage::test_support::TempDir::new("serve-kill");
    let store_dir = store.path().to_str().unwrap().to_string();

    let (mut child, addr, _stdout) =
        spawn_serve_view("persistent_archive.xml", &["--store", &store_dir]);
    let (status, body) = post_archive_run(&addr);
    assert!(status.contains("200"), "{status}: {body}");
    let triples = archive_triples(&addr);
    assert!(triples > 0.0);
    let status =
        Command::new("kill").args(["-KILL", &child.id().to_string()]).status().expect("run kill");
    assert!(status.success());
    child.wait().expect("reap killed child");
    assert!(store.path().join("archive").join("LOCK").exists(), "SIGKILL skips Drop");

    let (child, addr, _stdout) =
        spawn_serve_view("persistent_archive.xml", &["--store", &store_dir]);
    assert_eq!(archive_triples(&addr), triples, "acknowledged annotations lost by SIGKILL");
    sigterm(&child);
    assert!(wait_exit(child));
}

/// Satellite regression: a second server on the same live store directory
/// must refuse to start (exit nonzero, "locked" on stderr) rather than
/// panic or silently serve an empty store.
#[test]
fn serve_fails_fast_on_a_locked_store() {
    let store = qurator_rdf::storage::test_support::TempDir::new("serve-locked");
    let store_dir = store.path().to_str().unwrap().to_string();

    let (child, addr, _stdout) =
        spawn_serve_view("persistent_archive.xml", &["--store", &store_dir]);
    // Materialize the archive on disk so the second server tries to open it.
    let (status, body) = post_archive_run(&addr);
    assert!(status.contains("200"), "{status}: {body}");

    let out = Command::new(env!("CARGO_BIN_EXE_qv"))
        .args(["serve", &sample("persistent_archive.xml")])
        .args(["--addr", "127.0.0.1:0", "--store", &store_dir])
        .output()
        .expect("run second qv serve");
    assert!(!out.status.success(), "second server must not start: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("locked"), "{stderr}");

    sigterm(&child);
    assert!(wait_exit(child));
}

/// Satellite regression: a corrupt store directory is a clear startup
/// error, not a panic and not an empty store shadowing the real one.
#[test]
fn serve_fails_fast_on_a_corrupt_store() {
    let store = qurator_rdf::storage::test_support::TempDir::new("serve-corrupt");
    let archive = store.path().join("archive");
    std::fs::create_dir_all(&archive).unwrap();
    std::fs::write(archive.join("base.seg"), b"this is not a qv segment file").unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_qv"))
        .args(["serve", &sample("persistent_archive.xml")])
        .args(["--addr", "127.0.0.1:0", "--store", store.path().to_str().unwrap()])
        .output()
        .expect("run qv serve");
    assert!(!out.status.success(), "corrupt store must abort startup: {out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("corrupt store"), "{stderr}");
    assert!(stderr.contains("bad magic"), "{stderr}");
}

#[test]
fn rejects_bad_serve_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_qv"))
        .args(["serve", &sample("paper_view.xml"), "--workers", "0"])
        .output()
        .expect("run qv");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--workers"), "{out:?}");
}
