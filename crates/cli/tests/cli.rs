//! End-to-end tests of the `qv` binary (spawned as a real process).

use std::io::Write as _;
use std::process::Command;

fn qv(args: &[&str]) -> (bool, String, String) {
    let output = Command::new(env!("CARGO_BIN_EXE_qv")).args(args).output().expect("spawn qv");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qv-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create");
    f.write_all(contents.as_bytes()).expect("write");
    path
}

const VIEW: &str = r#"
<QualityView name="cli-test">
  <Annotator serviceName="imprint" serviceType="q:ImprintOutputAnnotation">
    <variables repositoryRef="cache" persistent="false">
      <var evidence="q:HitRatio"/>
      <var evidence="q:MassCoverage"/>
      <var evidence="q:PeptidesCount"/>
    </variables>
  </Annotator>
  <QualityAssertion serviceName="score" serviceType="q:UniversalPIScore2"
                    tagName="HR_MC" tagSynType="q:score">
    <variables repositoryRef="cache">
      <var variableName="coverage" evidence="q:MassCoverage"/>
      <var variableName="hitratio" evidence="q:HitRatio"/>
      <var variableName="peptidescount" evidence="q:PeptidesCount"/>
    </variables>
  </QualityAssertion>
  <action name="keep">
    <filter><condition>HR_MC &gt; 0</condition></filter>
  </action>
</QualityView>"#;

const DATA: &str = "id\thitRatio\tmassCoverage\tpeptidesCount\n\
urn:lsid:t:h:good\t0.9\t40\t12\n\
urn:lsid:t:h:bad\t0.1\t3\t1\n";

#[test]
fn validate_accepts_good_view() {
    let view = write_temp("good.xml", VIEW);
    let (ok, stdout, stderr) = qv(&["validate", view.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("is valid"));
    assert!(stdout.contains("q:HitRatio"));
}

#[test]
fn validate_rejects_bad_view() {
    let view = write_temp("bad.xml", "<QualityView name='x'><junk/></QualityView>");
    let (ok, _, stderr) = qv(&["validate", view.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("junk"), "stderr: {stderr}");
}

#[test]
fn compile_prints_structure_and_dot() {
    let view = write_temp("good2.xml", VIEW);
    let (ok, stdout, _) = qv(&["compile", view.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("processors"));
    let (ok, dot, _) = qv(&["compile", view.to_str().unwrap(), "--dot"]);
    assert!(ok);
    assert!(dot.contains("digraph"));
    assert!(dot.contains("DataEnrichment"));
}

#[test]
fn run_filters_and_explains() {
    let view = write_temp("good3.xml", VIEW);
    let data = write_temp("hits.tsv", DATA);
    let (ok, stdout, stderr) =
        qv(&["run", view.to_str().unwrap(), "--data", data.to_str().unwrap(), "--explain"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("group \"keep\": 1 item(s)"), "{stdout}");
    assert!(stdout.contains("urn:lsid:t:h:good"));
    assert!(stdout.contains("keep:accept"));
    assert!(stdout.contains("keep:reject"));
}

#[test]
fn fmt_is_canonical() {
    let view = write_temp("good4.xml", VIEW);
    let (ok, once, _) = qv(&["fmt", view.to_str().unwrap()]);
    assert!(ok);
    let reformatted = write_temp("good4b.xml", &once);
    let (ok, twice, _) = qv(&["fmt", reformatted.to_str().unwrap()]);
    assert!(ok);
    assert_eq!(once, twice);
}

#[test]
fn library_lists_and_searches() {
    // build a catalog via the library API to guarantee a valid document
    let mut library = qurator::library::ViewLibrary::new();
    library
        .publish(
            qurator::spec::QualityViewSpec::paper_example(),
            qurator::library::ViewMetadata {
                author: "tester".into(),
                description: "the paper's running example".into(),
                keywords: vec!["accuracy".into()],
            },
        )
        .unwrap();
    let catalog = write_temp("catalog.xml", &library.to_xml());
    let (ok, stdout, _) = qv(&["library", catalog.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("1 view(s)"));
    assert!(stdout.contains("ispider-pmf-quality"));
    let (ok, stdout, _) = qv(&["library", catalog.to_str().unwrap(), "--search", "nothing-here"]);
    assert!(ok);
    assert!(stdout.contains("0 view(s)"));
}

#[test]
fn profile_prints_a_table_and_round_trips_folded_stacks() {
    let view = write_temp("prof.xml", VIEW);
    let data = write_temp("prof.tsv", DATA);
    let folded = write_temp("prof.folded", "");
    let (ok, stdout, stderr) = qv(&[
        "profile",
        view.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--runs",
        "3",
        "--folded",
        folded.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("3 trace(s) profiled"), "{stdout}");
    assert!(stdout.contains("view:cli-test"), "{stdout}");
    // the folded export parses back and every stack roots at the view span
    let parsed =
        qurator_telemetry::Profile::parse_folded(&std::fs::read_to_string(&folded).unwrap())
            .unwrap();
    assert!(!parsed.is_empty());
    assert!(parsed.keys().all(|stack| stack.starts_with("view:cli-test")), "{parsed:?}");
}

#[test]
fn run_profile_out_writes_parseable_stacks() {
    let view = write_temp("runprof.xml", VIEW);
    let data = write_temp("runprof.tsv", DATA);
    let out = write_temp("runprof.folded", "");
    let (ok, stdout, stderr) = qv(&[
        "run",
        view.to_str().unwrap(),
        "--data",
        data.to_str().unwrap(),
        "--profile-out",
        out.to_str().unwrap(),
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("profile:"), "{stdout}");
    let parsed =
        qurator_telemetry::Profile::parse_folded(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert!(!parsed.is_empty());
}

/// Full service lifecycle against the real binary: start `qv serve` on an
/// ephemeral port, exercise every endpoint over TCP, then SIGTERM it and
/// require a clean (status 0) shutdown.
#[cfg(unix)]
#[test]
fn serve_answers_http_and_shuts_down_cleanly_on_sigterm() {
    use std::io::{BufRead as _, BufReader, Read as _};
    use std::net::TcpStream;
    use std::process::Stdio;

    let view = write_temp("serve.xml", VIEW);
    let mut child = Command::new(env!("CARGO_BIN_EXE_qv"))
        .args(["serve", view.to_str().unwrap(), "--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn qv serve");

    // the first stdout line announces the resolved address
    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    stdout.read_line(&mut banner).expect("read banner");
    let addr = banner
        .split("http://")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in banner {banner:?}"))
        .to_string();

    let request = |payload: String| -> String {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        std::io::Write::write_all(&mut stream, payload.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    };
    let body_of = |response: &str| -> String {
        response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default()
    };

    let health = request("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n".into());
    assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
    assert_eq!(body_of(&health), "ok\n");

    let run = request(format!(
        "POST /run/cli-test HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
        DATA.len(),
        DATA
    ));
    assert!(run.starts_with("HTTP/1.1 200 OK"), "{run}");
    assert!(run.contains("\"rejected\":1"), "{run}");

    let metrics = body_of(&request("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n".into()));
    assert!(qurator_telemetry::schema::validate_metrics_text(&metrics).unwrap() > 0, "{metrics}");

    let traces = body_of(&request("GET /traces/recent HTTP/1.1\r\nHost: x\r\n\r\n".into()));
    assert!(qurator_telemetry::schema::validate_trace_jsonl(&traces).unwrap() > 0, "{traces}");

    let drift = body_of(&request("GET /drift HTTP/1.1\r\nHost: x\r\n\r\n".into()));
    assert!(drift.contains("\"enabled\":true"), "{drift}");

    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());
    let status = child.wait().expect("wait for qv serve");
    assert!(status.success(), "serve exited {status:?} after SIGTERM");
}

/// `qv load` streams a Turtle file into an on-disk store that the
/// storage layer can reopen; a second load into the same directory is
/// refused rather than silently merged.
#[test]
fn load_builds_a_reopenable_store() {
    let turtle = "\
@prefix ex: <http://example.org/> .\n\
ex:a ex:p ex:b .\n\
ex:a ex:p \"dup\" .\n\
ex:a ex:p \"dup\" .\n\
ex:b ex:q 42 .\n";
    let ttl = write_temp("load.ttl", turtle);
    let store = std::env::temp_dir().join(format!("qv-cli-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store);
    let store_dir = store.to_str().unwrap();

    let (ok, stdout, stderr) = qv(&["load", ttl.to_str().unwrap(), "--store", store_dir]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("4 triple(s) read, 3 stored (1 duplicate(s) dropped)"), "{stdout}");
    assert!(stdout.contains("repository \"archive\""), "{stdout}");

    // The store reopens with exactly the loaded triples.
    {
        use qurator_rdf::storage::{DiskBackend, Storage as _};
        let backend = DiskBackend::open(store.join("archive")).expect("reopen loaded store");
        assert_eq!(backend.len(), 3);
    }

    // Refused: the target repository already holds data.
    let (ok, _, stderr) = qv(&["load", ttl.to_str().unwrap(), "--store", store_dir]);
    assert!(!ok);
    assert!(stderr.contains("already exists"), "{stderr}");

    // Flag validation: --store is mandatory, --repo must be a plain name.
    let (ok, _, stderr) = qv(&["load", ttl.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("--store"), "{stderr}");
    let (ok, _, stderr) =
        qv(&["load", ttl.to_str().unwrap(), "--store", store_dir, "--repo", "../evil"]);
    assert!(!ok);
    assert!(stderr.contains("repository name"), "{stderr}");

    let _ = std::fs::remove_dir_all(&store);
}

#[test]
fn usage_on_bad_invocations() {
    let (ok, _, stderr) = qv(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
    let (ok, _, stderr) = qv(&["frobnicate"]);
    assert!(!ok);
    assert!(stderr.contains("unknown command"));
    let (ok, stdout, _) = qv(&["help"]);
    assert!(ok);
    assert!(stdout.contains("usage"));
}
